#![warn(missing_docs)]

//! Offline subset of the `rand` crate API.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the handful of `rand` entry points the workspace actually uses
//! ([`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`]) are provided here, backed by a SplitMix64
//! generator. The VM only needs a *deterministic, well-mixed* stream
//! per seed — it does not depend on the exact ChaCha stream the real
//! `StdRng` produces — so this drop-in keeps every (module, seed) run
//! reproducible without the external dependency.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples an arbitrary value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a full-width uniform distribution (stand-in for sampling
/// `rand::distributions::Standard`).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types [`Rng::gen_range`] can sample (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` (lossless for all supported types).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (the value is always in range by
    /// construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[allow(clippy::cast_possible_truncation)]
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
///
/// The impls are generic over `T` — exactly like the real crate — so
/// that `rng.gen_range(0..500)` lets the surrounding expression pin the
/// integer type of the literal.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        let draw = (u128::from(rng.next_u64()) % span) as i128;
        T::from_i128(lo + draw)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u128 + 1;
        let draw = (u128::from(rng.next_u64()) % span) as i128;
        T::from_i128(lo + draw)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Deterministic,
    /// fast, and statistically solid for scheduling jitter.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut rng = StdRng { state };
            // One warm-up step decorrelates small consecutive seeds.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0i64..=5);
            assert!((0..=5).contains(&y));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 60) == b.gen_range(0u64..1 << 60))
            .count();
        assert_eq!(same, 0);
    }
}
