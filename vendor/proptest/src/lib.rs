#![warn(missing_docs)]

//! Offline subset of the `proptest` crate API.
//!
//! The build environment for this workspace cannot reach crates.io, so
//! this crate reimplements the slice of proptest the workspace's test
//! suites use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_shuffle`, [`strategy::Just`], uniform
//! integer-range and [`arbitrary::any`] strategies, tuple and
//! collection composition, `prop_oneof!`, and the [`proptest!`] test
//! macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from real proptest, deliberate for an offline
//! reproduction harness:
//!
//! * **no shrinking** — a failing case reports its inputs via the
//!   assertion message instead of minimizing them;
//! * **deterministic seeding** — each `proptest!` test derives its RNG
//!   seed from the test's module path and name, so a run is exactly
//!   reproducible without a persistence file.

pub mod test_runner {
    //! The deterministic case runner: RNG, config, and failure carrier.

    /// Test-case failure carrier (subset of proptest's).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's inputs did not satisfy a `prop_assume!` filter.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// Creates a rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Shorthand for a test-case body's result.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (subset of proptest's `Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Cap on consecutive `prop_assume!` rejections before the
        /// runner gives up (prevents a too-strict filter from looping
        /// forever).
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// The runner's RNG: SplitMix64 seeded from the test's name, so
    /// every run of a given test sees the same case sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a folds the test name into the seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Returns the next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, bound)` over the full `u128` span.
        pub fn below_wide(&mut self, bound: u128) -> u128 {
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and their combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` derives from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Shuffles generated collections (supported for `Vec`).
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }

        /// Discards generated values failing `f` (regenerating up to an
        /// attempt cap, then failing the case as a reject).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_shuffle`].
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.generate(rng);
            // Fisher-Yates.
            for i in (1..v.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                v.swap(i, j);
            }
            v
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1024 draws in a row", self.whence);
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below_wide(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below_wide(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: uniform over its whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `hash_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A generated collection's size bounds (inclusive).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn draw(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Generates `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `HashSet`s of `element` with a size drawn from `size`
    /// (best-effort: duplicates are redrawn a bounded number of times,
    /// so a small element domain may yield a smaller set).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.draw(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 32 + 32 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection::vec`, ...).
        pub use crate::collection;
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        // Weights are accepted but treated as uniform.
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (regenerating its inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr);) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match result {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest '{}': too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) =>

                        panic!(
                            "proptest '{}' failed at case {}:\n{}",
                            stringify!($name),
                            passed,
                            msg
                        ),
                }
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::Config::default()); $($rest)*);
    };
}
