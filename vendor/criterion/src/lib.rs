#![warn(missing_docs)]

//! Offline subset of the `criterion` crate API.
//!
//! The build environment for this workspace cannot reach crates.io, so
//! this crate provides the criterion entry points the workspace's
//! benches use — [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], benchmark groups, and [`Bencher::iter`] —
//! implemented as a straightforward wall-clock harness: per benchmark
//! it warms up, runs `sample_size` timed samples of auto-calibrated
//! iteration batches, and prints min/mean/max per-iteration times.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark harness configuration and registry.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `f`, auto-calibrating how many iterations make up one
    /// sample so that total measurement stays near the configured
    /// budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: time single iterations until either
        // 50 ms or 10 iterations have elapsed.
        let calib_start = Instant::now();
        let mut calib_iters = 0u32;
        while calib_iters < 10 && calib_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed() / calib_iters.max(1);
        let budget_per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1024
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed() / iters_per_sample);
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<48} [{min:>12.2?} {mean:>12.2?} {max:>12.2?}]  ({} samples)",
        samples.len()
    );
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(name, &samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Overrides the sample count for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, fns...)`
/// or the struct form with an explicit `config` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point over one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
