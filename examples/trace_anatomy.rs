//! Anatomy of a control-flow trace: run a small program under the
//! PT-style tracer, then show the raw packet stream and the decoded,
//! partially-ordered instruction trace the diagnosis server works from.
//!
//! Run with: `cargo run --release --example trace_anatomy`

use lazy_diagnosis::ir::{InstKind, ModuleBuilder, Operand, Type};
use lazy_diagnosis::trace::{decode_thread_trace, ExecIndex, PacketDecoder, TraceConfig};
use lazy_diagnosis::vm::{Vm, VmConfig};

fn main() {
    // A loop with a call: conditional branches produce TNT bits, the
    // callee's return produces a TIP, virtual time produces MTC/CYC.
    let mut mb = ModuleBuilder::new("anatomy");
    let step = mb.declare("step", vec![Type::I64], Type::I64);
    {
        let mut f = mb.define(step);
        let e = f.entry();
        f.switch_to(e);
        f.io("work", 20_000);
        let v = f.add(f.param(0), Operand::const_int(1));
        f.ret(Some(v));
        f.finish();
    }
    let mut f = mb.function("main", vec![], Type::Void);
    let e = f.entry();
    let head = f.block("head");
    let body = f.block("body");
    let done = f.block("done");
    f.switch_to(e);
    let n = f.alloca(Type::I64);
    f.store(n.clone(), Operand::const_int(0), Type::I64);
    f.br(head);
    f.switch_to(head);
    let v = f.load(n.clone(), Type::I64);
    let c = f.lt(v.clone(), Operand::const_int(3));
    f.cond_br(c, body, done);
    f.switch_to(body);
    let v2 = f.call(step, vec![v]);
    f.store(n.clone(), v2, Type::I64);
    f.br(head);
    f.switch_to(done);
    f.halt();
    f.finish();
    let module = mb.finish().expect("module verifies");

    // Snapshot at the halt instruction (an on-demand trace).
    let halt_pc = module
        .all_insts()
        .find(|(i, _)| matches!(i.kind, InstKind::Halt))
        .map(|(i, _)| i.pc)
        .unwrap();
    let out = Vm::run(
        &module,
        VmConfig {
            breakpoints: vec![halt_pc],
            ..VmConfig::default()
        },
    );
    let snap = out.snapshot.expect("breakpoint snapshot");
    let thread = &snap.threads[0];

    println!("== raw packet stream ({} bytes) ==", thread.bytes.len());
    let mut dec = PacketDecoder::new(&thread.bytes);
    assert!(dec.sync_to_psb());
    let mut shown = 0;
    while let Ok(Some(p)) = dec.next_packet() {
        println!("  {p}");
        shown += 1;
        if shown >= 28 {
            println!("  ... (truncated)");
            break;
        }
    }

    println!("\n== decoded instruction trace with coarse time windows ==");
    let index = ExecIndex::build(&module);
    let trace = decode_thread_trace(
        &index,
        &TraceConfig::default(),
        &thread.bytes,
        snap.taken_at,
    )
    .expect("decodes");
    for ev in trace.events.iter().take(24) {
        println!(
            "  [{:>9} ns, {:>9} ns]  {}",
            ev.time.lo,
            ev.time.hi,
            module.describe_pc(ev.pc)
        );
    }
    if trace.events.len() > 24 {
        println!("  ... {} events total", trace.events.len());
    }
    println!(
        "\nstats: {} control events, {} timing packets ({}% of bytes)",
        thread.stats.control_events,
        thread.stats.timing_packets,
        (100.0 * thread.stats.timing_share()) as u32
    );
}
