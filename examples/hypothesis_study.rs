//! The coarse interleaving hypothesis study (§3) in miniature: measure
//! the virtual time elapsed between the target events of a few corpus
//! bugs across reproduced failures, and compare with the granularity a
//! fine-grained record/replay system would need.
//!
//! Run with: `cargo run --release --example hypothesis_study`

use lazy_diagnosis::workloads::scenario_by_id;

fn main() {
    println!("coarse interleaving hypothesis: time between target events on failing runs\n");
    let bugs = ["pbzip2-na-1", "mysql-3596", "sqlite-1672", "lucene-na-1"];
    let mut global_min = u64::MAX;
    for id in bugs {
        let s = scenario_by_id(id).expect("corpus bug");
        let mut deltas = Vec::new();
        let mut seed = 0;
        while deltas.len() < 5 {
            let Some((out, used)) = s.reproduce(seed, 400) else {
                break;
            };
            seed = used + 1;
            deltas.extend(s.relevant_deltas(&out));
        }
        let avg = deltas.iter().sum::<u64>() / deltas.len().max(1) as u64;
        let min = deltas.iter().copied().min().unwrap_or(0);
        global_min = global_min.min(min);
        println!(
            "{id:<16} [{}] avg ΔT {:>8.1} µs   min {:>8.1} µs over {} gaps",
            s.class.label(),
            avg as f64 / 1000.0,
            min as f64 / 1000.0,
            deltas.len()
        );
    }
    println!();
    println!(
        "observed minimum: {:.1} µs — about 10^{:.0} times coarser than the ~1 ns",
        global_min as f64 / 1000.0,
        (global_min as f64).log10()
    );
    println!("granularity a fine-grained record/replay system must capture (an L1 hit).");
    println!("Coarse hardware timestamps are enough to order these events — the paper's point.");
}
