//! Production-fleet walkthrough on a corpus bug: the pbzip2-style
//! use-after-free order violation, end to end — failure, trace
//! collection with the 10× successful-trace policy, diagnosis, and the
//! ordering-accuracy check against ground truth.
//!
//! Run with: `cargo run --release --example production_fleet`

use lazy_diagnosis::snorlax::{ordering_accuracy, CollectionClient, DiagnosisServer, ServerConfig};
use lazy_diagnosis::vm::{Vm, VmConfig};
use lazy_diagnosis::workloads::scenario_by_id;

fn main() {
    let scenario = scenario_by_id("pbzip2-na-1").expect("corpus bug exists");
    println!("bug: {}", scenario.id);
    println!("     {}\n", scenario.description);

    let server = DiagnosisServer::new(&scenario.module, ServerConfig::default());
    let client = CollectionClient::new(&server, VmConfig::default());

    let collected = client.collect(0, 500, 10, 0).expect("bug manifests");
    println!(
        "fleet: {} executions total; failure on seed {}; {} successful snapshots at {}",
        collected.runs,
        collected.failing_seeds[0],
        collected.successful.len(),
        collected
            .breakpoint_used
            .map(|pc| scenario.module.describe_pc(pc))
            .unwrap_or_else(|| "-".into()),
    );

    let diagnosis = server
        .diagnose(
            &collected.failure,
            &collected.failing,
            &collected.successful,
        )
        .expect("diagnosis succeeds");
    println!();
    print!("{}", diagnosis.render(&scenario.module));

    // Ordering accuracy against the VM's exact ground truth for the
    // same failing seed (the A_O metric of the paper's §6.1).
    let truth_run = Vm::run(
        &scenario.module,
        VmConfig {
            seed: collected.failing_seeds[0],
            watch_pcs: scenario.targets.clone(),
            ..VmConfig::default()
        },
    );
    let truth = scenario.ground_truth_order(&truth_run);
    let acc = ordering_accuracy(&diagnosis.diagnosed_order(), &truth);
    println!("\nordering accuracy A_O vs ground truth: {acc:.1}%");
}
