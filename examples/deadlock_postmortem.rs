//! Deadlock post-mortem: diagnose the SQLite-style AB-BA deadlock and
//! print the lock-order cycle the developer must break.
//!
//! Run with: `cargo run --release --example deadlock_postmortem`

use lazy_diagnosis::snorlax::patterns::BugPattern;
use lazy_diagnosis::snorlax::{CollectionClient, DiagnosisServer, ServerConfig};
use lazy_diagnosis::vm::VmConfig;
use lazy_diagnosis::workloads::scenario_by_id;

fn main() {
    let scenario = scenario_by_id("sqlite-1672").expect("corpus bug exists");
    println!("bug: {}", scenario.id);
    println!("     {}\n", scenario.description);

    let server = DiagnosisServer::new(&scenario.module, ServerConfig::default());
    let client = CollectionClient::new(&server, VmConfig::default());
    let collected = client.collect(0, 500, 10, 0).expect("deadlock manifests");
    println!("failure: {}\n", collected.failure);

    let diagnosis = server
        .diagnose(
            &collected.failure,
            &collected.failing,
            &collected.successful,
        )
        .expect("diagnosis succeeds");
    let top = diagnosis.root_cause().expect("root cause found");
    let BugPattern::Deadlock { edges } = &top.pattern else {
        panic!(
            "expected a deadlock pattern, got {}",
            top.pattern.signature()
        );
    };

    println!("lock-order cycle (F1 = {:.2}):", top.f1);
    for (i, e) in edges.iter().enumerate() {
        println!("  thread {}:", i + 1);
        println!("    holds   {}", scenario.module.describe_pc(e.hold_pc));
        println!("    wants   {}", scenario.module.describe_pc(e.want_pc));
    }
    println!("\nfix: make both threads acquire the two mutexes in the same order.");
}
