//! Quickstart: build a racy program, let it fail in "production", and
//! ask Lazy Diagnosis for the root cause.
//!
//! Run with: `cargo run --release --example quickstart`

use lazy_diagnosis::ir::{ModuleBuilder, Operand, Type};
use lazy_diagnosis::snorlax::{CollectionClient, DiagnosisServer, ServerConfig};
use lazy_diagnosis::vm::VmConfig;

fn main() {
    // A producer/consumer with a missing happens-before edge: the
    // consumer may read the buffer pointer before the producer
    // publishes it.
    let mut mb = ModuleBuilder::new("quickstart");
    let shared = mb.global("shared_buf", Type::I64.ptr_to(), vec![]);

    let producer = mb.declare("producer", vec![Type::I64], Type::Void);
    {
        let mut f = mb.define(producer);
        let e = f.entry();
        f.switch_to(e);
        f.io("prepare-data", 400_000);
        let buf = f.heap_alloc(Type::I64, Operand::const_int(8));
        f.store(buf.clone(), Operand::const_int(42), Type::I64);
        f.store(shared.clone(), buf, Type::I64.ptr_to());
        f.ret(None);
        f.finish();
    }
    let consumer = mb.declare("consumer", vec![Type::I64], Type::Void);
    {
        let mut f = mb.define(consumer);
        let e = f.entry();
        f.switch_to(e);
        f.io("wait-for-work", 395_000);
        let p = f.load(shared.clone(), Type::I64.ptr_to());
        f.load(p, Type::I64); // Crashes when the producer lost the race.
        f.ret(None);
        f.finish();
    }
    let mut f = mb.function("main", vec![], Type::Void);
    let e = f.entry();
    f.switch_to(e);
    let t1 = f.spawn(producer, Operand::const_int(0));
    let t2 = f.spawn(consumer, Operand::const_int(0));
    f.join(t1);
    f.join(t2);
    f.halt();
    f.finish();
    let module = mb.finish().expect("module verifies");

    // The "server" holds the bitcode; the "client" is the production
    // fleet, modeled as VM runs over a seed sequence.
    let server = DiagnosisServer::new(&module, ServerConfig::default());
    let client = CollectionClient::new(&server, VmConfig::default());

    println!("running production executions until the bug bites...");
    let collected = client.collect(0, 500, 10, 0).expect("the race fires");
    println!(
        "observed failure after {} runs: {}",
        collected.failing_seeds[0] + 1,
        collected.failure
    );
    println!(
        "collected {} successful trace(s) at the failure PC\n",
        collected.successful.len()
    );

    let diagnosis = server
        .diagnose(
            &collected.failure,
            &collected.failing,
            &collected.successful,
        )
        .expect("diagnosis succeeds");
    print!("{}", diagnosis.render(&module));
}
