//! Record/replay from coarse timestamps — the §3.3 application: record
//! the order of racing accesses from an ordinary trace snapshot (no
//! per-access logging, no synchronization), then impose that order on
//! later runs.
//!
//! Run with: `cargo run --release --example record_replay`

use lazy_diagnosis::replay::Recording;
use lazy_diagnosis::snorlax::{DiagnosisServer, ServerConfig};
use lazy_diagnosis::vm::{Vm, VmConfig};
use lazy_diagnosis::workloads::scenario_by_id;
use std::collections::HashSet;

fn main() {
    let s = scenario_by_id("pbzip2-na-1").expect("corpus bug");
    println!("bug: {} — {}\n", s.id, s.description);
    let racing: HashSet<_> = s.targets.iter().copied().collect();

    // Phase 1: catch one failing execution with always-on tracing.
    let (failing_seed, failing_out) = (0..200)
        .map(|seed| {
            (
                seed,
                Vm::run(
                    &s.module,
                    VmConfig {
                        seed,
                        ..VmConfig::default()
                    },
                ),
            )
        })
        .find(|(_, out)| out.is_failure())
        .expect("the race fires");
    let failure = failing_out.failure().unwrap().clone();
    println!("seed {failing_seed} failed: {failure}");

    // Phase 2: record the racing-access order from the coarse trace.
    let server = DiagnosisServer::new(&s.module, ServerConfig::default());
    let trace = server
        .process(failing_out.snapshot.as_ref().expect("failure snapshot"))
        .expect("decodes");
    let recording = Recording::from_processed_trace(&trace, &racing)
        .expect("the racing accesses are coarsely ordered");
    println!("\nrecorded racing order (from MTC/CYC timestamps alone):");
    for (tid, pc) in recording.order() {
        println!("  thread {tid}: {}", s.module.describe_pc(*pc));
    }

    // Phase 3: replay on seeds that would otherwise succeed.
    println!("\nreplaying the recorded order on fresh seeds:");
    let mut reproduced = 0;
    for seed in (failing_seed + 1)..(failing_seed + 21) {
        let baseline = Vm::run(
            &s.module,
            VmConfig {
                seed,
                ..VmConfig::default()
            },
        );
        let mut gate = recording.gate();
        let replayed = Vm::run_gated(
            &s.module,
            VmConfig {
                seed,
                ..VmConfig::default()
            },
            &mut gate,
        );
        let same = replayed.failure().map(|f| f.pc) == Some(failure.pc);
        reproduced += u32::from(same);
        println!(
            "  seed {seed}: baseline {} -> replay {} (divergences {})",
            if baseline.is_failure() {
                "fails "
            } else {
                "passes"
            },
            if same {
                "reproduces the failure"
            } else {
                "differs"
            },
            gate.divergences()
        );
    }
    println!("\n{reproduced}/20 replays reproduced the exact failure deterministically.");
}
