//! Property-based tests of the IR substrate: layout invariants and
//! builder robustness over randomly generated (but well-formed)
//! programs.

use lazy_ir::{Cfg, InstKind, Module, ModuleBuilder, Operand, Type};
use proptest::prelude::*;

/// A generator of random well-formed single-function modules: straight
/// segments, bounded loops, and diamonds over a handful of i64 slots.
#[derive(Clone, Debug)]
enum Shape {
    Straight(u8),
    Loop(u8),
    Diamond,
}

pub(crate) fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (1u8..6).prop_map(Shape::Straight),
        (1u8..5).prop_map(Shape::Loop),
        Just(Shape::Diamond),
    ]
}

pub(crate) fn build(shapes: &[Shape]) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let mut f = mb.function("main", vec![], Type::Void);
    let e = f.entry();
    f.switch_to(e);
    let slot = f.alloca(Type::I64);
    f.store(slot.clone(), Operand::const_int(0), Type::I64);
    for (i, s) in shapes.iter().enumerate() {
        match s {
            Shape::Straight(n) => {
                for _ in 0..*n {
                    let v = f.load(slot.clone(), Type::I64);
                    let v1 = f.add(v, Operand::const_int(1));
                    f.store(slot.clone(), v1, Type::I64);
                }
            }
            Shape::Loop(iters) => {
                let ctr = f.alloca(Type::I64);
                f.store(ctr.clone(), Operand::const_int(0), Type::I64);
                let head = f.block(format!("h{i}"));
                let body = f.block(format!("b{i}"));
                let done = f.block(format!("d{i}"));
                f.br(head);
                f.switch_to(head);
                let v = f.load(ctr.clone(), Type::I64);
                let c = f.lt(v, Operand::const_int(i64::from(*iters)));
                f.cond_br(c, body, done);
                f.switch_to(body);
                let v = f.load(ctr.clone(), Type::I64);
                let v1 = f.add(v, Operand::const_int(1));
                f.store(ctr.clone(), v1, Type::I64);
                f.br(head);
                f.switch_to(done);
            }
            Shape::Diamond => {
                let v = f.load(slot.clone(), Type::I64);
                let c = f.lt(v, Operand::const_int(2));
                let yes = f.block(format!("y{i}"));
                let no = f.block(format!("n{i}"));
                let join = f.block(format!("j{i}"));
                f.cond_br(c, yes, no);
                f.switch_to(yes);
                f.store(slot.clone(), Operand::const_int(1), Type::I64);
                f.br(join);
                f.switch_to(no);
                f.store(slot.clone(), Operand::const_int(2), Type::I64);
                f.br(join);
                f.switch_to(join);
            }
        }
    }
    f.halt();
    f.finish();
    mb.finish().expect("builder output always verifies")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every built module verifies, PCs are unique and resolve back to
    /// their instructions, and every block is reachable.
    #[test]
    fn layout_invariants(shapes in prop::collection::vec(arb_shape(), 0..12)) {
        let m = build(&shapes);
        let mut seen = std::collections::HashSet::new();
        for (inst, loc) in m.all_insts() {
            prop_assert!(seen.insert(inst.pc), "duplicate PC {}", inst.pc);
            prop_assert_eq!(m.loc_of_pc(inst.pc), Some(loc));
            prop_assert_eq!(&m.inst(inst.pc).unwrap().kind, &inst.kind);
            prop_assert_eq!(m.func_of_pc(inst.pc).unwrap().id, loc.func);
            prop_assert!(inst.pc.0 >= Module::TEXT_BASE);
            prop_assert!(inst.pc < m.max_pc());
        }
        let f = m.func_by_name("main").unwrap();
        let cfg = Cfg::build(f);
        prop_assert_eq!(cfg.reachable().len(), f.blocks.len(), "builder leaves no dead blocks");
        // Exactly one halt terminator.
        let halts = f.insts().filter(|i| matches!(i.kind, InstKind::Halt)).count();
        prop_assert_eq!(halts, 1);
    }

    /// Rendering never panics and mentions every function.
    #[test]
    fn rendering_total(shapes in prop::collection::vec(arb_shape(), 0..8)) {
        let m = build(&shapes);
        let text = lazy_ir::printer::render_module(&m);
        prop_assert!(text.contains("@main"));
        for (inst, _) in m.all_insts() {
            let d = m.describe_pc(inst.pc);
            prop_assert!(!d.contains("<unknown>"), "{d}");
        }
    }
}

mod parse_roundtrip {
    use super::*;
    use lazy_ir::printer::render_module;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Textual render → parse → render is byte-stable for random
        /// well-formed modules.
        #[test]
        fn render_parse_render_is_stable(shapes in prop::collection::vec(super::arb_shape(), 0..10)) {
            let m = super::build(&shapes);
            let text = render_module(&m);
            let back = lazy_ir::parse_module(&text).expect("parses");
            prop_assert_eq!(render_module(&back), text);
        }
    }
}
