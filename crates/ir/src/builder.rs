//! Fluent builders for modules and functions.
//!
//! Workloads construct model programs through [`ModuleBuilder`] and
//! [`FunctionBuilder`]. Functions may be declared ahead of their
//! definition so call sites (including mutually recursive ones) can
//! reference them by [`FuncId`].

use crate::inst::{BinOp, CmpOp, Inst, InstKind, Operand, ValueId};
use crate::module::{
    BasicBlock, BlockId, FuncId, Function, Global, GlobalId, Module, Pc, StructDef,
};
use crate::types::Type;
use crate::verify::{verify_module, VerifyError};
use std::collections::HashMap;

/// Builds a [`Module`]: struct definitions, globals, and functions.
pub struct ModuleBuilder {
    name: String,
    structs: HashMap<String, StructDef>,
    globals: Vec<Global>,
    protos: Vec<Proto>,
    bodies: Vec<Option<Function>>,
    by_name: HashMap<String, FuncId>,
}

/// A declared function signature awaiting a body.
#[derive(Clone)]
struct Proto {
    name: String,
    param_tys: Vec<Type>,
    ret_ty: Type,
}

impl ModuleBuilder {
    /// Creates a builder for a module with the given name.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            name: name.into(),
            structs: HashMap::new(),
            globals: Vec::new(),
            protos: Vec::new(),
            bodies: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Defines a named struct.
    ///
    /// # Panics
    ///
    /// Panics if a struct with the same name was already defined.
    pub fn struct_def(&mut self, name: impl Into<String>, fields: Vec<(String, Type)>) {
        let name = name.into();
        let prev = self.structs.insert(
            name.clone(),
            StructDef {
                name: name.clone(),
                fields,
            },
        );
        assert!(prev.is_none(), "duplicate struct definition: {name}");
    }

    /// Declares a global variable and returns an operand addressing it.
    pub fn global(&mut self, name: impl Into<String>, ty: Type, init: Vec<i64>) -> Operand {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            id,
            name: name.into(),
            ty,
            init,
        });
        Operand::Global(id)
    }

    /// Declares a function signature, returning its id for call sites.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name was already declared.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        param_tys: Vec<Type>,
        ret_ty: Type,
    ) -> FuncId {
        let name = name.into();
        let id = FuncId(self.protos.len() as u32);
        assert!(
            self.by_name.insert(name.clone(), id).is_none(),
            "duplicate function declaration: {name}"
        );
        self.protos.push(Proto {
            name,
            param_tys,
            ret_ty,
        });
        self.bodies.push(None);
        id
    }

    /// Starts defining the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function was already defined.
    pub fn define(&mut self, id: FuncId) -> FunctionBuilder<'_> {
        assert!(
            self.bodies[id.0 as usize].is_none(),
            "function {} already defined",
            self.protos[id.0 as usize].name
        );
        let proto = self.protos[id.0 as usize].clone();
        FunctionBuilder::new(self, id, proto)
    }

    /// Declares and immediately starts defining a function.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        param_tys: Vec<Type>,
        ret_ty: Type,
    ) -> FunctionBuilder<'_> {
        let id = self.declare(name, param_tys, ret_ty);
        self.define(id)
    }

    /// Looks up a declared function's id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Returns the declared signature (parameter types, return type).
    pub fn signature(&self, id: FuncId) -> (&[Type], &Type) {
        let p = &self.protos[id.0 as usize];
        (&p.param_tys, &p.ret_ty)
    }

    fn struct_field_index(&self, strukt: &str, field: &str) -> usize {
        self.structs
            .get(strukt)
            .unwrap_or_else(|| panic!("unknown struct {strukt}"))
            .field_index(field)
            .unwrap_or_else(|| panic!("struct {strukt} has no field {field}"))
    }

    /// Finalizes the module: lays out PCs and runs the verifier.
    ///
    /// # Errors
    ///
    /// Returns the first verification error found, if any.
    ///
    /// # Panics
    ///
    /// Panics if a declared function was never defined.
    pub fn finish(self) -> Result<Module, VerifyError> {
        let mut functions = Vec::with_capacity(self.bodies.len());
        for (body, proto) in self.bodies.into_iter().zip(&self.protos) {
            functions.push(
                body.unwrap_or_else(|| panic!("function {} declared but not defined", proto.name)),
            );
        }
        let module = Module::assemble(self.name, self.structs, self.globals, functions);
        verify_module(&module)?;
        Ok(module)
    }
}

/// Builds one function's body block by block.
///
/// Instructions are appended to the *current* block, selected with
/// [`FunctionBuilder::switch_to`]. Emitting into a block that already has a
/// terminator is a builder-misuse panic.
pub struct FunctionBuilder<'m> {
    mb: &'m mut ModuleBuilder,
    id: FuncId,
    name: String,
    params: Vec<(ValueId, Type)>,
    ret_ty: Type,
    blocks: Vec<BasicBlock>,
    current: Option<BlockId>,
    next_reg: u32,
}

impl<'m> FunctionBuilder<'m> {
    fn new(mb: &'m mut ModuleBuilder, id: FuncId, proto: Proto) -> FunctionBuilder<'m> {
        let params: Vec<(ValueId, Type)> = proto
            .param_tys
            .iter()
            .enumerate()
            .map(|(i, t)| (ValueId(i as u32), t.clone()))
            .collect();
        let next_reg = params.len() as u32;
        let mut fb = FunctionBuilder {
            mb,
            id,
            name: proto.name,
            params,
            ret_ty: proto.ret_ty,
            blocks: Vec::new(),
            current: None,
            next_reg,
        };
        // Create the entry block eagerly so `entry()` is always valid.
        fb.block("entry");
        fb
    }

    /// The function id being defined (usable for recursive calls).
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Returns the operand for parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Operand {
        Operand::Reg(self.params[i].0)
    }

    /// Returns the entry block's id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Creates a new (empty) basic block with the given label.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            id,
            name: name.into(),
            insts: Vec::new(),
        });
        id
    }

    /// Makes `block` the current insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = Some(block);
    }

    fn emit(&mut self, kind: InstKind) -> Option<Operand> {
        let cur = self
            .current
            .expect("no current block; call switch_to first");
        let block = &mut self.blocks[cur.0 as usize];
        if let Some(last) = block.insts.last() {
            assert!(
                !last.kind.is_terminator(),
                "emitting into terminated block {} of {}",
                block.name,
                self.name
            );
        }
        let result = if kind.has_result() {
            let r = ValueId(self.next_reg);
            self.next_reg += 1;
            Some(r)
        } else {
            None
        };
        block.insts.push(Inst {
            kind,
            result,
            pc: Pc(0),
        });
        result.map(Operand::Reg)
    }

    fn emit_val(&mut self, kind: InstKind) -> Operand {
        self.emit(kind).expect("instruction should produce a value")
    }

    // ---- Memory ----

    /// Stack-allocates one value of `ty`; returns a `ty*`.
    pub fn alloca(&mut self, ty: Type) -> Operand {
        self.emit_val(InstKind::Alloca { ty })
    }

    /// Heap-allocates `count` values of `ty`; returns a `ty*`.
    pub fn heap_alloc(&mut self, ty: Type, count: Operand) -> Operand {
        self.emit_val(InstKind::HeapAlloc { ty, count })
    }

    /// Frees a heap allocation.
    pub fn free(&mut self, ptr: Operand) {
        self.emit(InstKind::Free { ptr });
    }

    /// Loads a `ty` from `ptr`.
    pub fn load(&mut self, ptr: Operand, ty: Type) -> Operand {
        self.emit_val(InstKind::Load { ptr, ty })
    }

    /// Stores `value` (a `ty`) to `ptr`.
    pub fn store(&mut self, ptr: Operand, value: Operand, ty: Type) {
        self.emit(InstKind::Store { ptr, value, ty });
    }

    /// Register copy (`p = q`).
    pub fn copy(&mut self, src: Operand) -> Operand {
        self.emit_val(InstKind::Copy { src })
    }

    /// Address of `strukt.field` within the struct `base` points to.
    pub fn field_addr(&mut self, base: Operand, strukt: &str, field: &str) -> Operand {
        let idx = self.mb.struct_field_index(strukt, field);
        self.emit_val(InstKind::FieldAddr {
            base,
            strukt: strukt.to_string(),
            field: idx,
        })
    }

    /// Address of element `index` of the `elem_ty` array `base` points to.
    pub fn index_addr(&mut self, base: Operand, index: Operand, elem_ty: Type) -> Operand {
        self.emit_val(InstKind::IndexAddr {
            base,
            index,
            elem_ty,
        })
    }

    // ---- Arithmetic ----

    /// Emits an integer binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Operand {
        self.emit_val(InstKind::Bin { op, lhs, rhs })
    }

    /// `lhs + rhs`.
    pub fn add(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    pub fn sub(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    pub fn mul(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// Emits an integer comparison producing an `i1`.
    pub fn cmp(&mut self, op: CmpOp, lhs: Operand, rhs: Operand) -> Operand {
        self.emit_val(InstKind::Cmp { op, lhs, rhs })
    }

    /// `lhs == rhs`.
    pub fn eq(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(CmpOp::Eq, lhs, rhs)
    }

    /// `lhs != rhs`.
    pub fn ne(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(CmpOp::Ne, lhs, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(CmpOp::Lt, lhs, rhs)
    }

    // ---- Control flow ----

    /// Direct call.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>) -> Operand {
        self.emit_val(InstKind::Call { callee, args })
    }

    /// Indirect call through a function pointer.
    pub fn call_indirect(&mut self, callee: Operand, args: Vec<Operand>) -> Operand {
        self.emit_val(InstKind::CallIndirect { callee, args })
    }

    /// Function return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.emit(InstKind::Ret { value });
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.emit(InstKind::Br { target });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.emit(InstKind::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Whole-program halt.
    pub fn halt(&mut self) {
        self.emit(InstKind::Halt);
    }

    // ---- Synchronization ----

    /// Blocking mutex acquisition.
    pub fn lock(&mut self, mutex: Operand) {
        self.emit(InstKind::MutexLock { mutex });
    }

    /// Mutex release.
    pub fn unlock(&mut self, mutex: Operand) {
        self.emit(InstKind::MutexUnlock { mutex });
    }

    /// Non-blocking mutex acquisition; yields 1 on success.
    pub fn try_lock(&mut self, mutex: Operand) -> Operand {
        self.emit_val(InstKind::MutexTryLock { mutex })
    }

    /// Shared (read) acquisition of a reader-writer lock.
    pub fn rw_read(&mut self, rw: Operand) {
        self.emit(InstKind::RwLockRead { rw });
    }

    /// Exclusive (write) acquisition of a reader-writer lock.
    pub fn rw_write(&mut self, rw: Operand) {
        self.emit(InstKind::RwLockWrite { rw });
    }

    /// Release of the calling thread's reader-writer hold.
    pub fn rw_unlock(&mut self, rw: Operand) {
        self.emit(InstKind::RwUnlock { rw });
    }

    /// Waits on a condition variable, releasing and reacquiring `mutex`.
    pub fn cond_wait(&mut self, cond: Operand, mutex: Operand) {
        self.emit(InstKind::CondWait { cond, mutex });
    }

    /// Wakes one condition-variable waiter.
    pub fn cond_signal(&mut self, cond: Operand) {
        self.emit(InstKind::CondSignal { cond });
    }

    /// Wakes all condition-variable waiters.
    pub fn cond_broadcast(&mut self, cond: Operand) {
        self.emit(InstKind::CondBroadcast { cond });
    }

    // ---- Threads ----

    /// Spawns a thread running `func(arg)`; yields a joinable handle.
    pub fn spawn(&mut self, func: FuncId, arg: Operand) -> Operand {
        self.emit_val(InstKind::ThreadSpawn { func, arg })
    }

    /// Joins a spawned thread.
    pub fn join(&mut self, tid: Operand) {
        self.emit(InstKind::ThreadJoin { tid });
    }

    // ---- Modelling ----

    /// Simulated work/latency of a fixed number of virtual nanoseconds.
    pub fn io(&mut self, label: &str, ns: u64) {
        self.emit(InstKind::Io {
            label: label.to_string(),
            ns: Operand::const_int(ns as i64),
        });
    }

    /// Simulated work/latency with a dynamic duration operand.
    pub fn io_dyn(&mut self, label: &str, ns: Operand) {
        self.emit(InstKind::Io {
            label: label.to_string(),
            ns,
        });
    }

    /// Asserts `cond` is non-zero; failure is fail-stop.
    pub fn assert(&mut self, cond: Operand, msg: &str) {
        self.emit(InstKind::Assert {
            cond,
            msg: msg.to_string(),
        });
    }

    /// Finishes the function and registers it with the module builder.
    pub fn finish(self) {
        let func = Function {
            id: self.id,
            name: self.name,
            params: self.params,
            ret_ty: self.ret_ty,
            blocks: self.blocks,
            reg_count: self.next_reg,
            base_pc: Pc(0),
        };
        self.mb.bodies[self.id.0 as usize] = Some(func);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_two_block_function() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![Type::I64], Type::I64);
        let entry = f.entry();
        let then_bb = f.block("then");
        let else_bb = f.block("else");
        f.switch_to(entry);
        let c = f.lt(f.param(0), Operand::const_int(10));
        f.cond_br(c, then_bb, else_bb);
        f.switch_to(then_bb);
        f.ret(Some(Operand::const_int(1)));
        f.switch_to(else_bb);
        f.ret(Some(Operand::const_int(0)));
        f.finish();
        let m = mb.finish().unwrap();
        let func = m.func_by_name("f").unwrap();
        assert_eq!(func.blocks.len(), 3);
        assert_eq!(func.params.len(), 1);
    }

    #[test]
    fn declare_then_define_supports_mutual_calls() {
        let mut mb = ModuleBuilder::new("m");
        let fa = mb.declare("a", vec![], Type::Void);
        let fb = mb.declare("b", vec![], Type::Void);
        let mut b = mb.define(fb);
        let e = b.entry();
        b.switch_to(e);
        b.call(fa, vec![]);
        b.ret(None);
        b.finish();
        let mut a = mb.define(fa);
        let e = a.entry();
        a.switch_to(e);
        a.ret(None);
        a.finish();
        let m = mb.finish().unwrap();
        assert_eq!(m.functions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emitting_after_terminator_panics() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        f.ret(None);
        f.copy(Operand::const_int(1));
    }

    #[test]
    #[should_panic(expected = "declared but not defined")]
    fn undefined_function_panics_at_finish() {
        let mut mb = ModuleBuilder::new("m");
        mb.declare("ghost", vec![], Type::Void);
        let _ = mb.finish();
    }

    #[test]
    fn globals_get_distinct_ids() {
        let mut mb = ModuleBuilder::new("m");
        let g1 = mb.global("a", Type::I64, vec![1]);
        let g2 = mb.global("b", Type::I64, vec![2]);
        assert_ne!(g1, g2);
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        assert_eq!(m.globals().len(), 2);
        assert_eq!(m.globals()[0].name, "a");
    }

    #[test]
    fn params_are_low_registers() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![Type::I64, Type::I64.ptr_to()], Type::Void);
        assert_eq!(f.param(0), Operand::Reg(ValueId(0)));
        assert_eq!(f.param(1), Operand::Reg(ValueId(1)));
        let e = f.entry();
        f.switch_to(e);
        // First fresh register comes after the parameters.
        let r = f.copy(Operand::const_int(0));
        assert_eq!(r, Operand::Reg(ValueId(2)));
        f.ret(None);
        f.finish();
        mb.finish().unwrap();
    }
}
