//! Parser for the textual IR form — the dual of [`crate::printer`].
//!
//! The server side of the paper holds "the bitcode file used by the
//! server-side analysis" (§5); this module gives the reproduction a
//! durable program format: modules render to text, and text parses back
//! to an identical module (PCs are re-assigned by the deterministic
//! layout, so a render→parse→render roundtrip is byte-stable). The CLI
//! uses it to diagnose user-supplied programs from files.
//!
//! The grammar is line-oriented:
//!
//! ```text
//! ; module NAME                      (comment lines start with ';')
//! %struct.Name = { i64 field, ... }
//! @name = global i64 [1, 2]          (initializer optional)
//! define void @main(i64 %0, ...) {
//! label:
//!   0x400040  %2 = load i64, i64* %1   (the PC column is optional)
//!   ...
//! }
//! ```

use crate::inst::{BinOp, CmpOp, Inst, InstKind, Operand, ValueId};
use crate::module::{
    BasicBlock, BlockId, FuncId, Function, Global, GlobalId, Module, Pc, StructDef,
};
use crate::types::Type;
use crate::verify::verify_module;
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// A tiny cursor over one line's text.
struct Cur<'a> {
    s: &'a str,
    line: usize,
}

impl<'a> Cur<'a> {
    fn new(s: &'a str, line: usize) -> Cur<'a> {
        Cur {
            s: s.trim_start(),
            line,
        }
    }

    fn skip_ws(&mut self) {
        self.s = self.s.trim_start();
    }

    fn eof(&mut self) -> bool {
        self.skip_ws();
        self.s.is_empty()
    }

    /// Consumes a literal prefix.
    fn eat(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if let Some(rest) = self.s.strip_prefix(lit) {
            self.s = rest;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.eat(lit) {
            Ok(())
        } else {
            err(self.line, format!("expected `{lit}` before `{}`", self.s))
        }
    }

    /// Consumes an identifier `[A-Za-z0-9_.-]+`.
    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let end = self
            .s
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-')))
            .map(|(i, _)| i)
            .unwrap_or(self.s.len());
        if end == 0 {
            return err(
                self.line,
                format!("expected identifier before `{}`", self.s),
            );
        }
        let (id, rest) = self.s.split_at(end);
        self.s = rest;
        Ok(id)
    }

    /// Consumes a decimal (possibly negative) integer.
    fn int(&mut self) -> Result<i64, ParseError> {
        self.skip_ws();
        let neg = self.s.starts_with('-');
        let body = if neg { &self.s[1..] } else { self.s };
        let end = body
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit())
            .map(|(i, _)| i)
            .unwrap_or(body.len());
        if end == 0 {
            return err(self.line, format!("expected integer before `{}`", self.s));
        }
        let text = &self.s[..end + usize::from(neg)];
        let v: i64 = text.parse().map_err(|_| ParseError {
            line: self.line,
            message: format!("bad integer {text}"),
        })?;
        self.s = &self.s[text.len()..];
        Ok(v)
    }

    /// Consumes a double-quoted string (no escapes).
    fn string(&mut self) -> Result<String, ParseError> {
        self.expect("\"")?;
        let Some(end) = self.s.find('"') else {
            return err(self.line, "unterminated string");
        };
        let out = self.s[..end].to_string();
        self.s = &self.s[end + 1..];
        Ok(out)
    }

    /// Parses a type, with trailing `*`s.
    fn ty(&mut self) -> Result<Type, ParseError> {
        self.skip_ws();
        let base = if self.eat("%struct.") {
            Type::Struct(self.ident()?.to_string())
        } else if self.eat("%mutex") {
            Type::Mutex
        } else if self.eat("%condvar") {
            Type::CondVar
        } else if self.eat("%rwlock") {
            Type::RwLock
        } else if self.eat("[") {
            let n = self.int()?;
            self.expect("x")?;
            let elem = self.ty()?;
            self.expect("]")?;
            Type::Array(Box::new(elem), n as u64)
        } else {
            let id = self.ident()?;
            match id {
                "void" => Type::Void,
                "i1" => Type::I1,
                "i8" => Type::I8,
                "i32" => Type::I32,
                "i64" => Type::I64,
                "func" => Type::Func,
                other => return err(self.line, format!("unknown type `{other}`")),
            }
        };
        let mut t = base;
        while self.eat("*") {
            t = t.ptr_to();
        }
        Ok(t)
    }

    /// Parses an operand: `%N`, `@gN`, `@fN`, `null`, or an integer.
    fn operand(&mut self) -> Result<Operand, ParseError> {
        self.skip_ws();
        if self.eat("%") {
            let v = self.int()?;
            Ok(Operand::Reg(ValueId(v as u32)))
        } else if self.eat("@g") {
            let v = self.int()?;
            Ok(Operand::Global(GlobalId(v as u32)))
        } else if self.eat("@f") {
            let v = self.int()?;
            Ok(Operand::Func(FuncId(v as u32)))
        } else if self.eat("null") {
            Ok(Operand::Null)
        } else {
            Ok(Operand::ConstInt(self.int()?))
        }
    }

    /// Parses a block reference `bbN`.
    fn block_ref(&mut self) -> Result<BlockId, ParseError> {
        self.expect("bb")?;
        Ok(BlockId(self.int()? as u32))
    }

    /// Parses a comma-separated operand list inside parentheses.
    fn arg_list(&mut self) -> Result<Vec<Operand>, ParseError> {
        self.expect("(")?;
        let mut args = Vec::new();
        if !self.eat(")") {
            loop {
                args.push(self.operand()?);
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        Ok(args)
    }
}

/// Parses one rendered instruction body (after any `%N = ` result).
fn parse_kind(c: &mut Cur<'_>) -> Result<InstKind, ParseError> {
    let op = c.ident()?;
    let kind = match op {
        "alloca" => InstKind::Alloca { ty: c.ty()? },
        "halloc" => {
            let ty = c.ty()?;
            c.expect(",")?;
            c.expect("count")?;
            InstKind::HeapAlloc {
                ty,
                count: c.operand()?,
            }
        }
        "free" => InstKind::Free { ptr: c.operand()? },
        "load" => {
            let ty = c.ty()?;
            c.expect(",")?;
            let _ptr_ty = c.ty()?;
            InstKind::Load {
                ptr: c.operand()?,
                ty,
            }
        }
        "store" => {
            let ty = c.ty()?;
            let value = c.operand()?;
            c.expect(",")?;
            let _ptr_ty = c.ty()?;
            InstKind::Store {
                ptr: c.operand()?,
                value,
                ty,
            }
        }
        "copy" => InstKind::Copy { src: c.operand()? },
        "fieldaddr" => {
            c.expect("%struct.")?;
            let strukt = c.ident()?.to_string();
            c.expect("*")?;
            let base = c.operand()?;
            c.expect(",")?;
            c.expect("field")?;
            InstKind::FieldAddr {
                base,
                strukt,
                field: c.int()? as usize,
            }
        }
        "indexaddr" => {
            let mut elem_ty = c.ty()?;
            // The printer renders `{elem_ty}*`; strip the pointer level.
            if let Type::Ptr(inner) = elem_ty {
                elem_ty = *inner;
            }
            let base = c.operand()?;
            c.expect(",")?;
            c.expect("idx")?;
            InstKind::IndexAddr {
                base,
                index: c.operand()?,
                elem_ty,
            }
        }
        "add" | "sub" | "mul" | "div" | "rem" | "and" | "or" | "xor" | "shl" | "shr" => {
            let bop = match op {
                "add" => BinOp::Add,
                "sub" => BinOp::Sub,
                "mul" => BinOp::Mul,
                "div" => BinOp::Div,
                "rem" => BinOp::Rem,
                "and" => BinOp::And,
                "or" => BinOp::Or,
                "xor" => BinOp::Xor,
                "shl" => BinOp::Shl,
                _ => BinOp::Shr,
            };
            let lhs = c.operand()?;
            c.expect(",")?;
            InstKind::Bin {
                op: bop,
                lhs,
                rhs: c.operand()?,
            }
        }
        "cmp" => {
            let pred = match c.ident()? {
                "eq" => CmpOp::Eq,
                "ne" => CmpOp::Ne,
                "lt" => CmpOp::Lt,
                "le" => CmpOp::Le,
                "gt" => CmpOp::Gt,
                "ge" => CmpOp::Ge,
                other => return err(c.line, format!("unknown predicate `{other}`")),
            };
            let lhs = c.operand()?;
            c.expect(",")?;
            InstKind::Cmp {
                op: pred,
                lhs,
                rhs: c.operand()?,
            }
        }
        "call" => {
            c.expect("@f")?;
            let callee = FuncId(c.int()? as u32);
            InstKind::Call {
                callee,
                args: c.arg_list()?,
            }
        }
        "icall" => {
            let callee = c.operand()?;
            InstKind::CallIndirect {
                callee,
                args: c.arg_list()?,
            }
        }
        "ret" => {
            if c.eat("void") {
                InstKind::Ret { value: None }
            } else {
                InstKind::Ret {
                    value: Some(c.operand()?),
                }
            }
        }
        "br" => InstKind::Br {
            target: c.block_ref()?,
        },
        "condbr" => {
            let cond = c.operand()?;
            c.expect(",")?;
            let then_bb = c.block_ref()?;
            c.expect(",")?;
            InstKind::CondBr {
                cond,
                then_bb,
                else_bb: c.block_ref()?,
            }
        }
        "mutex_lock" => InstKind::MutexLock {
            mutex: c.operand()?,
        },
        "mutex_unlock" => InstKind::MutexUnlock {
            mutex: c.operand()?,
        },
        "mutex_trylock" => InstKind::MutexTryLock {
            mutex: c.operand()?,
        },
        "cond_wait" => {
            let cond = c.operand()?;
            c.expect(",")?;
            InstKind::CondWait {
                cond,
                mutex: c.operand()?,
            }
        }
        "cond_signal" => InstKind::CondSignal { cond: c.operand()? },
        "rw_read" => InstKind::RwLockRead { rw: c.operand()? },
        "rw_write" => InstKind::RwLockWrite { rw: c.operand()? },
        "rw_unlock" => InstKind::RwUnlock { rw: c.operand()? },
        "cond_broadcast" => InstKind::CondBroadcast { cond: c.operand()? },
        "spawn" => {
            c.expect("@f")?;
            let func = FuncId(c.int()? as u32);
            let args = c.arg_list()?;
            if args.len() != 1 {
                return err(c.line, "spawn takes exactly one argument");
            }
            InstKind::ThreadSpawn {
                func,
                arg: args.into_iter().next().expect("one arg"),
            }
        }
        "join" => InstKind::ThreadJoin { tid: c.operand()? },
        "io" => {
            let label = c.string()?;
            c.expect(",")?;
            let ns = c.operand()?;
            c.expect("ns")?;
            InstKind::Io { label, ns }
        }
        "assert" => {
            let cond = c.operand()?;
            c.expect(",")?;
            InstKind::Assert {
                cond,
                msg: c.string()?,
            }
        }
        "halt" => InstKind::Halt,
        other => return err(c.line, format!("unknown instruction `{other}`")),
    };
    Ok(kind)
}

/// Parses the textual form back into a verified [`Module`].
///
/// # Examples
///
/// ```
/// let text = "\
/// ; module tiny
/// @g = global i64 [5]
/// define void @main() {
/// entry:
///   %0 = load i64, i64* @g0
///   halt
/// }
/// ";
/// let module = lazy_ir::parse_module(text).unwrap();
/// assert_eq!(module.name, "tiny");
/// assert_eq!(module.inst_count(), 2);
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line for syntax errors,
/// or a synthesized one for verifier failures.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut name = String::from("parsed");
    let mut structs: HashMap<String, StructDef> = HashMap::new();
    let mut globals: Vec<Global> = Vec::new();
    let mut functions: Vec<Function> = Vec::new();

    // In-progress function state.
    struct FnState {
        func: Function,
        cur_block: Option<usize>,
    }
    let mut current: Option<FnState> = None;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("; module ") {
            name = rest.trim().to_string();
            continue;
        }
        if line.starts_with(';') {
            continue;
        }
        if let Some(state) = &mut current {
            // Inside a function: `}`, `label:`, or an instruction.
            if line == "}" {
                let mut state = current.take().expect("current set");
                state.func.reg_count = state
                    .func
                    .insts()
                    .filter_map(|inst| inst.result)
                    .map(|r| r.0 + 1)
                    .chain(std::iter::once(state.func.params.len() as u32))
                    .max()
                    .unwrap_or(0);
                functions.push(state.func);
                continue;
            }
            if let Some(label) = line.strip_suffix(':') {
                let id = BlockId(state.func.blocks.len() as u32);
                state.func.blocks.push(BasicBlock {
                    id,
                    name: label.to_string(),
                    insts: Vec::new(),
                });
                state.cur_block = Some(state.func.blocks.len() - 1);
                continue;
            }
            // Instruction line; an optional leading PC column is ignored
            // (layout is reassigned).
            let mut c = Cur::new(line, lineno);
            if c.s.starts_with("0x") {
                let _ = c.ident();
            }
            let result = {
                c.skip_ws();
                if c.s.starts_with('%')
                    && c.s[1..].starts_with(|ch: char| ch.is_ascii_digit())
                    && c.s.contains('=')
                {
                    c.expect("%")?;
                    let v = c.int()? as u32;
                    c.expect("=")?;
                    Some(ValueId(v))
                } else {
                    None
                }
            };
            let kind = parse_kind(&mut c)?;
            if !c.eof() {
                return err(lineno, format!("trailing input `{}`", c.s));
            }
            if kind.has_result() != result.is_some() {
                return err(lineno, "result register presence mismatch");
            }
            let Some(bi) = state.cur_block else {
                return err(lineno, "instruction outside a block label");
            };
            state.func.blocks[bi].insts.push(Inst {
                kind,
                result,
                pc: Pc(0),
            });
            continue;
        }
        // Top level.
        if let Some(rest) = line.strip_prefix("%struct.") {
            let mut c = Cur::new(rest, lineno);
            let sname = c.ident()?.to_string();
            c.expect("=")?;
            c.expect("{")?;
            let mut fields = Vec::new();
            if !c.eat("}") {
                loop {
                    let ty = c.ty()?;
                    let fname = c.ident()?.to_string();
                    fields.push((fname, ty));
                    if c.eat("}") {
                        break;
                    }
                    c.expect(",")?;
                }
            }
            structs.insert(
                sname.clone(),
                StructDef {
                    name: sname,
                    fields,
                },
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix('@') {
            let mut c = Cur::new(rest, lineno);
            let gname = c.ident()?.to_string();
            c.expect("=")?;
            c.expect("global")?;
            let ty = c.ty()?;
            let mut init = Vec::new();
            if c.eat("[") && !c.eat("]") {
                loop {
                    init.push(c.int()?);
                    if c.eat("]") {
                        break;
                    }
                    c.expect(",")?;
                }
            }
            let id = GlobalId(globals.len() as u32);
            globals.push(Global {
                id,
                name: gname,
                ty,
                init,
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("define ") {
            let mut c = Cur::new(rest, lineno);
            let ret_ty = c.ty()?;
            c.expect("@")?;
            let fname = c.ident()?.to_string();
            c.expect("(")?;
            let mut params = Vec::new();
            if !c.eat(")") {
                loop {
                    let ty = c.ty()?;
                    c.expect("%")?;
                    let v = c.int()? as u32;
                    params.push((ValueId(v), ty));
                    if c.eat(")") {
                        break;
                    }
                    c.expect(",")?;
                }
            }
            c.expect("{")?;
            current = Some(FnState {
                func: Function {
                    id: FuncId(functions.len() as u32),
                    name: fname,
                    params,
                    ret_ty,
                    blocks: Vec::new(),
                    reg_count: 0,
                    base_pc: Pc(0),
                },
                cur_block: None,
            });
            continue;
        }
        return err(lineno, format!("unexpected top-level line `{line}`"));
    }
    if current.is_some() {
        return err(text.lines().count(), "unterminated function (missing `}`)");
    }

    let module = Module::assemble(name, structs, globals, functions);
    verify_module(&module).map_err(|e| ParseError {
        line: 0,
        message: format!("verification failed: {e}"),
    })?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::printer::render_module;

    fn roundtrip(m: &Module) -> Module {
        let text = render_module(m);
        parse_module(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut mb = ModuleBuilder::new("demo");
        mb.struct_def(
            "Pair",
            vec![("a".into(), Type::I64), ("b".into(), Type::I64)],
        );
        let g = mb.global("counter", Type::I64, vec![7]);
        let mx = mb.global("mx", Type::Mutex, vec![]);
        let helper = mb.declare("helper", vec![Type::I64], Type::I64);
        {
            let mut f = mb.define(helper);
            let e = f.entry();
            f.switch_to(e);
            let v = f.add(f.param(0), Operand::const_int(1));
            f.ret(Some(v));
            f.finish();
        }
        let worker = mb.declare("worker", vec![Type::I64], Type::Void);
        {
            let mut f = mb.define(worker);
            let e = f.entry();
            f.switch_to(e);
            f.lock(mx.clone());
            let v = f.load(g.clone(), Type::I64);
            let v1 = f.call(helper, vec![v]);
            f.store(g.clone(), v1, Type::I64);
            f.unlock(mx.clone());
            f.ret(None);
            f.finish();
        }
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        let loop_h = f.block("loop");
        let body = f.block("body");
        let done = f.block("done");
        f.switch_to(e);
        let p = f.alloca(Type::Struct("Pair".into()));
        let pa = f.field_addr(p.clone(), "Pair", "b");
        f.store(pa, Operand::const_int(3), Type::I64);
        let arr = f.heap_alloc(Type::I64, Operand::const_int(4));
        let slot = f.index_addr(arr.clone(), Operand::const_int(2), Type::I64);
        f.store(slot, Operand::const_int(9), Type::I64);
        let fp = f.copy(Operand::Func(helper));
        let r = f.call_indirect(fp, vec![Operand::const_int(1)]);
        let c = f.lt(r, Operand::const_int(100));
        f.assert(c, "sane");
        let t = f.spawn(worker, Operand::const_int(0));
        f.io("think", 1000);
        f.br(loop_h);
        f.switch_to(loop_h);
        let v = f.load(g.clone(), Type::I64);
        let cc = f.lt(v, Operand::const_int(8));
        f.cond_br(cc, body, done);
        f.switch_to(body);
        f.br(loop_h);
        f.switch_to(done);
        f.join(t);
        f.free(arr);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();

        let back = roundtrip(&m);
        // Structural equality via a second render.
        assert_eq!(render_module(&m), render_module(&back));
        assert_eq!(back.name, "demo");
        assert_eq!(back.globals().len(), 2);
        assert_eq!(back.globals()[0].init, vec![7]);
        assert_eq!(back.struct_def("Pair").unwrap().fields.len(), 2);
        assert_eq!(back.inst_count(), m.inst_count());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "; module x\ndefine void @main() {\nentry:\n  bogus_op %1\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("bogus_op"), "{e}");
    }

    #[test]
    fn parse_rejects_unterminated_function() {
        let text = "define void @main() {\nentry:\n  halt";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
    }

    #[test]
    fn parse_runs_the_verifier() {
        // Branch to a nonexistent block parses but must not verify.
        let text = "define void @main() {\nentry:\n  br bb7\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("verification failed"), "{e}");
    }

    #[test]
    fn parse_without_pc_column() {
        let text = "\
; module tiny
@g = global i64 [5]
define void @main() {
entry:
  %0 = load i64, i64* @g0
  %1 = cmp eq %0, 5
  assert %1, \"g is five\"
  halt
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(m.inst_count(), 4);
        assert_eq!(m.globals()[0].init, vec![5]);
    }

    #[test]
    fn nested_array_and_pointer_types() {
        let text = "\
define void @main() {
entry:
  %0 = alloca [4 x i64*]
  %1 = alloca %mutex
  mutex_lock %1
  mutex_unlock %1
  halt
}
";
        let m = parse_module(text).unwrap();
        let kinds: Vec<_> = m.functions()[0].insts().map(|i| i.kind.clone()).collect();
        assert!(matches!(
            &kinds[0],
            InstKind::Alloca { ty: Type::Array(elem, 4) } if **elem == Type::I64.ptr_to()
        ));
        assert!(matches!(&kinds[1], InstKind::Alloca { ty: Type::Mutex }));
    }
}

#[cfg(test)]
mod malformed_tests {
    use super::*;

    fn expect_err(text: &str, needle: &str) {
        let e = parse_module(text).unwrap_err();
        assert!(
            e.to_string().contains(needle),
            "expected `{needle}` in `{e}` for:\n{text}"
        );
    }

    #[test]
    fn rejects_bad_type() {
        expect_err(
            "define void @main() {\nentry:\n  %0 = alloca i13\n  halt\n}\n",
            "unknown type",
        );
    }

    #[test]
    fn rejects_instruction_before_label() {
        expect_err(
            "define void @main() {\n  halt\n}\n",
            "outside a block label",
        );
    }

    #[test]
    fn rejects_result_mismatch() {
        // halt produces no result.
        expect_err(
            "define void @main() {\nentry:\n  %0 = halt\n}\n",
            "result register presence mismatch",
        );
        // alloca requires one.
        expect_err(
            "define void @main() {\nentry:\n  alloca i64\n  halt\n}\n",
            "result register presence mismatch",
        );
    }

    #[test]
    fn rejects_trailing_tokens() {
        expect_err(
            "define void @main() {\nentry:\n  halt extra\n}\n",
            "trailing input",
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        expect_err(
            "define void @main() {\nentry:\n  io \"oops, 5 ns\n  halt\n}\n",
            "unterminated string",
        );
    }

    #[test]
    fn rejects_garbage_top_level() {
        expect_err("what is this\n", "unexpected top-level line");
    }

    #[test]
    fn rejects_unknown_global_reference() {
        // @g7 does not exist: the verifier catches it.
        expect_err(
            "define void @main() {\nentry:\n  %0 = load i64, i64* @g7\n  halt\n}\n",
            "verification failed",
        );
    }

    #[test]
    fn rejects_bad_spawn_arity() {
        expect_err(
            "define void @w(i64 %0) {\nentry:\n  ret void\n}\ndefine void @main() {\nentry:\n  %0 = spawn @f0 (1, 2)\n  halt\n}\n",
            "spawn takes exactly one argument",
        );
    }

    #[test]
    fn accepts_comments_and_blank_lines_anywhere() {
        let text = "\n; leading comment\n\n@g = global i64 [1]\n\n; mid comment\ndefine void @main() {\nentry:\n  halt\n}\n";
        assert!(parse_module(text).is_ok());
    }

    #[test]
    fn rwlock_ops_roundtrip() {
        let text = "\
@rw = global %rwlock
define void @main() {
entry:
  rw_read @g0
  rw_unlock @g0
  rw_write @g0
  rw_unlock @g0
  halt
}
";
        let m = parse_module(text).unwrap();
        let rendered = crate::printer::render_module(&m);
        assert!(rendered.contains("rw_read"), "{rendered}");
        assert!(rendered.contains("rw_write"), "{rendered}");
        let back = parse_module(&rendered).unwrap();
        assert_eq!(crate::printer::render_module(&back), rendered);
    }
}
