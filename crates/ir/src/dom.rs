//! Dominator and postdominator trees (Cooper–Harvey–Kennedy).
//!
//! Postdominance drives *control dependence*: block `B` is control
//! dependent on branch block `A` when `A` has a successor through which
//! execution must reach `B` (i.e. `B` postdominates that successor) but
//! `B` does not postdominate `A` itself — `A`'s branch decides whether
//! `B` runs. Static slicing (the Gist substrate) uses this to pull in
//! exactly the branches that gate an instruction, rather than every
//! branch that can merely reach it.

use crate::cfg::Cfg;
use crate::module::{BlockId, Function};
use std::collections::HashMap;

/// The dominator (or postdominator) tree of one function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block (`idom[entry] == entry`); blocks
    /// not reachable from the root are absent.
    idom: HashMap<BlockId, BlockId>,
}

impl DomTree {
    /// Immediate dominator of `b` (none for the root or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom.get(&b) {
            Some(d) if *d != b => Some(*d),
            _ => None,
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

/// Generic CHK fixpoint over an ordered graph.
fn chk(
    order: &[BlockId], // Reverse topological-ish order, root first.
    preds: &dyn Fn(BlockId) -> Vec<BlockId>,
    root: BlockId,
) -> HashMap<BlockId, BlockId> {
    let index: HashMap<BlockId, usize> = order.iter().enumerate().map(|(i, b)| (*b, i)).collect();
    let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
    idom.insert(root, root);
    let intersect = |idom: &HashMap<BlockId, BlockId>, mut a: BlockId, mut b: BlockId| {
        while a != b {
            while index[&a] > index[&b] {
                a = idom[&a];
            }
            while index[&b] > index[&a] {
                b = idom[&b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for p in preds(b) {
                if !idom.contains_key(&p) {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(n) = new_idom {
                if idom.get(&b) != Some(&n) {
                    idom.insert(b, n);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// Computes the dominator tree of `func` (rooted at the entry block).
pub fn dominators(func: &Function) -> DomTree {
    let cfg = Cfg::build(func);
    // Reverse postorder from entry.
    let order = rpo(func.blocks.len(), BlockId(0), &|b| {
        cfg.successors(b).to_vec()
    });
    let preds = |b: BlockId| cfg.predecessors(b).to_vec();
    DomTree {
        idom: chk(&order, &preds, BlockId(0)),
    }
}

/// Computes the postdominator tree of `func`.
///
/// Functions may have several exits (`ret`/`halt` blocks); a virtual
/// exit unifies them: each exit block's immediate postdominator is
/// itself absent from the tree (they are roots). To keep the API
/// simple, the analysis runs on the reversed CFG from each exit and
/// merges with the standard virtual-exit construction.
pub fn postdominators(func: &Function) -> DomTree {
    let cfg = Cfg::build(func);
    let n = func.blocks.len();
    // Virtual exit = BlockId(n as u32). Exits = blocks with no succs.
    let virt = BlockId(n as u32);
    let exits: Vec<BlockId> = func
        .blocks
        .iter()
        .filter(|b| cfg.successors(b.id).is_empty())
        .map(|b| b.id)
        .collect();
    let succs_rev = |b: BlockId| -> Vec<BlockId> {
        if b == virt {
            exits.clone()
        } else {
            cfg.predecessors(b).to_vec()
        }
    };
    let preds_rev = |b: BlockId| -> Vec<BlockId> {
        let mut v: Vec<BlockId> = cfg.successors(b).to_vec();
        if exits.contains(&b) {
            v.push(virt);
        }
        v
    };
    let order = rpo(n + 1, virt, &|b| succs_rev(b));
    let mut idom = chk(&order, &preds_rev, virt);
    // Strip the virtual exit: blocks whose ipdom is the virtual exit
    // become roots.
    idom.retain(|b, d| *b != virt && *d != virt);
    DomTree { idom }
}

/// Reverse postorder over an implicit graph.
fn rpo(nblocks: usize, root: BlockId, succs: &dyn Fn(BlockId) -> Vec<BlockId>) -> Vec<BlockId> {
    let mut visited = vec![false; nblocks + 1];
    let mut post = Vec::new();
    // Iterative DFS with an explicit stack of (block, next-child).
    let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
    let idx = |b: BlockId| b.0 as usize;
    visited[idx(root)] = true;
    stack.push((root, succs(root), 0));
    while let Some((b, ss, i)) = stack.last_mut() {
        if *i < ss.len() {
            let child = ss[*i];
            *i += 1;
            if !visited[idx(child)] {
                visited[idx(child)] = true;
                stack.push((child, succs(child), 0));
            }
        } else {
            post.push(*b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// The control-dependence relation of one function: for each block, the
/// branch blocks whose decisions gate its execution.
pub fn control_dependence(func: &Function) -> HashMap<BlockId, Vec<BlockId>> {
    let cfg = Cfg::build(func);
    let pdom = postdominators(func);
    let mut deps: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for a in &func.blocks {
        let succs = cfg.successors(a.id);
        if succs.len() < 2 {
            continue;
        }
        for &s in succs {
            // Walk the postdominator chain from `s` up to (but not
            // including) ipdom(a): every block on it is control
            // dependent on `a` (Ferrante et al. via the pdom tree).
            let stop = pdom.idom(a.id);
            let mut cur = Some(s);
            while let Some(b) = cur {
                if Some(b) == stop {
                    break;
                }
                let entry = deps.entry(b).or_default();
                if !entry.contains(&a.id) {
                    entry.push(a.id);
                }
                cur = pdom.idom(b);
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;
    use crate::types::Type;

    /// entry → cond ? then : else → join → (loop back to cond2 ? body :
    /// exit).
    fn shape() -> crate::module::Module {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![Type::I64], Type::Void);
        let entry = f.entry(); // bb0
        let then_b = f.block("then"); // bb1
        let else_b = f.block("else"); // bb2
        let join = f.block("join"); // bb3
        let head = f.block("head"); // bb4
        let body = f.block("body"); // bb5
        let exit = f.block("exit"); // bb6
        f.switch_to(entry);
        let c = f.lt(f.param(0), Operand::const_int(1));
        f.cond_br(c, then_b, else_b);
        f.switch_to(then_b);
        f.br(join);
        f.switch_to(else_b);
        f.br(join);
        f.switch_to(join);
        f.br(head);
        f.switch_to(head);
        let c2 = f.lt(f.param(0), Operand::const_int(5));
        f.cond_br(c2, body, exit);
        f.switch_to(body);
        f.br(head);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish().unwrap()
    }

    #[test]
    fn dominator_tree_of_diamond_and_loop() {
        let m = shape();
        let f = m.func_by_name("f").unwrap();
        let dom = dominators(f);
        // Entry dominates everything.
        for b in &f.blocks {
            assert!(
                dom.dominates(BlockId(0), b.id),
                "entry dominates bb{}",
                b.id.0
            );
        }
        // Join's idom is entry (neither arm dominates it).
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        // Body's idom is the loop head.
        assert_eq!(dom.idom(BlockId(5)), Some(BlockId(4)));
        // Then does not dominate join.
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn postdominators_with_virtual_exit() {
        let m = shape();
        let f = m.func_by_name("f").unwrap();
        let pdom = postdominators(f);
        // Join postdominates both arms and the entry.
        assert!(pdom.dominates(BlockId(3), BlockId(1)));
        assert!(pdom.dominates(BlockId(3), BlockId(2)));
        assert!(pdom.dominates(BlockId(3), BlockId(0)));
        // Exit postdominates the loop head.
        assert!(pdom.dominates(BlockId(6), BlockId(4)));
        // The then-arm does not postdominate entry.
        assert!(!pdom.dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn control_dependence_is_precise() {
        let m = shape();
        let f = m.func_by_name("f").unwrap();
        let cd = control_dependence(f);
        // The diamond arms depend on the entry branch.
        assert_eq!(cd.get(&BlockId(1)), Some(&vec![BlockId(0)]));
        assert_eq!(cd.get(&BlockId(2)), Some(&vec![BlockId(0)]));
        // Join is NOT control dependent on the entry branch (it always
        // runs) — the coarse "reaches" approximation would claim it is.
        assert!(!cd.contains_key(&BlockId(3)));
        // The loop body depends on the loop-head branch; so does the
        // head itself (it re-runs only if taken).
        assert_eq!(cd.get(&BlockId(5)), Some(&vec![BlockId(4)]));
        assert_eq!(cd.get(&BlockId(4)), Some(&vec![BlockId(4)]));
        // Exit is not control dependent on anything (always reached).
        assert!(!cd.contains_key(&BlockId(6)));
    }
}
