//! Control-flow-graph utilities.
//!
//! Trace decoding walks function CFGs to reconstruct executed basic-block
//! sequences from taken/not-taken bits, and the diagnosis server uses
//! predecessor information for the paper's step 8 fallback (requesting
//! successful traces at predecessor blocks when the failure block cannot
//! be used as a breakpoint site).

use crate::inst::InstKind;
use crate::module::{BlockId, Function, Pc};
use std::collections::{HashMap, HashSet, VecDeque};

/// The control-flow graph of one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: HashMap<BlockId, Vec<BlockId>>,
    preds: HashMap<BlockId, Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of `func` from its block terminators.
    ///
    /// Blocks ending in `Ret` or `Halt` have no successors; calls are not
    /// CFG edges (interprocedural flow is handled by the call graph).
    pub fn build(func: &Function) -> Cfg {
        let mut succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for block in &func.blocks {
            let targets = match &block.terminator().kind {
                InstKind::Br { target } => vec![*target],
                InstKind::CondBr {
                    then_bb, else_bb, ..
                } => vec![*then_bb, *else_bb],
                _ => vec![],
            };
            for t in &targets {
                preds.entry(*t).or_default().push(block.id);
            }
            succs.insert(block.id, targets);
        }
        Cfg { succs, preds }
    }

    /// Successor blocks of `block`.
    pub fn successors(&self, block: BlockId) -> &[BlockId] {
        self.succs.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Predecessor blocks of `block`.
    pub fn predecessors(&self, block: BlockId) -> &[BlockId] {
        self.preds.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns the set of blocks reachable from the entry block.
    pub fn reachable(&self) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([BlockId(0)]);
        while let Some(b) = queue.pop_front() {
            if seen.insert(b) {
                queue.extend(self.successors(b).iter().copied());
            }
        }
        seen
    }

    /// Breadth-first predecessor walk from `start`, yielding blocks in
    /// increasing distance order (excluding `start` itself).
    ///
    /// This is the order in which the diagnosis server tries alternative
    /// breakpoint sites ("Lazy Diagnosis clients iterate over predecessor
    /// blocks until they reach a block where a trace can be generated",
    /// §4.1).
    pub fn predecessor_walk(&self, start: BlockId) -> Vec<BlockId> {
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([start]);
        let mut order = Vec::new();
        while let Some(b) = queue.pop_front() {
            for p in self.predecessors(b) {
                if seen.insert(*p) {
                    order.push(*p);
                    queue.push_back(*p);
                }
            }
        }
        order
    }
}

/// Returns the PC of the first instruction of each basic block of `func`.
pub fn block_entry_pcs(func: &Function) -> HashMap<BlockId, Pc> {
    func.blocks
        .iter()
        .map(|b| (b.id, b.insts.first().expect("empty block").pc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;
    use crate::types::Type;

    /// entry -> (loop_head -> body -> loop_head | exit)
    fn diamond() -> crate::module::Module {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![Type::I64], Type::Void);
        let entry = f.entry();
        let head = f.block("head");
        let body = f.block("body");
        let exit = f.block("exit");
        f.switch_to(entry);
        f.br(head);
        f.switch_to(head);
        let c = f.lt(f.param(0), Operand::const_int(3));
        f.cond_br(c, body, exit);
        f.switch_to(body);
        f.br(head);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish().unwrap()
    }

    #[test]
    fn successors_and_predecessors() {
        let m = diamond();
        let f = m.func_by_name("f").unwrap();
        let cfg = Cfg::build(f);
        assert_eq!(cfg.successors(BlockId(0)), &[BlockId(1)]);
        assert_eq!(cfg.successors(BlockId(1)), &[BlockId(2), BlockId(3)]);
        assert_eq!(cfg.successors(BlockId(3)), &[] as &[BlockId]);
        let mut preds = cfg.predecessors(BlockId(1)).to_vec();
        preds.sort();
        assert_eq!(preds, vec![BlockId(0), BlockId(2)]);
    }

    #[test]
    fn reachability_covers_all_blocks() {
        let m = diamond();
        let f = m.func_by_name("f").unwrap();
        let cfg = Cfg::build(f);
        assert_eq!(cfg.reachable().len(), 4);
    }

    #[test]
    fn predecessor_walk_orders_by_distance() {
        let m = diamond();
        let f = m.func_by_name("f").unwrap();
        let cfg = Cfg::build(f);
        let walk = cfg.predecessor_walk(BlockId(3));
        // Direct predecessor (head) first, then its predecessors.
        assert_eq!(walk[0], BlockId(1));
        assert!(walk.contains(&BlockId(0)));
        assert!(walk.contains(&BlockId(2)));
        assert!(!walk.contains(&BlockId(3)));
    }

    #[test]
    fn block_entry_pcs_are_first_insts() {
        let m = diamond();
        let f = m.func_by_name("f").unwrap();
        let pcs = block_entry_pcs(f);
        for b in &f.blocks {
            assert_eq!(pcs[&b.id], b.insts[0].pc);
        }
    }
}
