//! Module verification.
//!
//! The verifier catches malformed IR at workload-construction time so the
//! VM, tracer, and analyses can assume structural invariants: every block
//! ends in exactly one terminator, branch targets exist, registers are
//! defined before (somewhere) they are used, call arities match, and
//! struct field references resolve.

use crate::inst::{InstKind, Operand, ValueId};
use crate::module::{FuncId, Module};
use std::collections::HashSet;
use std::fmt;

/// A structural error found in a module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the offending function (empty for module-level errors).
    pub func: String,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.func.is_empty() {
            write!(f, "verify error: {}", self.message)
        } else {
            write!(f, "verify error in @{}: {}", self.func, self.message)
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies structural invariants of a module.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in module.functions() {
        verify_function(module, func.id)?;
    }
    Ok(())
}

fn err(func: &str, message: impl Into<String>) -> VerifyError {
    VerifyError {
        func: func.to_string(),
        message: message.into(),
    }
}

fn verify_function(module: &Module, id: FuncId) -> Result<(), VerifyError> {
    let func = module.func(id);
    let name = &func.name;
    if func.blocks.is_empty() {
        return Err(err(name, "function has no blocks"));
    }

    // Collect all defined registers: parameters plus instruction results.
    let mut defined: HashSet<ValueId> = func.params.iter().map(|(v, _)| *v).collect();
    for inst in func.insts() {
        if let Some(r) = inst.result {
            if !defined.insert(r) {
                return Err(err(name, format!("register {r} defined twice")));
            }
        }
    }

    let nblocks = func.blocks.len() as u32;
    for block in &func.blocks {
        let Some(last) = block.insts.last() else {
            return Err(err(name, format!("block {} is empty", block.name)));
        };
        if !last.kind.is_terminator() {
            return Err(err(
                name,
                format!("block {} does not end in a terminator", block.name),
            ));
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if i + 1 < block.insts.len() && inst.kind.is_terminator() {
                return Err(err(name, format!("terminator mid-block in {}", block.name)));
            }
            if inst.kind.has_result() != inst.result.is_some() {
                return Err(err(name, "result register presence mismatch"));
            }
            // Operand registers must be defined somewhere in the function.
            for op in inst.kind.operands() {
                match op {
                    Operand::Reg(v) => {
                        if !defined.contains(v) {
                            return Err(err(name, format!("use of undefined register {v}")));
                        }
                    }
                    Operand::Global(g) => {
                        if g.0 as usize >= module.globals().len() {
                            return Err(err(name, format!("unknown global @g{}", g.0)));
                        }
                    }
                    Operand::Func(f) => {
                        if f.0 as usize >= module.functions().len() {
                            return Err(err(name, format!("unknown function @f{}", f.0)));
                        }
                    }
                    Operand::ConstInt(_) | Operand::Null => {}
                }
            }
            // Kind-specific checks.
            match &inst.kind {
                InstKind::Br { target } if target.0 >= nblocks => {
                    return Err(err(name, format!("branch to unknown block bb{}", target.0)));
                }
                InstKind::CondBr {
                    then_bb, else_bb, ..
                } if then_bb.0 >= nblocks || else_bb.0 >= nblocks => {
                    return Err(err(name, "conditional branch to unknown block"));
                }
                InstKind::Call { callee, args } => {
                    if callee.0 as usize >= module.functions().len() {
                        return Err(err(
                            name,
                            format!("call to unknown function @f{}", callee.0),
                        ));
                    }
                    let target = module.func(*callee);
                    if target.params.len() != args.len() {
                        return Err(err(
                            name,
                            format!(
                                "call to @{} with {} args, expected {}",
                                target.name,
                                args.len(),
                                target.params.len()
                            ),
                        ));
                    }
                }
                InstKind::ThreadSpawn { func: f, .. } => {
                    if f.0 as usize >= module.functions().len() {
                        return Err(err(name, "spawn of unknown function"));
                    }
                    let target = module.func(*f);
                    if target.params.len() != 1 {
                        return Err(err(
                            name,
                            format!(
                                "thread entry @{} must take exactly one argument",
                                target.name
                            ),
                        ));
                    }
                }
                InstKind::FieldAddr { strukt, field, .. } => {
                    let Some(def) = module.struct_def(strukt) else {
                        return Err(err(name, format!("fieldaddr of unknown struct {strukt}")));
                    };
                    if *field >= def.fields.len() {
                        return Err(err(
                            name,
                            format!("fieldaddr index {field} out of range for {strukt}"),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Inst;
    use crate::module::{BasicBlock, BlockId, Pc};
    use crate::types::Type;

    #[test]
    fn accepts_well_formed_module() {
        let mut mb = ModuleBuilder::new("ok");
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        f.halt();
        f.finish();
        assert!(mb.finish().is_ok());
    }

    /// Builds a raw module bypassing the builder, to exercise error paths.
    fn raw_module(blocks: Vec<BasicBlock>) -> Module {
        use crate::module::Function;
        let func = Function {
            id: FuncId(0),
            name: "bad".into(),
            params: vec![],
            ret_ty: Type::Void,
            blocks,
            reg_count: 0,
            base_pc: Pc(0),
        };
        Module::assemble(
            "raw".into(),
            std::collections::HashMap::new(),
            vec![],
            vec![func],
        )
    }

    #[test]
    fn rejects_missing_terminator() {
        let m = raw_module(vec![BasicBlock {
            id: BlockId(0),
            name: "entry".into(),
            insts: vec![Inst {
                kind: InstKind::Copy {
                    src: Operand::ConstInt(1),
                },
                result: Some(ValueId(0)),
                pc: Pc(0),
            }],
        }]);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_empty_block() {
        let m = raw_module(vec![BasicBlock {
            id: BlockId(0),
            name: "entry".into(),
            insts: vec![],
        }]);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_undefined_register_use() {
        let m = raw_module(vec![BasicBlock {
            id: BlockId(0),
            name: "entry".into(),
            insts: vec![
                Inst {
                    kind: InstKind::Free {
                        ptr: Operand::Reg(ValueId(9)),
                    },
                    result: None,
                    pc: Pc(0),
                },
                Inst {
                    kind: InstKind::Halt,
                    result: None,
                    pc: Pc(0),
                },
            ],
        }]);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("undefined register"), "{e}");
    }

    #[test]
    fn rejects_branch_out_of_range() {
        let m = raw_module(vec![BasicBlock {
            id: BlockId(0),
            name: "entry".into(),
            insts: vec![Inst {
                kind: InstKind::Br { target: BlockId(7) },
                result: None,
                pc: Pc(0),
            }],
        }]);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("unknown block"), "{e}");
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.declare("callee", vec![Type::I64], Type::Void);
        let mut c = mb.define(callee);
        let e = c.entry();
        c.switch_to(e);
        c.ret(None);
        c.finish();
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        f.call(callee, vec![]); // Wrong arity.
        f.halt();
        f.finish();
        let err = mb.finish().unwrap_err();
        assert!(err.message.contains("expected 1"), "{err}");
    }

    #[test]
    fn rejects_spawn_of_wrong_arity_entry() {
        let mut mb = ModuleBuilder::new("m");
        let worker = mb.declare("worker", vec![], Type::Void);
        let mut w = mb.define(worker);
        let e = w.entry();
        w.switch_to(e);
        w.ret(None);
        w.finish();
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        f.spawn(worker, Operand::ConstInt(0));
        f.halt();
        f.finish();
        let err = mb.finish().unwrap_err();
        assert!(err.message.contains("exactly one argument"), "{err}");
    }
}
