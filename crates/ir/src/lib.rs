#![warn(missing_docs)]

//! # lazy-ir — LLVM-like intermediate representation
//!
//! This crate is the program-representation substrate of the Lazy Diagnosis
//! reproduction. The paper's prototype (Snorlax, SOSP 2017) analyzes LLVM
//! bitcode produced by clang; every fact its analyses consume is available
//! at the IR level: instruction opcodes, pointer operands and their types,
//! control-flow-graph edges, and a mapping from program counters in the
//! stripped production binary back to IR instructions. This crate provides
//! exactly that interface:
//!
//! * [`Type`] — a small LLVM-flavoured type system with typed pointers and
//!   named structs (used by type-based ranking, §4.3 of the paper).
//! * [`Inst`] / [`InstKind`] — a register-based instruction set including
//!   memory operations, synchronization intrinsics, thread management, and
//!   simulated-latency I/O operations.
//! * [`Function`], [`BasicBlock`], [`Module`] — the program container, with
//!   a fluent [`FunctionBuilder`] for constructing workloads.
//! * [`Pc`] — virtual program counters assigned by module layout; the
//!   tracing and execution substrates speak only in PCs ("stripped
//!   binary"), and [`Module::inst`] is the server-side "debug info" map.
//! * [`mod@cfg`] — successor/predecessor computation and reachability;
//!   [`mod@dom`] — dominator/postdominator trees and control dependence.
//! * [`verify`] — a module verifier catching malformed IR at build time.
//!
//! ## Example
//!
//! ```
//! use lazy_ir::{ModuleBuilder, Type, Operand};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut f = mb.function("main", vec![], Type::I64);
//! let entry = f.entry();
//! f.switch_to(entry);
//! let x = f.alloca(Type::I64);
//! f.store(x.clone(), Operand::const_int(41), Type::I64);
//! let v = f.load(x, Type::I64);
//! let one = f.add(v, Operand::const_int(1));
//! f.ret(Some(one));
//! f.finish();
//! let module = mb.finish().expect("verified module");
//! assert_eq!(module.functions().len(), 1);
//! ```

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod inst;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use cfg::Cfg;
pub use dom::{control_dependence, dominators, postdominators, DomTree};
pub use inst::{BinOp, CmpOp, Inst, InstKind, Operand, ValueId};
pub use module::{
    BasicBlock, BlockId, FuncId, Function, Global, GlobalId, InstLoc, Module, Pc, StructDef,
};
pub use parser::{parse_module, ParseError};
pub use types::Type;
pub use verify::{verify_module, VerifyError};
