//! Instructions and operands.
//!
//! The instruction set is register-based (an unbounded set of virtual
//! registers per function, like LLVM without SSA phi nodes — mutable local
//! state goes through `Alloca` slots, as clang emits at `-O0`). It covers
//! everything the diagnosis pipeline and the bug corpus need: memory
//! operations with typed pointer operands, pointer arithmetic at struct
//! granularity, direct/indirect calls, pthread-style synchronization
//! intrinsics, thread management, assertions, and simulated-latency I/O
//! used by workloads to model request handling, parsing, disk and network
//! work (the source of the coarse inter-event spacing the paper's
//! hypothesis is about).

use crate::module::{BlockId, FuncId, GlobalId, Pc};
use crate::types::Type;
use std::fmt;

/// A virtual register local to one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// An instruction operand.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A virtual register produced by an earlier instruction or parameter.
    Reg(ValueId),
    /// An integer constant.
    ConstInt(i64),
    /// The address of a global variable.
    Global(GlobalId),
    /// A reference to a function (a function pointer constant).
    Func(FuncId),
    /// The null pointer.
    Null,
}

impl Operand {
    /// Convenience constructor for an integer constant operand.
    pub fn const_int(v: i64) -> Operand {
        Operand::ConstInt(v)
    }

    /// Returns the register if this operand is one.
    pub fn as_reg(&self) -> Option<ValueId> {
        match self {
            Operand::Reg(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(v) => write!(f, "{v}"),
            Operand::ConstInt(c) => write!(f, "{c}"),
            Operand::Global(g) => write!(f, "@g{}", g.0),
            Operand::Func(fun) => write!(f, "@f{}", fun.0),
            Operand::Null => write!(f, "null"),
        }
    }
}

/// Integer binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; division by zero traps (a crash failure in the VM).
    Div,
    /// Signed remainder; remainder by zero traps.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Wrapping left shift.
    Shl,
    /// Wrapping (arithmetic) right shift.
    Shr,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// Integer comparison predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// The operation an instruction performs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstKind {
    /// Stack allocation of one value of `ty`; yields a `ty*`.
    ///
    /// The allocation site (the instruction's PC) becomes an abstract
    /// memory location in points-to analysis.
    Alloca {
        /// Allocated value type.
        ty: Type,
    },
    /// Heap allocation of `count` values of `ty`; yields a `ty*`.
    HeapAlloc {
        /// Element type.
        ty: Type,
        /// Element count.
        count: Operand,
    },
    /// Frees a heap allocation; subsequent accesses are use-after-free
    /// crashes (the pbzip2-style order-violation substrate).
    Free {
        /// The allocation's base pointer.
        ptr: Operand,
    },
    /// Loads a value of type `ty` from `ptr`.
    Load {
        /// Pointer read through.
        ptr: Operand,
        /// Declared pointee type.
        ty: Type,
    },
    /// Stores `value` of type `ty` to `ptr`.
    Store {
        /// Pointer written through.
        ptr: Operand,
        /// Value stored.
        value: Operand,
        /// Declared pointee type.
        ty: Type,
    },
    /// Register copy / constant materialization (`p = q`, rule 2 of the
    /// paper's Figure 3).
    Copy {
        /// Source operand.
        src: Operand,
    },
    /// Address of field `field` of the struct `base` points to
    /// (GEP-like); yields a pointer to the field's type.
    FieldAddr {
        /// Pointer to the struct.
        base: Operand,
        /// The struct's name.
        strukt: String,
        /// Field index within the struct.
        field: usize,
    },
    /// Address of element `index` in the array `base` points to; yields a
    /// pointer to `elem_ty` (arrays are collapsed to one abstract
    /// location by points-to analysis).
    IndexAddr {
        /// Pointer to the array base.
        base: Operand,
        /// Element index.
        index: Operand,
        /// Element type (sets the stride).
        elem_ty: Type,
    },
    /// Integer arithmetic.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Integer comparison; yields an `i1`.
    Cmp {
        /// The predicate.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Direct call.
    Call {
        /// The called function.
        callee: FuncId,
        /// Argument values.
        args: Vec<Operand>,
    },
    /// Indirect call through a function pointer; the control-flow tracer
    /// must emit a target packet for these (like Intel PT's TIP).
    CallIndirect {
        /// The function-pointer value.
        callee: Operand,
        /// Argument values.
        args: Vec<Operand>,
    },
    /// Function return.
    Ret {
        /// Returned value, if the function yields one.
        value: Option<Operand>,
    },
    /// Unconditional branch (statically known — generates no trace
    /// packet).
    Br {
        /// Destination block.
        target: BlockId,
    },
    /// Conditional branch (generates one taken/not-taken trace bit).
    CondBr {
        /// Branch condition (nonzero = taken).
        cond: Operand,
        /// Destination when taken.
        then_bb: BlockId,
        /// Destination when not taken.
        else_bb: BlockId,
    },
    /// Acquires the mutex object `mutex` points to; blocks if held.
    MutexLock {
        /// Pointer to the mutex object.
        mutex: Operand,
    },
    /// Releases the mutex object `mutex` points to.
    MutexUnlock {
        /// Pointer to the mutex object.
        mutex: Operand,
    },
    /// Attempts to acquire without blocking; yields `i1` (1 on success).
    MutexTryLock {
        /// Pointer to the mutex object.
        mutex: Operand,
    },
    /// Atomically releases `mutex` and waits on the condition variable,
    /// reacquiring on wakeup.
    CondWait {
        /// Pointer to the condition variable.
        cond: Operand,
        /// Pointer to the mutex released while waiting.
        mutex: Operand,
    },
    /// Wakes one waiter on the condition variable.
    CondSignal {
        /// Pointer to the condition variable.
        cond: Operand,
    },
    /// Wakes all waiters on the condition variable.
    CondBroadcast {
        /// Pointer to the condition variable.
        cond: Operand,
    },
    /// Acquires the reader-writer lock `rw` points to in shared (read)
    /// mode; blocks while a writer holds or awaits it.
    RwLockRead {
        /// Pointer to the rwlock object.
        rw: Operand,
    },
    /// Acquires the reader-writer lock `rw` points to in exclusive
    /// (write) mode; blocks while any holder exists.
    RwLockWrite {
        /// Pointer to the rwlock object.
        rw: Operand,
    },
    /// Releases the calling thread's hold (read or write) on the
    /// reader-writer lock.
    RwUnlock {
        /// Pointer to the rwlock object.
        rw: Operand,
    },
    /// Spawns a thread running `func` with a single argument; yields a
    /// thread handle.
    ThreadSpawn {
        /// The thread entry function (one parameter).
        func: FuncId,
        /// The argument passed to the entry.
        arg: Operand,
    },
    /// Joins the thread whose handle is `tid`.
    ThreadJoin {
        /// The thread handle to join.
        tid: Operand,
    },
    /// Simulated work or I/O taking `ns` virtual nanoseconds (plus
    /// seeded jitter applied by the VM). `label` names the modelled
    /// activity ("parse-sql", "disk-read", …) for readable listings.
    Io {
        /// Name of the modelled activity.
        label: String,
        /// Nominal duration in virtual nanoseconds.
        ns: Operand,
    },
    /// Asserts `cond` is non-zero; a failed assertion is a fail-stop
    /// failure (the paper's custom failure mode, §7).
    Assert {
        /// The asserted condition (nonzero = pass).
        cond: Operand,
        /// Message reported on failure.
        msg: String,
    },
    /// Normal whole-program termination (only valid in the main thread).
    Halt,
}

impl InstKind {
    /// Returns `true` if this kind must terminate a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Ret { .. } | InstKind::Br { .. } | InstKind::CondBr { .. } | InstKind::Halt
        )
    }

    /// Returns `true` if this instruction kind produces a result register.
    pub fn has_result(&self) -> bool {
        matches!(
            self,
            InstKind::Alloca { .. }
                | InstKind::HeapAlloc { .. }
                | InstKind::Load { .. }
                | InstKind::Copy { .. }
                | InstKind::FieldAddr { .. }
                | InstKind::IndexAddr { .. }
                | InstKind::Bin { .. }
                | InstKind::Cmp { .. }
                | InstKind::MutexTryLock { .. }
                | InstKind::ThreadSpawn { .. }
                | InstKind::Call { .. }
                | InstKind::CallIndirect { .. }
        )
    }

    /// Returns the pointer operand of a memory or synchronization
    /// operation, if any.
    ///
    /// This is the operand whose points-to set seeds the diagnosis when
    /// the instruction is the failing one (§4.3: "for a deadlock, the
    /// operand is a pointer to a lock object, and for a crash, the operand
    /// is an invalid pointer").
    pub fn pointer_operand(&self) -> Option<&Operand> {
        match self {
            InstKind::Load { ptr, .. } | InstKind::Store { ptr, .. } | InstKind::Free { ptr } => {
                Some(ptr)
            }
            InstKind::MutexLock { mutex }
            | InstKind::MutexUnlock { mutex }
            | InstKind::MutexTryLock { mutex } => Some(mutex),
            InstKind::CondWait { cond, .. }
            | InstKind::CondSignal { cond }
            | InstKind::CondBroadcast { cond } => Some(cond),
            InstKind::RwLockRead { rw }
            | InstKind::RwLockWrite { rw }
            | InstKind::RwUnlock { rw } => Some(rw),
            _ => None,
        }
    }

    /// Returns `true` for shared-memory access instructions (the `R`/`W`
    /// events of the paper's Figure 1).
    pub fn is_memory_access(&self) -> bool {
        matches!(self, InstKind::Load { .. } | InstKind::Store { .. })
    }

    /// Returns `true` for instructions that write memory.
    pub fn is_write(&self) -> bool {
        matches!(self, InstKind::Store { .. })
    }

    /// Returns `true` for lock-acquisition attempts (the `L` events of
    /// Figure 1a), including reader-writer acquisitions.
    pub fn is_lock_acquire(&self) -> bool {
        matches!(
            self,
            InstKind::MutexLock { .. }
                | InstKind::MutexTryLock { .. }
                | InstKind::RwLockRead { .. }
                | InstKind::RwLockWrite { .. }
        )
    }

    /// Returns `true` for lock-release operations.
    pub fn is_lock_release(&self) -> bool {
        matches!(
            self,
            InstKind::MutexUnlock { .. } | InstKind::RwUnlock { .. }
        )
    }

    /// Returns the declared access type of a memory operation's pointee.
    pub fn access_type(&self) -> Option<&Type> {
        match self {
            InstKind::Load { ty, .. } | InstKind::Store { ty, .. } => Some(ty),
            _ => None,
        }
    }

    /// All operands of this instruction, in order.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            InstKind::Alloca { .. } | InstKind::Halt => vec![],
            InstKind::HeapAlloc { count, .. } => vec![count],
            InstKind::Free { ptr } => vec![ptr],
            InstKind::Load { ptr, .. } => vec![ptr],
            InstKind::Store { ptr, value, .. } => vec![ptr, value],
            InstKind::Copy { src } => vec![src],
            InstKind::FieldAddr { base, .. } => vec![base],
            InstKind::IndexAddr { base, index, .. } => vec![base, index],
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => vec![lhs, rhs],
            InstKind::Call { args, .. } => args.iter().collect(),
            InstKind::CallIndirect { callee, args } => {
                let mut v = vec![callee];
                v.extend(args.iter());
                v
            }
            InstKind::Ret { value } => value.iter().collect(),
            InstKind::Br { .. } => vec![],
            InstKind::CondBr { cond, .. } => vec![cond],
            InstKind::MutexLock { mutex }
            | InstKind::MutexUnlock { mutex }
            | InstKind::MutexTryLock { mutex } => vec![mutex],
            InstKind::CondWait { cond, mutex } => vec![cond, mutex],
            InstKind::CondSignal { cond } | InstKind::CondBroadcast { cond } => vec![cond],
            InstKind::RwLockRead { rw }
            | InstKind::RwLockWrite { rw }
            | InstKind::RwUnlock { rw } => {
                vec![rw]
            }
            InstKind::ThreadSpawn { arg, .. } => vec![arg],
            InstKind::ThreadJoin { tid } => vec![tid],
            InstKind::Io { ns, .. } => vec![ns],
            InstKind::Assert { cond, .. } => vec![cond],
        }
    }
}

/// One instruction: a kind, an optional result register, and the virtual
/// program counter assigned by module layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inst {
    /// The operation.
    pub kind: InstKind,
    /// The register this instruction defines, if it produces a value.
    pub result: Option<ValueId>,
    /// The virtual address of this instruction in the "binary".
    pub pc: Pc,
}

impl Inst {
    /// Returns the result register, panicking if the instruction has none.
    ///
    /// # Panics
    ///
    /// Panics if the instruction does not produce a result.
    pub fn result_reg(&self) -> ValueId {
        self.result.expect("instruction has no result register")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(InstKind::Ret { value: None }.is_terminator());
        assert!(InstKind::Br { target: BlockId(0) }.is_terminator());
        assert!(InstKind::Halt.is_terminator());
        assert!(!InstKind::Copy { src: Operand::Null }.is_terminator());
    }

    #[test]
    fn pointer_operand_of_memory_ops() {
        let p = Operand::Reg(ValueId(3));
        let load = InstKind::Load {
            ptr: p.clone(),
            ty: Type::I64,
        };
        assert_eq!(load.pointer_operand(), Some(&p));
        let lock = InstKind::MutexLock { mutex: p.clone() };
        assert_eq!(lock.pointer_operand(), Some(&p));
        assert!(lock.is_lock_acquire());
        let add = InstKind::Bin {
            op: BinOp::Add,
            lhs: p.clone(),
            rhs: Operand::const_int(1),
        };
        assert_eq!(add.pointer_operand(), None);
    }

    #[test]
    fn access_classification() {
        let p = Operand::Reg(ValueId(0));
        let st = InstKind::Store {
            ptr: p.clone(),
            value: Operand::const_int(1),
            ty: Type::I32,
        };
        assert!(st.is_memory_access());
        assert!(st.is_write());
        assert_eq!(st.access_type(), Some(&Type::I32));
        let ld = InstKind::Load {
            ptr: p,
            ty: Type::I32,
        };
        assert!(ld.is_memory_access());
        assert!(!ld.is_write());
    }

    #[test]
    fn operand_listing_covers_call_indirect() {
        let k = InstKind::CallIndirect {
            callee: Operand::Reg(ValueId(1)),
            args: vec![Operand::const_int(7), Operand::Null],
        };
        let ops = k.operands();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0], &Operand::Reg(ValueId(1)));
    }

    #[test]
    fn results() {
        assert!(InstKind::Alloca { ty: Type::I64 }.has_result());
        assert!(!InstKind::Free { ptr: Operand::Null }.has_result());
        assert!(InstKind::MutexTryLock {
            mutex: Operand::Null
        }
        .has_result());
    }
}
