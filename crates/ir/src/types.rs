//! The IR type system.
//!
//! Types mirror the subset of LLVM's type system that Lazy Diagnosis
//! consumes: integers of a few widths, typed pointers, and named structs.
//! Type-based ranking (§4.3 of the paper) compares the *pointee* type of a
//! memory operation's pointer operand against the pointee type of the
//! failing operand, so pointer types carry their pointee and structs are
//! compared nominally (by name), exactly as `%struct.Queue*` vs `i32*` are
//! in the paper's Figure 4 example.

use std::fmt;

/// An IR type.
///
/// The memory model is slot-based: every scalar and pointer occupies one
/// 8-byte slot, a struct occupies one slot per field, and an array of `n`
/// elements occupies `n` times the element's slot count. This keeps
/// pointer arithmetic trivial without losing anything the analyses care
/// about (they operate on abstract locations, not byte offsets).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// The empty type, for functions that return nothing.
    Void,
    /// A boolean (LLVM `i1`).
    I1,
    /// An 8-bit integer (LLVM `i8`), commonly used for opaque byte buffers.
    I8,
    /// A 32-bit integer.
    I32,
    /// A 64-bit integer.
    I64,
    /// A pointer to a pointee type (LLVM `T*`).
    Ptr(Box<Type>),
    /// A named struct (LLVM `%struct.Name`); fields live in [`StructDef`].
    ///
    /// [`StructDef`]: crate::module::StructDef
    Struct(String),
    /// A fixed-length array of an element type.
    Array(Box<Type>, u64),
    /// A function type, used for function pointers.
    Func,
    /// A mutex object (modelled as an opaque one-slot object).
    Mutex,
    /// A condition variable object (opaque, one slot).
    CondVar,
    /// A reader-writer lock object (opaque, one slot).
    RwLock,
}

impl Type {
    /// Returns a pointer type to `self`.
    #[must_use]
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Returns the pointee type if `self` is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// Returns `true` if `self` is a pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Returns `true` if values of this type can flow through points-to
    /// analysis (pointers and function references).
    pub fn is_ptr_like(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Func)
    }

    /// Returns the number of 8-byte slots a value of this type occupies in
    /// memory, given a resolver for struct field counts.
    ///
    /// Opaque objects (mutexes, condition variables) occupy one slot.
    pub fn slot_count(&self, struct_fields: &dyn Fn(&str) -> usize) -> u64 {
        match self {
            Type::Void => 0,
            Type::I1 | Type::I8 | Type::I32 | Type::I64 | Type::Func => 1,
            Type::Ptr(_) | Type::Mutex | Type::CondVar | Type::RwLock => 1,
            Type::Struct(name) => struct_fields(name) as u64,
            Type::Array(elem, n) => elem.slot_count(struct_fields) * n,
        }
    }

    /// Returns `true` if two pointee types match exactly for the purposes
    /// of type-based ranking (nominal struct equality, structural
    /// otherwise).
    pub fn ranking_match(&self, other: &Type) -> bool {
        self == other
    }

    /// Returns `true` if this type is "generic" from the ranking
    /// heuristic's point of view — a raw byte or integer pointer target
    /// that casts commonly alias (§7 discusses why ranking helps less for
    /// generic pointer types).
    pub fn is_generic_scalar(&self) -> bool {
        matches!(self, Type::I8 | Type::I32 | Type::I64 | Type::I1)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::I1 => write!(f, "i1"),
            Type::I8 => write!(f, "i8"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
            Type::Struct(name) => write!(f, "%struct.{name}"),
            Type::Array(elem, n) => write!(f, "[{n} x {elem}]"),
            Type::Func => write!(f, "func"),
            Type::Mutex => write!(f, "%mutex"),
            Type::CondVar => write!(f, "%condvar"),
            Type::RwLock => write!(f, "%rwlock"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_structs(_: &str) -> usize {
        panic!("no structs expected")
    }

    #[test]
    fn display_matches_llvm_flavour() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::I32.ptr_to().to_string(), "i32*");
        assert_eq!(
            Type::Struct("Queue".into()).ptr_to().to_string(),
            "%struct.Queue*"
        );
        assert_eq!(Type::Array(Box::new(Type::I64), 4).to_string(), "[4 x i64]");
    }

    #[test]
    fn pointee_roundtrip() {
        let t = Type::Struct("Conn".into()).ptr_to();
        assert_eq!(t.pointee(), Some(&Type::Struct("Conn".into())));
        assert!(t.is_ptr());
        assert!(Type::I64.pointee().is_none());
    }

    #[test]
    fn slot_counts() {
        assert_eq!(Type::I8.slot_count(&no_structs), 1);
        assert_eq!(Type::I64.ptr_to().slot_count(&no_structs), 1);
        assert_eq!(
            Type::Array(Box::new(Type::I64), 16).slot_count(&no_structs),
            16
        );
        let fields = |name: &str| if name == "Queue" { 5 } else { 0 };
        assert_eq!(Type::Struct("Queue".into()).slot_count(&fields), 5);
        assert_eq!(
            Type::Array(Box::new(Type::Struct("Queue".into())), 3).slot_count(&fields),
            15
        );
    }

    #[test]
    fn ranking_match_is_nominal_for_structs() {
        let q = Type::Struct("Queue".into());
        let q2 = Type::Struct("Queue".into());
        let c = Type::Struct("Conn".into());
        assert!(q.ranking_match(&q2));
        assert!(!q.ranking_match(&c));
        assert!(!q.ranking_match(&Type::I32));
    }

    #[test]
    fn generic_scalars() {
        assert!(Type::I32.is_generic_scalar());
        assert!(!Type::Struct("Queue".into()).is_generic_scalar());
    }
}
