//! Modules, functions, basic blocks, globals, and program-counter layout.
//!
//! A [`Module`] plays two roles, mirroring the paper's deployment model
//! (§5): it is the "bitcode" the server-side analyses consume, and its
//! program-counter layout is the "stripped binary" the client-side tracer
//! and VM execute. The [`Module::inst`] / [`Module::loc_of_pc`] maps are
//! the debug information that lets the server map a failing PC from a
//! production trace back to an IR instruction.

use crate::inst::{Inst, InstKind, ValueId};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A virtual program counter (instruction address in the "binary").
///
/// Module layout assigns each instruction a unique address; instructions
/// are 4 "bytes" apart and each function starts at a 64-byte-aligned base,
/// so PCs look and behave like real code addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pc(pub u64);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifies a function within a module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifies a basic block within a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifies a global variable within a module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// A named struct definition: field names and types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructDef {
    /// The struct's name (`%struct.<name>`).
    pub name: String,
    /// Ordered `(field name, field type)` pairs.
    pub fields: Vec<(String, Type)>,
}

impl StructDef {
    /// Returns the index of the named field.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }

    /// Returns the type of field `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn field_type(&self, idx: usize) -> &Type {
        &self.fields[idx].1
    }
}

/// A global variable: a module-level memory location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Global {
    /// Identifier within the module.
    pub id: GlobalId,
    /// Human-readable name.
    pub name: String,
    /// The type of the value stored in the global.
    pub ty: Type,
    /// Initial slot values (zero-filled if shorter than the type's size).
    pub init: Vec<i64>,
}

/// A straight-line sequence of instructions ending in a terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Identifier within the function.
    pub id: BlockId,
    /// Human-readable label.
    pub name: String,
    /// The block's instructions; the last one is the terminator.
    pub insts: Vec<Inst>,
}

impl BasicBlock {
    /// Returns the block's terminator instruction.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty (a verifier error).
    pub fn terminator(&self) -> &Inst {
        self.insts.last().expect("empty basic block")
    }
}

/// A function: parameters, blocks, and its PC range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Identifier within the module.
    pub id: FuncId,
    /// Human-readable name.
    pub name: String,
    /// Parameter registers and their types (parameters are registers
    /// `%0..%n-1`).
    pub params: Vec<(ValueId, Type)>,
    /// Return type.
    pub ret_ty: Type,
    /// Basic blocks; block 0 is the entry block.
    pub blocks: Vec<BasicBlock>,
    /// Number of virtual registers used (for frame allocation).
    pub reg_count: u32,
    /// First PC of the function after layout.
    pub base_pc: Pc,
}

impl Function {
    /// Returns the entry block.
    pub fn entry(&self) -> &BasicBlock {
        &self.blocks[0]
    }

    /// Returns a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this function.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Iterates over all instructions in block order.
    pub fn insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// The location of an instruction: function, block, and index within the
/// block. This is what the "debug information" resolves a PC to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InstLoc {
    /// Containing function.
    pub func: FuncId,
    /// Containing block.
    pub block: BlockId,
    /// Index within the block's instruction list.
    pub idx: usize,
}

/// A complete program: struct definitions, globals, and functions, with a
/// finalized PC layout.
#[derive(Clone, Debug)]
pub struct Module {
    /// Module name (the "binary" name; workloads use the modelled
    /// system's name, e.g. `"mysql"`).
    pub name: String,
    structs: HashMap<String, StructDef>,
    globals: Vec<Global>,
    functions: Vec<Function>,
    func_by_name: HashMap<String, FuncId>,
    pc_map: HashMap<Pc, InstLoc>,
    max_pc: Pc,
}

impl Module {
    /// Spacing between consecutive instruction PCs.
    pub const PC_STRIDE: u64 = 4;
    /// Alignment of function base PCs.
    pub const FUNC_ALIGN: u64 = 64;
    /// Base address of the first function ("text segment" start).
    pub const TEXT_BASE: u64 = 0x40_0000;

    /// Assembles a module from parts, assigning the PC layout. Used by
    /// [`ModuleBuilder::finish`]; not intended for direct use.
    ///
    /// [`ModuleBuilder::finish`]: crate::builder::ModuleBuilder::finish
    pub(crate) fn assemble(
        name: String,
        structs: HashMap<String, StructDef>,
        globals: Vec<Global>,
        mut functions: Vec<Function>,
    ) -> Module {
        let mut pc_map = HashMap::new();
        let mut next = Self::TEXT_BASE;
        for func in &mut functions {
            next = next.div_ceil(Self::FUNC_ALIGN) * Self::FUNC_ALIGN;
            func.base_pc = Pc(next);
            for block in &mut func.blocks {
                for (idx, inst) in block.insts.iter_mut().enumerate() {
                    inst.pc = Pc(next);
                    pc_map.insert(
                        Pc(next),
                        InstLoc {
                            func: func.id,
                            block: block.id,
                            idx,
                        },
                    );
                    next += Self::PC_STRIDE;
                }
            }
        }
        let func_by_name = functions.iter().map(|f| (f.name.clone(), f.id)).collect();
        Module {
            name,
            structs,
            globals,
            functions,
            func_by_name,
            pc_map,
            max_pc: Pc(next),
        }
    }

    /// All functions in the module.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Returns a function by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        self.func_by_name.get(name).map(|id| self.func(*id))
    }

    /// All globals in the module.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// Returns a global by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Looks up a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.get(name)
    }

    /// Iterates over all struct definitions, sorted by name (stable for
    /// printing).
    pub fn struct_defs(&self) -> Vec<&StructDef> {
        let mut v: Vec<&StructDef> = self.structs.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Number of slots a value of `ty` occupies, resolving struct field
    /// counts through this module's definitions.
    pub fn slot_count(&self, ty: &Type) -> u64 {
        let resolver = |name: &str| self.structs.get(name).map(|s| s.fields.len()).unwrap_or(1);
        ty.slot_count(&resolver)
    }

    /// Resolves a PC to its instruction location (the debug-info map).
    pub fn loc_of_pc(&self, pc: Pc) -> Option<InstLoc> {
        self.pc_map.get(&pc).copied()
    }

    /// Resolves a PC directly to the instruction.
    pub fn inst(&self, pc: Pc) -> Option<&Inst> {
        let loc = self.loc_of_pc(pc)?;
        Some(&self.functions[loc.func.0 as usize].blocks[loc.block.0 as usize].insts[loc.idx])
    }

    /// Returns the function containing `pc`, if any.
    pub fn func_of_pc(&self, pc: Pc) -> Option<&Function> {
        self.loc_of_pc(pc).map(|l| self.func(l.func))
    }

    /// One past the last assigned PC.
    pub fn max_pc(&self) -> Pc {
        self.max_pc
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }

    /// Iterates over `(pc, inst, loc)` for every instruction in layout
    /// order.
    pub fn all_insts(&self) -> impl Iterator<Item = (&Inst, InstLoc)> {
        self.functions.iter().flat_map(|f| {
            f.blocks.iter().flat_map(move |b| {
                b.insts.iter().enumerate().map(move |(idx, inst)| {
                    (
                        inst,
                        InstLoc {
                            func: f.id,
                            block: b.id,
                            idx,
                        },
                    )
                })
            })
        })
    }

    /// Returns a human-readable description of the instruction at `pc`
    /// (function, block, and rendered instruction), like a symbolized
    /// stack frame.
    pub fn describe_pc(&self, pc: Pc) -> String {
        match self.loc_of_pc(pc) {
            Some(loc) => {
                let f = self.func(loc.func);
                let b = f.block(loc.block);
                format!(
                    "{pc} in {}::{} ({})",
                    f.name,
                    b.name,
                    crate::printer::render_inst(&b.insts[loc.idx])
                )
            }
            None => format!("{pc} <unknown>"),
        }
    }

    /// Returns the kind of the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not mapped; diagnosis code paths only look up PCs
    /// that came from traces of this module.
    pub fn kind_at(&self, pc: Pc) -> &InstKind {
        &self.inst(pc).expect("PC not mapped in module").kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;

    fn tiny_module() -> Module {
        let mut mb = ModuleBuilder::new("tiny");
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        let p = f.alloca(Type::I64);
        f.store(p.clone(), Operand::const_int(5), Type::I64);
        f.load(p, Type::I64);
        f.halt();
        f.finish();
        mb.finish().unwrap()
    }

    #[test]
    fn layout_assigns_monotonic_pcs() {
        let m = tiny_module();
        let f = &m.functions()[0];
        assert_eq!(f.base_pc.0 % Module::FUNC_ALIGN, 0);
        let pcs: Vec<u64> = f.insts().map(|i| i.pc.0).collect();
        for w in pcs.windows(2) {
            assert_eq!(w[1] - w[0], Module::PC_STRIDE);
        }
    }

    #[test]
    fn pc_map_roundtrips() {
        let m = tiny_module();
        for (inst, loc) in m.all_insts() {
            assert_eq!(m.loc_of_pc(inst.pc), Some(loc));
            assert_eq!(m.inst(inst.pc).unwrap().pc, inst.pc);
        }
        assert!(m.loc_of_pc(Pc(1)).is_none());
    }

    #[test]
    fn func_lookup_by_name() {
        let m = tiny_module();
        assert!(m.func_by_name("main").is_some());
        assert!(m.func_by_name("absent").is_none());
    }

    #[test]
    fn describe_unknown_pc() {
        let m = tiny_module();
        assert!(m.describe_pc(Pc(0xdead)).contains("<unknown>"));
        let pc = m.functions()[0].entry().insts[0].pc;
        let d = m.describe_pc(pc);
        assert!(d.contains("main"), "{d}");
    }

    #[test]
    fn slot_count_resolves_structs() {
        let mut mb = ModuleBuilder::new("s");
        mb.struct_def(
            "Pair",
            vec![("a".into(), Type::I64), ("b".into(), Type::I64)],
        );
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        assert_eq!(m.slot_count(&Type::Struct("Pair".into())), 2);
        assert_eq!(m.slot_count(&Type::I64), 1);
    }
}
