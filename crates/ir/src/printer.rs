//! Human-readable rendering of IR, in an LLVM-flavoured textual form.
//!
//! The printer exists for diagnosis reports and debugging: the paper's
//! outputs point developers at instructions ("the store to
//! `%struct.Queue*`"), so rendered instructions carry their types and
//! operands.

use crate::inst::{Inst, InstKind};
use crate::module::{Function, Module};
use std::fmt::Write as _;

/// Renders one instruction as text (without its PC).
pub fn render_inst(inst: &Inst) -> String {
    let res = match inst.result {
        Some(r) => format!("{r} = "),
        None => String::new(),
    };
    let body = match &inst.kind {
        InstKind::Alloca { ty } => format!("alloca {ty}"),
        InstKind::HeapAlloc { ty, count } => format!("halloc {ty}, count {count}"),
        InstKind::Free { ptr } => format!("free {ptr}"),
        InstKind::Load { ptr, ty } => format!("load {ty}, {ty}* {ptr}"),
        InstKind::Store { ptr, value, ty } => format!("store {ty} {value}, {ty}* {ptr}"),
        InstKind::Copy { src } => format!("copy {src}"),
        InstKind::FieldAddr {
            base,
            strukt,
            field,
        } => {
            format!("fieldaddr %struct.{strukt}* {base}, field {field}")
        }
        InstKind::IndexAddr {
            base,
            index,
            elem_ty,
        } => {
            format!("indexaddr {elem_ty}* {base}, idx {index}")
        }
        InstKind::Bin { op, lhs, rhs } => format!("{op} {lhs}, {rhs}"),
        InstKind::Cmp { op, lhs, rhs } => format!("cmp {op} {lhs}, {rhs}"),
        InstKind::Call { callee, args } => format!("call @f{} ({})", callee.0, render_args(args)),
        InstKind::CallIndirect { callee, args } => {
            format!("icall {callee} ({})", render_args(args))
        }
        InstKind::Ret { value } => match value {
            Some(v) => format!("ret {v}"),
            None => "ret void".to_string(),
        },
        InstKind::Br { target } => format!("br bb{}", target.0),
        InstKind::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("condbr {cond}, bb{}, bb{}", then_bb.0, else_bb.0)
        }
        InstKind::MutexLock { mutex } => format!("mutex_lock {mutex}"),
        InstKind::MutexUnlock { mutex } => format!("mutex_unlock {mutex}"),
        InstKind::MutexTryLock { mutex } => format!("mutex_trylock {mutex}"),
        InstKind::CondWait { cond, mutex } => format!("cond_wait {cond}, {mutex}"),
        InstKind::CondSignal { cond } => format!("cond_signal {cond}"),
        InstKind::CondBroadcast { cond } => format!("cond_broadcast {cond}"),
        InstKind::RwLockRead { rw } => format!("rw_read {rw}"),
        InstKind::RwLockWrite { rw } => format!("rw_write {rw}"),
        InstKind::RwUnlock { rw } => format!("rw_unlock {rw}"),
        InstKind::ThreadSpawn { func, arg } => format!("spawn @f{} ({arg})", func.0),
        InstKind::ThreadJoin { tid } => format!("join {tid}"),
        InstKind::Io { label, ns } => format!("io \"{label}\", {ns} ns"),
        InstKind::Assert { cond, msg } => format!("assert {cond}, \"{msg}\""),
        InstKind::Halt => "halt".to_string(),
    };
    format!("{res}{body}")
}

fn render_args(args: &[crate::inst::Operand]) -> String {
    args.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders one function with PCs, labels, and instructions.
pub fn render_function(func: &Function) -> String {
    let mut out = String::new();
    let params = func
        .params
        .iter()
        .map(|(v, t)| format!("{t} {v}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "define {} @{}({params}) {{", func.ret_ty, func.name);
    for block in &func.blocks {
        let _ = writeln!(out, "{}:", block.name);
        for inst in &block.insts {
            let _ = writeln!(out, "  {}  {}", inst.pc, render_inst(inst));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole module: structs, globals, then functions.
///
/// The output is the canonical textual form accepted back by
/// [`crate::parser::parse_module`] (a lossless roundtrip up to PC
/// re-layout, which is deterministic).
pub fn render_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", module.name);
    for def in module.struct_defs() {
        let fields = def
            .fields
            .iter()
            .map(|(n, t)| format!("{t} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "%struct.{} = {{ {fields} }}", def.name);
    }
    for g in module.globals() {
        if g.init.is_empty() {
            let _ = writeln!(out, "@{} = global {}", g.name, g.ty);
        } else {
            let init = g
                .init
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "@{} = global {} [{init}]", g.name, g.ty);
        }
    }
    for f in module.functions() {
        let _ = writeln!(out);
        out.push_str(&render_function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;
    use crate::types::Type;

    #[test]
    fn rendering_contains_types_and_pcs() {
        let mut mb = ModuleBuilder::new("m");
        mb.struct_def("Queue", vec![("head".into(), Type::I64)]);
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        let q = f.alloca(Type::Struct("Queue".into()));
        let h = f.field_addr(q.clone(), "Queue", "head");
        f.store(h.clone(), Operand::const_int(1), Type::I64);
        f.load(h, Type::I64);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let text = render_module(&m);
        assert!(text.contains("alloca %struct.Queue"), "{text}");
        assert!(text.contains("store i64 1"), "{text}");
        assert!(text.contains("%struct.Queue = { i64 head }"), "{text}");
        assert!(text.contains("0x40"), "{text}");
    }

    #[test]
    fn render_sync_ops() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        let m1 = f.alloca(Type::Mutex);
        f.lock(m1.clone());
        f.unlock(m1);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let text = render_module(&m);
        assert!(text.contains("mutex_lock"));
        assert!(text.contains("mutex_unlock"));
    }
}
