//! `snorlax` — command-line front end for the Lazy Diagnosis
//! reproduction.
//!
//! ```text
//! snorlax corpus                      list the bug corpus
//! snorlax diagnose <bug-id> [--seed N]   collect traces and diagnose
//! snorlax replay <bug-id> [--runs N]     record once, replay deterministically
//! snorlax hypothesis <bug-id> [--samples N]   measure inter-event ΔT
//! snorlax trace <bug-id>              dump the failing trace (packets + events)
//! snorlax batch <bug-id> [--reports N]   diagnose many reports of one bug at once
//! ```

use lazy_ir::{parse_module, printer::render_module};
use lazy_replay::Recording;
use lazy_snorlax::{
    interleave_reports, next_stream_session, serve, BatchConfig, BatchJob, CollectionClient,
    CollectionOutcome, DaemonConfig, DiagnosisServer, FleetCoordinator, FleetReport, FleetRouter,
    RemoteClient, ServerConfig, ShardConn, StreamReport,
};
use lazy_vm::{Vm, VmConfig};
use lazy_workloads::{all_scenarios, extension_scenarios, scenario_by_id, BugScenario};
use std::collections::HashSet;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: snorlax <command> [args]\n\n\
         commands:\n\
           corpus                         list the bug corpus\n\
           diagnose <bug-id> [--seed N] [--decode-workers N]\n\
                                          collect traces and print the root cause\n\
                                          (--decode-workers 0 = one per core, 1 = sequential)\n\
           replay <bug-id> [--runs N]     record a failing order, replay it deterministically\n\
           hypothesis <bug-id> [--samples N]  measure the inter-event times (coarse hypothesis)\n\
           trace <bug-id>                 dump the failing trace's packets and decoded events\n\
           dump <bug-id>                  print a corpus module in textual IR form\n\
           diagnose-file <path.ir> [--seed N]  diagnose a user-supplied textual IR program\n\
           batch <bug-id> [--reports N] [--seed N] [--workers N] [--no-cache]\n\
                 [--telemetry json|pretty|prom]\n\
                                          collect N failure reports and diagnose them as one batch;\n\
                                          --telemetry prints the batch's per-stage pipeline\n\
                                          telemetry (spans, counters, histograms)\n\
           serve <bug-id> [--port N] [--workers N] [--queue-depth N] [--max-conns N]\n\
                 [--timeout-ms N]\n\
                                          run snorlaxd: serve diagnosis for the bug's module over\n\
                                          TCP (port 0 = ephemeral; the bound address is printed)\n\
           submit <bug-id> --addr HOST:PORT [--reports N] [--seed N]\n\
                                          collect N failure reports and submit them to a running\n\
                                          snorlaxd as one batch\n\
           submit --addr HOST:PORT --health|--shutdown\n\
                                          probe a running snorlaxd, or drain and stop it\n\
           fleet serve-shard <bug-id> [--port N]\n\
                                          run one snorlaxd shard (same daemon, fleet frames on)\n\
           fleet coordinate <bug-id> [--shards N] [--seed N]\n\
                                          shard one failure report across N in-process shards,\n\
                                          merge the partial statistics, and verify the merged\n\
                                          render against single-node diagnosis\n\
           fleet submit <bug-id> --addrs H:P,H:P[,...] [--seed N]\n\
                                          coordinate a diagnosis across running snorlaxd shards\n\
           fleet route <bug-id> [--reports K] [--shards N | --addrs H:P,...] [--seed N]\n\
                                          collect K reports of the bug and route them concurrently\n\
                                          across warm persistent shard sessions; verifies each\n\
                                          report against single-node diagnosis and prints the\n\
                                          per-shard warm-cache statistics\n\
           stream submit <bug-id> --addr HOST:PORT [--seed N] [--session ID] [--keep-open]\n\
                                          collect one failure report locally and stream it to a\n\
                                          snorlaxd session one trace at a time; stops as soon as\n\
                                          the sequential confidence test converges, then\n\
                                          finalizes the session and prints the diagnosis\n\
           stream status --addr HOST:PORT --session ID\n\
                                          probe an open stream session's convergence state\n\
           stream finish --addr HOST:PORT --session ID\n\
                                          finalize a stream session and print its diagnosis"
    );
    ExitCode::from(2)
}

/// Parses `--flag N` style options from the tail of the argument list.
fn opt_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.windows(2)
        .find(|w| w[0] == flag)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Parses a `--flag value` style string option.
fn opt_str<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].as_str())
}

fn find_scenario(id: &str) -> Option<BugScenario> {
    scenario_by_id(id).or_else(|| extension_scenarios().into_iter().find(|s| s.id == id))
}

fn cmd_corpus() -> ExitCode {
    println!("{:<22}{:<14}{:<11}description", "id", "system", "class");
    for s in all_scenarios().iter().chain(extension_scenarios().iter()) {
        println!(
            "{:<22}{:<14}{:<11}{}",
            s.id,
            s.system,
            s.class.label(),
            s.description
        );
    }
    ExitCode::SUCCESS
}

fn cmd_diagnose(id: &str, first_seed: u64, decode_workers: u64) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id} (see `snorlax corpus`)");
        return ExitCode::FAILURE;
    };
    println!("bug: {} — {}\n", s.id, s.description);
    let server = DiagnosisServer::new(
        &s.module,
        ServerConfig {
            decode_workers: decode_workers as usize,
            ..ServerConfig::default()
        },
    );
    let client = CollectionClient::new(&server, VmConfig::default());
    let Some(col) = client.collect(first_seed, 1000, 10, 0) else {
        eprintln!("the bug did not manifest within the run budget");
        return ExitCode::FAILURE;
    };
    println!(
        "observed: {} (run {} of {})",
        col.failure,
        col.failing_seeds[0] - first_seed + 1,
        col.runs
    );
    println!("successful traces collected: {}\n", col.successful.len());
    match server.diagnose(&col.failure, &col.failing, &col.successful) {
        Ok(d) => {
            print!("{}", d.render(&s.module));
            println!("\nserver analysis time: {} µs", d.stats.analysis_micros);
            println!(
                "decode health: {} resyncs, {} CYC deltas dropped before an anchor",
                d.stats.decode_resyncs, d.stats.cyc_dropped
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("diagnosis failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_batch(
    id: &str,
    reports: u64,
    first_seed: u64,
    workers: u64,
    use_cache: bool,
    telemetry: Option<&str>,
) -> ExitCode {
    if let Some(fmt) = telemetry {
        if !matches!(fmt, "json" | "pretty" | "prom") {
            eprintln!("unknown --telemetry format {fmt:?} (expected json, pretty, or prom)");
            return ExitCode::from(2);
        }
    }
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id} (see `snorlax corpus`)");
        return ExitCode::FAILURE;
    };
    println!("bug: {} — {}", s.id, s.description);
    let server = DiagnosisServer::new(&s.module, ServerConfig::default());
    let client = CollectionClient::new(&server, VmConfig::default());
    let mut collections: Vec<CollectionOutcome> = Vec::new();
    let mut seed = first_seed;
    while (collections.len() as u64) < reports {
        let Some(col) = client.collect(seed, 1000, 10, 0) else {
            break;
        };
        seed = col.failing_seeds.last().copied().unwrap_or(seed) + 1;
        collections.push(col);
    }
    if collections.is_empty() {
        eprintln!("the bug did not manifest within the run budget");
        return ExitCode::FAILURE;
    }
    println!("collected {} failure reports\n", collections.len());

    let jobs: Vec<BatchJob<'_>> = collections
        .iter()
        .map(|c| BatchJob {
            failure: &c.failure,
            failing: &c.failing,
            successful: &c.successful,
        })
        .collect();
    let cfg = BatchConfig {
        workers: workers as usize,
        use_cache,
        ..BatchConfig::default()
    };
    let out = server.diagnose_batch(&jobs, &cfg);
    for (i, d) in out.diagnoses.iter().enumerate() {
        match d {
            Ok(d) => println!(
                "report {i}: root cause [{}] in {} µs (decode {} / points-to {} / patterns {})",
                d.root_cause()
                    .map_or_else(|| "none".to_string(), |s| s.pattern.signature()),
                d.stats.analysis_micros,
                d.stats.decode_micros,
                d.stats.points_to_micros,
                d.stats.pattern_micros
            ),
            Err(e) => println!("report {i}: failed ({e})"),
        }
    }
    let c = out.stats.cache;
    println!(
        "\nbatch: {} jobs on {} workers in {} µs",
        out.stats.jobs, out.stats.workers, out.stats.wall_micros
    );
    if out.stats.failed_jobs > 0 || out.stats.cache_poison_fallbacks > 0 {
        println!(
            "degraded: {} failed jobs ({} from worker panics), \
             {} cache-poison fallback solves",
            out.stats.failed_jobs, out.stats.panicked_jobs, out.stats.cache_poison_fallbacks
        );
    }
    if use_cache {
        println!(
            "points-to cache: {} exact hits, {} delta solves, {} scratch solves \
             ({} insts reused, {} replayed)",
            c.exact_hits, c.delta_solves, c.scratch_solves, c.reused_insts, c.delta_insts
        );
    }
    if let Some(Ok(first)) = out.diagnoses.first() {
        print!("\n{}", first.render(&s.module));
    }
    match telemetry {
        Some("json") => println!("{}", out.telemetry.to_json()),
        Some("pretty") => print!("\n{}", out.telemetry.render_pretty()),
        Some("prom") => print!("\n{}", out.telemetry.render_prometheus()),
        _ => {}
    }
    ExitCode::SUCCESS
}

fn cmd_replay(id: &str, runs: u64) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id}");
        return ExitCode::FAILURE;
    };
    let racing: HashSet<_> = s.targets.iter().copied().collect();
    let Some((out, seed)) = (0..500).find_map(|seed| {
        let out = Vm::run(
            &s.module,
            VmConfig {
                seed,
                ..VmConfig::default()
            },
        );
        out.is_failure().then_some((out, seed))
    }) else {
        eprintln!("the bug did not manifest");
        return ExitCode::FAILURE;
    };
    let Some(failure) = out.failure().cloned() else {
        eprintln!("run reported failure but carried no failure record");
        return ExitCode::FAILURE;
    };
    println!("recorded failing run (seed {seed}): {failure}");
    let Some(snap) = out.snapshot.as_ref() else {
        eprintln!("failing run produced no trace snapshot");
        return ExitCode::FAILURE;
    };
    let server = DiagnosisServer::new(&s.module, ServerConfig::default());
    let trace = match server.process(snap) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot decode the failing snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rec = match Recording::from_processed_trace(&trace, &racing) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot record: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (tid, pc) in rec.order() {
        println!("  thread {tid}: {}", s.module.describe_pc(*pc));
    }
    let mut reproduced = 0u64;
    for replay_seed in (seed + 1)..=(seed + runs) {
        let mut gate = rec.gate();
        let rep = Vm::run_gated(
            &s.module,
            VmConfig {
                seed: replay_seed,
                ..VmConfig::default()
            },
            &mut gate,
        );
        if rep.failure().map(|f| f.pc) == Some(failure.pc) {
            reproduced += 1;
        }
    }
    println!("replayed {runs} fresh seeds: {reproduced} reproduced the exact failure");
    ExitCode::SUCCESS
}

fn cmd_hypothesis(id: &str, samples: u64) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id}");
        return ExitCode::FAILURE;
    };
    let mut deltas = Vec::new();
    let mut seed = 0;
    while (deltas.len() as u64) < samples {
        let Some((out, used)) = s.reproduce(seed, 500) else {
            break;
        };
        seed = used + 1;
        deltas.extend(s.relevant_deltas(&out));
    }
    if deltas.is_empty() {
        eprintln!("no failing runs with complete target events");
        return ExitCode::FAILURE;
    }
    let avg = deltas.iter().sum::<u64>() as f64 / deltas.len() as f64;
    let min = deltas.iter().copied().min().unwrap_or(0);
    println!(
        "{}: {} ΔT samples — avg {:.1} µs, min {:.1} µs (fine-grained recording would need ~1 ns)",
        s.id,
        deltas.len(),
        avg / 1000.0,
        min as f64 / 1000.0
    );
    ExitCode::SUCCESS
}

fn cmd_trace(id: &str) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id}");
        return ExitCode::FAILURE;
    };
    let Some((out, _)) = s.reproduce(0, 500) else {
        eprintln!("the bug did not manifest");
        return ExitCode::FAILURE;
    };
    let Some(failure) = out.failure().cloned() else {
        eprintln!("run reported failure but carried no failure record");
        return ExitCode::FAILURE;
    };
    let Some(snap) = out.snapshot else {
        eprintln!("failing run produced no trace snapshot");
        return ExitCode::FAILURE;
    };
    let wire = lazy_trace::encode_snapshot(&snap);
    println!(
        "failure: {}\nsnapshot: {} threads, {} bytes on the wire\n",
        failure,
        snap.threads.len(),
        wire.len()
    );
    let server = DiagnosisServer::new(&s.module, ServerConfig::default());
    let pt = match server.process(&snap) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot decode the failing snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "decoded: {} events, {} distinct instructions (of {} static), \
         {} resyncs, {} CYC deltas dropped",
        pt.event_count,
        pt.executed.len(),
        s.module.inst_count(),
        pt.resyncs,
        pt.cyc_dropped
    );
    for t in &snap.threads {
        println!(
            "  thread {}: {} control events, {} timing packets, wrapped={}",
            t.tid, t.stats.control_events, t.stats.timing_packets, t.wrapped
        );
    }
    ExitCode::SUCCESS
}

fn cmd_dump(id: &str) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id}");
        return ExitCode::FAILURE;
    };
    print!("{}", render_module(&s.module));
    ExitCode::SUCCESS
}

fn cmd_diagnose_file(path: &str, first_seed: u64) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let module = match parse_module(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if module.func_by_name("main").is_none() {
        eprintln!("{path}: the program needs a zero-argument @main");
        return ExitCode::FAILURE;
    }
    println!(
        "loaded {} ({} instructions)\n",
        module.name,
        module.inst_count()
    );
    let server = DiagnosisServer::new(&module, ServerConfig::default());
    let client = CollectionClient::new(&server, VmConfig::default());
    let Some(col) = client.collect(first_seed, 1000, 10, 0) else {
        eprintln!("no failure manifested within the run budget");
        return ExitCode::FAILURE;
    };
    println!("observed: {}", col.failure);
    match server.diagnose(&col.failure, &col.failing, &col.successful) {
        Ok(d) => {
            print!("{}", d.render(&module));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("diagnosis failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(id: &str, args: &[String]) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id} (see `snorlax corpus`)");
        return ExitCode::FAILURE;
    };
    let port = opt_u64(args, "--port", 0);
    let cfg = DaemonConfig {
        workers: opt_u64(args, "--workers", 0) as usize,
        queue_depth: opt_u64(args, "--queue-depth", 64) as usize,
        max_connections: opt_u64(args, "--max-conns", 64) as usize,
        request_timeout: std::time::Duration::from_millis(opt_u64(args, "--timeout-ms", 30_000)),
        ..DaemonConfig::default()
    };
    let listener = match std::net::TcpListener::bind(("127.0.0.1", port as u16)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        // The exact phrasing is load-bearing: scripts/ci.sh greps the
        // bound address out of this line to find the ephemeral port.
        Ok(addr) => println!("snorlaxd listening on {addr} (module {})", s.id),
        Err(e) => {
            eprintln!("cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    // The accept loop below blocks; make sure the address line is out.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match serve(&listener, &s.module, &cfg) {
        Ok(stats) => {
            println!(
                "snorlaxd drained: {} connections, {} requests, {} busy-rejected, \
                 {} timeouts, {} corrupt frames",
                stats.connections,
                stats.requests,
                stats.rejected_busy,
                stats.timeouts,
                stats.frames_corrupt
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snorlaxd failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let Some(addr) = opt_str(args, "--addr") else {
        eprintln!("submit needs --addr HOST:PORT (start one with `snorlax serve <bug-id>`)");
        return ExitCode::from(2);
    };
    let mut client = match RemoteClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to snorlaxd at {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.iter().any(|a| a == "--health") {
        return match client.health() {
            Ok(status) => {
                println!("{status}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("health probe failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.iter().any(|a| a == "--shutdown") {
        return match client.shutdown() {
            Ok(()) => {
                println!("snorlaxd drained and stopped");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(id) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("submit needs a bug id (or --health / --shutdown)");
        return ExitCode::from(2);
    };
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id} (see `snorlax corpus`)");
        return ExitCode::FAILURE;
    };
    let reports = opt_u64(args, "--reports", 1);
    let first_seed = opt_u64(args, "--seed", 0);
    println!("bug: {} — {}", s.id, s.description);
    // Collection stays local (it *is* the production client); only the
    // diagnosis crosses the wire.
    let server = DiagnosisServer::new(&s.module, ServerConfig::default());
    let collector = CollectionClient::new(&server, VmConfig::default());
    let mut collections: Vec<CollectionOutcome> = Vec::new();
    let mut seed = first_seed;
    while (collections.len() as u64) < reports {
        let Some(col) = collector.collect(seed, 1000, 10, 0) else {
            break;
        };
        seed = col.failing_seeds.last().copied().unwrap_or(seed) + 1;
        collections.push(col);
    }
    if collections.is_empty() {
        eprintln!("the bug did not manifest within the run budget");
        return ExitCode::FAILURE;
    }
    println!(
        "collected {} failure reports, submitting to {addr}\n",
        collections.len()
    );
    let jobs: Vec<BatchJob<'_>> = collections
        .iter()
        .map(|c| BatchJob {
            failure: &c.failure,
            failing: &c.failing,
            successful: &c.successful,
        })
        .collect();
    match client.diagnose_batch(&jobs) {
        Ok(results) => {
            let mut failed = 0u64;
            for (i, r) in results.iter().enumerate() {
                match r {
                    Ok(report) => {
                        println!("report {i}:");
                        print!("{report}");
                    }
                    Err(e) => {
                        failed += 1;
                        println!("report {i}: failed ({e})");
                    }
                }
            }
            if failed > 0 {
                eprintln!("{failed} of {} reports failed remotely", results.len());
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("remote batch failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `snorlax fleet …` — sharded diagnosis across snorlaxd shards.
fn cmd_fleet(args: &[String]) -> ExitCode {
    match args.get(1).map(String::as_str) {
        // A shard *is* a snorlaxd: the daemon answers the fleet frames
        // alongside ordinary diagnose/batch traffic. The subcommand
        // exists so fleet deployments read as what they are.
        Some("serve-shard") if args.len() >= 3 => cmd_serve(&args[2], args),
        Some("coordinate") if args.len() >= 3 => cmd_fleet_coordinate(&args[2], args),
        Some("submit") if args.len() >= 3 => cmd_fleet_submit(&args[2], args),
        Some("route") if args.len() >= 3 => cmd_fleet_route(&args[2], args),
        _ => usage(),
    }
}

fn print_shard_reports(outcome: &lazy_snorlax::FleetOutcome) {
    for r in &outcome.shard_reports {
        match &r.error {
            None => println!(
                "shard {}: {} failing + {} successful traces",
                r.shard, r.failing_routed, r.successful_routed
            ),
            Some((round, e)) => println!("shard {}: FAILED in {round} round ({e})", r.shard),
        }
    }
    println!(
        "merged: {} patterns over {} failing / {} successful traces, {} shard(s) failed",
        outcome.merged_stats.len(),
        outcome.merged_stats.failing_traces(),
        outcome.merged_stats.successful_traces(),
        outcome.failed_shards()
    );
}

fn cmd_fleet_coordinate(id: &str, args: &[String]) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id} (see `snorlax corpus`)");
        return ExitCode::FAILURE;
    };
    let shards = opt_u64(args, "--shards", 2).max(1) as usize;
    let first_seed = opt_u64(args, "--seed", 0);
    println!("bug: {} — {}", s.id, s.description);
    let server = DiagnosisServer::new(&s.module, ServerConfig::default());
    let collector = CollectionClient::new(&server, VmConfig::default());
    let Some(col) = collector.collect(first_seed, 1000, 10, 0) else {
        eprintln!("the bug did not manifest within the run budget");
        return ExitCode::FAILURE;
    };
    println!(
        "observed: {} ({} failing + {} successful traces, {} in-process shards)\n",
        col.failure,
        col.failing.len(),
        col.successful.len(),
        shards
    );
    let mut coord = FleetCoordinator::in_process(&s.module, ServerConfig::default(), shards);
    let outcome = match coord.diagnose(&col.failure, &col.failing, &col.successful) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fleet diagnosis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", outcome.diagnosis.render(&s.module));
    println!();
    print_shard_reports(&outcome);
    // Determinism is the whole point: prove it on every invocation.
    match server.diagnose(&col.failure, &col.failing, &col.successful) {
        Ok(single) if single.render(&s.module) == outcome.diagnosis.render(&s.module) => {
            println!("sharded report is byte-identical to single-node: yes");
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!("sharded report DIVERGED from single-node diagnosis");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("single-node cross-check failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_fleet_submit(id: &str, args: &[String]) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id} (see `snorlax corpus`)");
        return ExitCode::FAILURE;
    };
    let Some(addrs) = opt_str(args, "--addrs") else {
        eprintln!(
            "fleet submit needs --addrs HOST:PORT,HOST:PORT \
             (start shards with `snorlax fleet serve-shard <bug-id>`)"
        );
        return ExitCode::from(2);
    };
    let first_seed = opt_u64(args, "--seed", 0);
    let mut shards: Vec<ShardConn<'_>> = Vec::new();
    for addr in addrs.split(',').filter(|a| !a.is_empty()) {
        match RemoteClient::connect(addr) {
            Ok(c) => shards.push(ShardConn::Remote(c)),
            Err(e) => {
                eprintln!("cannot connect to shard at {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if shards.is_empty() {
        eprintln!("--addrs named no shards");
        return ExitCode::from(2);
    }
    println!("bug: {} — {}", s.id, s.description);
    // Collection stays local, as with `snorlax submit`; only the three
    // fleet rounds cross the wire.
    let server = DiagnosisServer::new(&s.module, ServerConfig::default());
    let collector = CollectionClient::new(&server, VmConfig::default());
    let Some(col) = collector.collect(first_seed, 1000, 10, 0) else {
        eprintln!("the bug did not manifest within the run budget");
        return ExitCode::FAILURE;
    };
    println!(
        "observed: {} ({} failing + {} successful traces across {} remote shards)\n",
        col.failure,
        col.failing.len(),
        col.successful.len(),
        shards.len()
    );
    let mut coord = FleetCoordinator::new(&s.module, ServerConfig::default(), shards);
    match coord.diagnose(&col.failure, &col.failing, &col.successful) {
        Ok(outcome) => {
            print!("{}", outcome.diagnosis.render(&s.module));
            println!();
            print_shard_reports(&outcome);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fleet diagnosis failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_fleet_route(id: &str, args: &[String]) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id} (see `snorlax corpus`)");
        return ExitCode::FAILURE;
    };
    let reports = opt_u64(args, "--reports", 4).max(1);
    let first_seed = opt_u64(args, "--seed", 0);
    println!("bug: {} — {}", s.id, s.description);

    // Collection stays local, as with batch: each report is one
    // independent failure observation of the same bug.
    let server = DiagnosisServer::new(&s.module, ServerConfig::default());
    let collector = CollectionClient::new(&server, VmConfig::default());
    let mut collections: Vec<CollectionOutcome> = Vec::new();
    let mut seed = first_seed;
    while (collections.len() as u64) < reports {
        let Some(col) = collector.collect(seed, 1000, 10, 0) else {
            break;
        };
        seed = col.failing_seeds.last().copied().unwrap_or(seed) + 1;
        collections.push(col);
    }
    if collections.is_empty() {
        eprintln!("the bug did not manifest within the run budget");
        return ExitCode::FAILURE;
    }

    let router = if let Some(addrs) = opt_str(args, "--addrs") {
        let mut shards: Vec<ShardConn<'_>> = Vec::new();
        for addr in addrs.split(',').filter(|a| !a.is_empty()) {
            match RemoteClient::connect(addr) {
                Ok(c) => shards.push(ShardConn::Remote(c)),
                Err(e) => {
                    eprintln!("cannot connect to shard at {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if shards.is_empty() {
            eprintln!("--addrs named no shards");
            return ExitCode::from(2);
        }
        FleetRouter::new(&s.module, ServerConfig::default(), shards)
    } else {
        let n = opt_u64(args, "--shards", 2).max(1) as usize;
        FleetRouter::in_process(&s.module, ServerConfig::default(), n)
    };
    println!(
        "routing {} reports concurrently across {} warm shards\n",
        collections.len(),
        router.shard_count()
    );

    let fleet_reports: Vec<FleetReport> = collections
        .iter()
        .map(|c| FleetReport {
            failure: c.failure.clone(),
            failing: c.failing.clone(),
            successful: c.successful.clone(),
        })
        .collect();
    let outcomes = router.route_all(&fleet_reports);

    let mut failed = false;
    for (i, (out, col)) in outcomes.iter().zip(&collections).enumerate() {
        match out {
            Ok(o) => {
                let routed = o.diagnosis.render(&s.module);
                // Determinism is the whole point: every routed report
                // must match what a single node would have said.
                match server.diagnose(&col.failure, &col.failing, &col.successful) {
                    Ok(single) if single.render(&s.module) == routed => println!(
                        "report {i}: root cause [{}], byte-identical to single-node: yes",
                        o.diagnosis
                            .root_cause()
                            .map_or_else(|| "none".to_string(), |sc| sc.pattern.signature())
                    ),
                    Ok(_) => {
                        println!("report {i}: DIVERGED from single-node diagnosis");
                        failed = true;
                    }
                    Err(e) => {
                        println!("report {i}: single-node cross-check failed ({e})");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                println!("report {i}: failed ({e})");
                failed = true;
            }
        }
    }
    for (key, n) in router.known_bugs() {
        println!(
            "\nbug key: failure pc {} / module fp {:#018x} — {n} reports routed",
            key.failure_pc.0, key.module_fp
        );
    }
    for (k, st) in router.shard_stats().iter().enumerate() {
        match st {
            Ok(st) => println!(
                "shard {k}: {} open sessions, {} evicted; points-to cache \
                 {} lookups = {} exact + {} delta + {} scratch ({} warm)",
                st.open_sessions,
                st.sessions_evicted,
                st.cache_lookups,
                st.cache_exact_hits,
                st.cache_delta_solves,
                st.cache_scratch_solves,
                st.warm_solves()
            ),
            Err(e) => println!("shard {k}: stats unavailable ({e})"),
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `snorlax stream …` — incremental diagnosis over a daemon session.
fn cmd_stream(args: &[String]) -> ExitCode {
    match args.get(1).map(String::as_str) {
        Some("submit") if args.len() >= 3 => cmd_stream_submit(&args[2], args),
        Some("status") => cmd_stream_probe(args, false),
        Some("finish") => cmd_stream_probe(args, true),
        _ => usage(),
    }
}

/// Session ids print as hex; accept both hex and decimal on the way in
/// so the printed id can be pasted straight back.
fn parse_session(s: &str) -> Option<u64> {
    s.strip_prefix("0x")
        .map_or_else(|| s.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
}

fn cmd_stream_submit(id: &str, args: &[String]) -> ExitCode {
    let Some(s) = find_scenario(id) else {
        eprintln!("unknown bug id {id} (see `snorlax corpus`)");
        return ExitCode::FAILURE;
    };
    let Some(addr) = opt_str(args, "--addr") else {
        eprintln!("stream submit needs --addr HOST:PORT (start one with `snorlax serve <bug-id>`)");
        return ExitCode::from(2);
    };
    let first_seed = opt_u64(args, "--seed", 0);
    let keep_open = args.iter().any(|a| a == "--keep-open");
    let session = opt_str(args, "--session")
        .and_then(parse_session)
        .unwrap_or_else(next_stream_session);
    println!("bug: {} — {}", s.id, s.description);
    // Collection stays local (it *is* the production client); each
    // report then crosses the wire by itself, the way a fleet node
    // trickles evidence into a long-lived diagnosis session.
    let server = DiagnosisServer::new(&s.module, ServerConfig::default());
    let collector = CollectionClient::new(&server, VmConfig::default());
    let Some(col) = collector.collect(first_seed, 1000, 10, 0) else {
        eprintln!("the bug did not manifest within the run budget");
        return ExitCode::FAILURE;
    };
    let reports = interleave_reports(&col.failing, &col.successful);
    let mut client = match RemoteClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to snorlaxd at {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "streaming {} reports to {addr} as session {session:#x}\n",
        reports.len()
    );
    let mut converged = false;
    for (i, r) in reports.iter().enumerate() {
        let status = match r {
            StreamReport::Failing(snap) => {
                client.stream_submit_failing(session, &col.failure, snap)
            }
            StreamReport::Success(snap) => client.stream_submit_success(session, snap),
        };
        match status {
            Ok(st) => {
                println!(
                    "report {i}: consumed={} failing={} successes={} lead={:.3}{}",
                    st.reports_consumed,
                    st.failing,
                    st.successes,
                    st.lead,
                    if st.converged { "  CONVERGED" } else { "" }
                );
                if st.converged {
                    converged = true;
                    break;
                }
            }
            Err(e) => println!("report {i}: rejected ({e})"),
        }
    }
    if !converged {
        println!("stream exhausted without early convergence");
    }
    if keep_open {
        println!(
            "\nsession {session:#x} left open on {addr} \
             (finish with `snorlax stream finish --addr {addr} --session {session:#x}`)"
        );
        return ExitCode::SUCCESS;
    }
    match client.stream_finish(session) {
        Ok(fin) => {
            println!(
                "\nfinished after {} reports ({} rejected), converged_early={}",
                fin.reports_consumed, fin.reports_rejected, fin.converged_early
            );
            print!("{}", fin.report);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stream finish failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_stream_probe(args: &[String], finish: bool) -> ExitCode {
    let verb = if finish { "finish" } else { "status" };
    let Some(addr) = opt_str(args, "--addr") else {
        eprintln!("stream {verb} needs --addr HOST:PORT");
        return ExitCode::from(2);
    };
    let Some(session) = opt_str(args, "--session").and_then(parse_session) else {
        eprintln!("stream {verb} needs --session ID (printed by `snorlax stream submit`)");
        return ExitCode::from(2);
    };
    let mut client = match RemoteClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to snorlaxd at {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if finish {
        match client.stream_finish(session) {
            Ok(fin) => {
                println!(
                    "session {session:#x}: {} reports consumed ({} rejected), converged_early={}\n",
                    fin.reports_consumed, fin.reports_rejected, fin.converged_early
                );
                print!("{}", fin.report);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("stream finish failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match client.stream_status(session) {
            Ok(st) => {
                println!(
                    "session {session:#x}: consumed={} rejected={} failing={} successes={} \
                     lead={:.3} converged={}",
                    st.reports_consumed,
                    st.reports_rejected,
                    st.failing,
                    st.successes,
                    st.lead,
                    st.converged
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("stream status failed: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("corpus") => cmd_corpus(),
        Some("diagnose") if args.len() >= 2 => cmd_diagnose(
            &args[1],
            opt_u64(&args, "--seed", 0),
            opt_u64(&args, "--decode-workers", 0),
        ),
        Some("replay") if args.len() >= 2 => cmd_replay(&args[1], opt_u64(&args, "--runs", 10)),
        Some("hypothesis") if args.len() >= 2 => {
            cmd_hypothesis(&args[1], opt_u64(&args, "--samples", 10))
        }
        Some("trace") if args.len() >= 2 => cmd_trace(&args[1]),
        Some("dump") if args.len() >= 2 => cmd_dump(&args[1]),
        Some("diagnose-file") if args.len() >= 2 => {
            cmd_diagnose_file(&args[1], opt_u64(&args, "--seed", 0))
        }
        Some("serve") if args.len() >= 2 => cmd_serve(&args[1], &args),
        Some("submit") => cmd_submit(&args),
        Some("fleet") => cmd_fleet(&args),
        Some("stream") => cmd_stream(&args),
        Some("batch") if args.len() >= 2 => cmd_batch(
            &args[1],
            opt_u64(&args, "--reports", 8),
            opt_u64(&args, "--seed", 0),
            opt_u64(&args, "--workers", 0),
            !args.iter().any(|a| a == "--no-cache"),
            opt_str(&args, "--telemetry"),
        ),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_parsing() {
        let args: Vec<String> = ["diagnose", "x", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(opt_u64(&args, "--seed", 0), 7);
        assert_eq!(opt_u64(&args, "--runs", 10), 10);
        let bad: Vec<String> = ["--seed", "zz"].iter().map(|s| s.to_string()).collect();
        assert_eq!(opt_u64(&bad, "--seed", 3), 3);
    }

    #[test]
    fn string_opt_parsing() {
        let args: Vec<String> = ["batch", "x", "--telemetry", "json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(opt_str(&args, "--telemetry"), Some("json"));
        assert_eq!(opt_str(&args, "--format"), None);
    }

    #[test]
    fn session_id_roundtrips_hex_and_decimal() {
        assert_eq!(parse_session("42"), Some(42));
        assert_eq!(parse_session("0x2a"), Some(42));
        assert_eq!(
            parse_session(&format!("{:#x}", 0xdead_beefu64)),
            Some(0xdead_beef)
        );
        assert_eq!(parse_session("zz"), None);
        assert_eq!(parse_session("0x"), None);
    }

    #[test]
    fn scenario_lookup_covers_extensions() {
        assert!(find_scenario("pbzip2-na-1").is_some());
        assert!(find_scenario("mysql-ext-hotlog").is_some());
        assert!(find_scenario("nope").is_none());
    }
}
