//! Differential tests for the SWAR `PSB` scanner: `find_psb` (the u64
//! word-at-a-time scanner behind `sync_to_psb`) must agree with its
//! scalar twin `find_psb_scalar` on every input and every starting
//! offset — arbitrary bytes, marker-dense constructions, real encoder
//! streams, and Corruptor-mangled ones.
//!
//! This is the inner loop `scripts/ci.sh --fast` runs.

use lazy_trace::{
    find_psb, find_psb_scalar, CorruptionOp, Corruptor, Encoder, TraceConfig, PSB_MARKER,
};
use proptest::prelude::*;

/// Checks the two scanners agree from every starting offset, and that
/// each reported hit really is a marker.
fn assert_scanners_agree(bytes: &[u8]) {
    for from in 0..=bytes.len() {
        let swar = find_psb(bytes, from);
        let scalar = find_psb_scalar(bytes, from);
        assert_eq!(
            swar,
            scalar,
            "scan divergence from {from} on {} bytes",
            bytes.len()
        );
        if let Some(at) = swar {
            assert!(at >= from);
            assert_eq!(&bytes[at..at + 4], &PSB_MARKER);
        }
    }
}

fn arb_corruption() -> impl Strategy<Value = CorruptionOp> {
    prop_oneof![
        any::<usize>().prop_map(|keep| CorruptionOp::Truncate { keep }),
        (any::<usize>(), any::<u8>())
            .prop_map(|(offset, bit)| CorruptionOp::BitFlip { offset, bit }),
        (any::<usize>(), any::<usize>())
            .prop_map(|(from, to)| CorruptionOp::SplicePsb { from, to }),
    ]
}

proptest! {
    /// Arbitrary bytes: the SWAR scanner and the scalar scanner return
    /// the same offset (or the same miss) from every starting point.
    #[test]
    fn swar_matches_scalar_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        assert_scanners_agree(&bytes);
    }

    /// Marker-dense streams: bytes drawn from the marker's own alphabet
    /// (0x02 / 0x82 plus near-misses) maximize partial-match and
    /// straddled-word cases, the SWAR scanner's hard paths.
    #[test]
    fn swar_matches_scalar_on_marker_soup(
        picks in prop::collection::vec(0usize..5, 0..96),
        plant in (0usize..64, any::<bool>()),
    ) {
        const ALPHABET: [u8; 5] = [0x02, 0x82, 0x03, 0x80, 0x00];
        let mut bytes: Vec<u8> = picks.iter().map(|&i| ALPHABET[i]).collect();
        if plant.1 {
            let pos = plant.0 % (bytes.len() + 1);
            bytes.splice(pos..pos, PSB_MARKER);
        }
        assert_scanners_agree(&bytes);
    }

    /// Encoder-produced streams (real `PSB` cadence), raw and mangled
    /// by the snapshot Corruptor's stream-level operators.
    #[test]
    fn swar_matches_scalar_on_encoder_streams(
        branches in 0u64..200,
        psb_period in 16usize..128,
        ops in prop::collection::vec(arb_corruption(), 0..3),
    ) {
        let cfg = TraceConfig {
            psb_period_bytes: psb_period,
            buffer_size: 1 << 16,
            ..TraceConfig::default()
        };
        let mut enc = Encoder::new(cfg);
        enc.start(0x40_0000, 1_000);
        for i in 0..branches {
            enc.branch(0x40_0010, i % 3 != 0, 1_000 + i * 30);
        }
        let mut bytes = enc.snapshot();
        let corruptor = Corruptor::new();
        for op in &ops {
            bytes = corruptor.apply(&bytes, op);
        }
        assert_scanners_agree(&bytes);
    }
}
