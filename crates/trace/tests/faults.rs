//! Fault-injection harness for the trace layer: drives [`Corruptor`]
//! output — truncations, bit flips, laundered length corruption, `PSB`
//! splices, dropped checksums — through wire decode and all three trace
//! decode paths (fused, legacy three-pass, PSB-sharded parallel),
//! asserting every outcome is a clean `Ok`/`Err`: never a panic, never
//! an OOM-scale allocation.
//!
//! proptest surfaces a panic inside the property as a test failure, so
//! "the body ran" *is* the panic-freedom assertion; the explicit
//! assertions bound allocation and error-typing.

use lazy_ir::{Module, ModuleBuilder, Operand, Type};
use lazy_trace::driver::SnapshotTrigger;
use lazy_trace::{
    decode_snapshot, decode_thread_trace, decode_thread_trace_legacy, decode_thread_trace_sharded,
    encode_snapshot, CorruptionOp, Corruptor, Encoder, ExecIndex, ThreadTrace, TraceConfig,
    TraceSnapshot, TraceStats,
};
use proptest::prelude::*;

/// main: entry -> head(cond) -> body(call leaf; ret) -> head -> exit.
fn looped_module() -> Module {
    let mut mb = ModuleBuilder::new("m");
    let leaf = mb.declare("leaf", vec![], Type::Void);
    let mut lf = mb.define(leaf);
    let e = lf.entry();
    lf.switch_to(e);
    lf.copy(Operand::const_int(7));
    lf.ret(None);
    lf.finish();

    let mut f = mb.function("main", vec![], Type::Void);
    let entry = f.entry();
    let head = f.block("head");
    let body = f.block("body");
    let exit = f.block("exit");
    f.switch_to(entry);
    let n = f.alloca(Type::I64);
    f.store(n.clone(), Operand::const_int(0), Type::I64);
    f.br(head);
    f.switch_to(head);
    let v = f.load(n.clone(), Type::I64);
    let c = f.lt(v.clone(), Operand::const_int(3));
    f.cond_br(c, body, exit);
    f.switch_to(body);
    f.call(leaf, vec![]);
    let v2 = f.load(n.clone(), Type::I64);
    let v3 = f.add(v2, Operand::const_int(1));
    f.store(n, v3, Type::I64);
    f.br(head);
    f.switch_to(exit);
    f.halt();
    f.finish();
    mb.finish().unwrap()
}

/// Drives the encoder as the VM would for `iters` loop iterations.
fn drive(module: &Module, iters: u64, cfg: TraceConfig) -> Vec<u8> {
    let main = module.func_by_name("main").unwrap();
    let leaf = module.func_by_name("leaf").unwrap();
    let pcs = |bi: usize| {
        main.blocks[bi]
            .insts
            .iter()
            .map(|i| i.pc.0)
            .collect::<Vec<_>>()
    };
    let (entry, head, body, exit) = (pcs(0), pcs(1), pcs(2), pcs(3));
    let leaf_pcs: Vec<u64> = leaf.entry().insts.iter().map(|i| i.pc.0).collect();
    let mut enc = Encoder::new(cfg);
    let mut t = 1_000u64;
    enc.start(entry[0], t);
    t += 10 * entry.len() as u64;
    for i in 0..=iters {
        t += 10 * head.len() as u64;
        let taken = i < iters;
        enc.branch(head[head.len() - 1], taken, t);
        if !taken {
            break;
        }
        t += 10 * (1 + leaf_pcs.len()) as u64;
        enc.indirect(leaf_pcs[leaf_pcs.len() - 1], body[1], t);
        t += 10 * (body.len() - 1) as u64;
    }
    t += 10 * exit.len() as u64;
    enc.async_fup(exit[exit.len() - 1], t);
    enc.snapshot()
}

/// A valid two-thread snapshot whose payloads carry real packet streams.
fn valid_snapshot(module: &Module, iters: u64, cfg: &TraceConfig) -> TraceSnapshot {
    let payload = drive(module, iters, cfg.clone());
    TraceSnapshot {
        threads: vec![
            ThreadTrace {
                tid: 1,
                bytes: payload.clone(),
                stats: TraceStats::default(),
                wrapped: false,
            },
            ThreadTrace {
                tid: 2,
                bytes: payload,
                stats: TraceStats::default(),
                wrapped: true,
            },
        ],
        taken_at: 10_000_000,
        trigger_tid: 1,
        trigger_pc: 0x40_0000,
        trigger: SnapshotTrigger::Failure,
    }
}

fn arb_op() -> impl Strategy<Value = CorruptionOp> {
    prop_oneof![
        any::<usize>().prop_map(|keep| CorruptionOp::Truncate { keep }),
        (any::<usize>(), any::<u8>())
            .prop_map(|(offset, bit)| CorruptionOp::BitFlip { offset, bit }),
        any::<usize>().prop_map(|field| CorruptionOp::ZeroLength { field }),
        (any::<usize>(), any::<u32>())
            .prop_map(|(field, value)| CorruptionOp::InflateLength { field, value }),
        (any::<usize>(), any::<usize>())
            .prop_map(|(from, to)| CorruptionOp::SplicePsb { from, to }),
        Just(CorruptionOp::DropChecksum),
    ]
}

proptest! {
    /// Wire decode of arbitrarily corrupted snapshots never panics and
    /// never allocates past the input size (decoded thread payloads are
    /// carved out of the buffer, so their sum is bounded by it).
    #[test]
    fn corrupted_wire_decode_is_total(
        iters in 1u64..24,
        fix_checksum in any::<bool>(),
        ops in prop::collection::vec(arb_op(), 1..4),
    ) {
        let module = looped_module();
        let cfg = TraceConfig::default();
        let snap = valid_snapshot(&module, iters, &cfg);
        let mut wire = encode_snapshot(&snap);
        let corruptor = Corruptor { fix_checksum };
        for op in &ops {
            wire = corruptor.apply(&wire, op);
        }
        // A typed Err is the expected outcome; on Ok, allocation stays
        // bounded by the input (payloads are carved out of the buffer).
        if let Ok(back) = decode_snapshot(&wire) {
            let total: usize = back.threads.iter().map(|t| t.bytes.len()).sum();
            prop_assert!(
                total <= wire.len(),
                "decoded {total} payload bytes from a {}-byte wire",
                wire.len()
            );
        }
    }

    /// All three trace decode paths are total over corrupted payloads:
    /// whatever the corruptor did to the bytes, each path returns
    /// `Ok`/`Err` without panicking, and they agree with each other.
    #[test]
    fn corrupted_payload_decode_is_total(
        iters in 1u64..24,
        ops in prop::collection::vec(arb_op(), 1..4),
        workers in 2usize..6,
    ) {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let mut payload = drive(&module, iters, cfg.clone());
        // Payloads have no checksum to launder; apply ops raw.
        let corruptor = Corruptor::new();
        for op in &ops {
            payload = corruptor.apply(&payload, op);
        }
        let snapshot_time = 10_000_000;
        let fused = decode_thread_trace(&index, &cfg, &payload, snapshot_time);
        let legacy = decode_thread_trace_legacy(&index, &cfg, &payload, snapshot_time);
        let sharded = decode_thread_trace_sharded(&index, &cfg, &payload, snapshot_time, workers);
        match (&fused, &legacy) {
            (Ok(a), Ok(b)) => prop_assert_eq!(&a.events, &b.events),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "fused/legacy split: {:?} vs {:?}", fused, legacy),
        }
        match (&fused, &sharded) {
            (Ok(a), Ok(b)) => prop_assert_eq!(&a.events, &b.events),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "fused/sharded split: {:?} vs {:?}", fused, sharded),
        }
    }

    /// End-to-end: corrupted *wire* bytes that still pass wire decode
    /// (laundered checksum) carry corrupted payloads into the decoder —
    /// the decode paths must stay total on those too.
    #[test]
    fn laundered_wire_to_decoder_is_total(
        iters in 1u64..16,
        ops in prop::collection::vec(arb_op(), 1..3),
    ) {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let snap = valid_snapshot(&module, iters, &cfg);
        let mut wire = encode_snapshot(&snap);
        let corruptor = Corruptor::laundering();
        for op in &ops {
            wire = corruptor.apply(&wire, op);
        }
        if let Ok(back) = decode_snapshot(&wire) {
            for t in &back.threads {
                let _ = decode_thread_trace(&index, &cfg, &t.bytes, back.taken_at);
                let _ = decode_thread_trace_sharded(&index, &cfg, &t.bytes, back.taken_at, 4);
            }
        }
    }
}
