//! Property-based tests of the trace substrate: packet-codec roundtrip,
//! ring-buffer semantics, and decoder robustness against garbage.

use lazy_trace::{Packet, PacketDecoder, PacketEncoder, RingBuffer};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        Just(Packet::Psb),
        Just(Packet::Ovf),
        (0u8..64, 1u8..=6).prop_map(|(bits, count)| Packet::Tnt {
            bits: bits & ((1 << count) - 1),
            count
        }),
        (0u64..1 << 48).prop_map(|pc| Packet::Tip { pc }),
        (0u64..1 << 48).prop_map(|pc| Packet::Fup { pc }),
        any::<u64>().prop_map(|tsc| Packet::Tsc { tsc }),
        any::<u8>().prop_map(|ctc| Packet::Mtc { ctc }),
        (0u64..1 << 40).prop_map(|delta| Packet::Cyc { delta }),
    ]
}

proptest! {
    /// Any packet sequence survives an encode/decode roundtrip.
    #[test]
    fn packet_roundtrip(packets in prop::collection::vec(arb_packet(), 0..64)) {
        let mut enc = PacketEncoder::new();
        let mut bytes = Vec::new();
        for p in &packets {
            enc.encode(p, &mut bytes);
        }
        let mut dec = PacketDecoder::new(&bytes);
        let mut out = Vec::new();
        while let Some(p) = dec.next_packet().unwrap() {
            out.push(p);
        }
        prop_assert_eq!(out, packets);
    }

    /// The packet decoder never panics on arbitrary bytes, and always
    /// terminates.
    #[test]
    fn decoder_handles_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = PacketDecoder::new(&bytes);
        let _ = dec.sync_to_psb();
        let mut guard = 0;
        loop {
            match dec.next_packet() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    if !dec.sync_to_psb() {
                        break;
                    }
                }
            }
            guard += 1;
            prop_assert!(guard <= bytes.len() + 8, "decoder failed to make progress");
        }
    }

    /// Ring snapshots equal the suffix of the logical byte stream, no
    /// matter how writes are chunked.
    #[test]
    fn ring_is_a_suffix(
        data in prop::collection::vec(any::<u8>(), 0..600),
        cap in 1usize..128,
        chunk in 1usize..64,
    ) {
        let mut r = RingBuffer::new(cap);
        for c in data.chunks(chunk) {
            r.write(c);
        }
        let snap = r.snapshot();
        let expect_len = data.len().min(cap);
        prop_assert_eq!(snap.len(), if r.wrapped() { cap } else { expect_len });
        prop_assert_eq!(&snap[..], &data[data.len() - snap.len()..]);
        prop_assert_eq!(r.total_written(), data.len() as u64);
    }
}

mod wire_props {
    use lazy_trace::driver::SnapshotTrigger;
    use lazy_trace::{decode_snapshot, encode_snapshot, ThreadTrace, TraceSnapshot, TraceStats};
    use proptest::prelude::*;

    fn arb_thread() -> impl Strategy<Value = ThreadTrace> {
        (
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..200),
            any::<bool>(),
            any::<[u16; 6]>(),
        )
            .prop_map(|(tid, bytes, wrapped, s)| ThreadTrace {
                tid,
                bytes,
                wrapped,
                stats: TraceStats {
                    control_events: u64::from(s[0]),
                    control_packets: u64::from(s[1]),
                    timing_packets: u64::from(s[2]),
                    timing_bytes: u64::from(s[3]),
                    sync_packets: u64::from(s[4]),
                    bytes: u64::from(s[5]),
                },
            })
    }

    fn arb_snapshot() -> impl Strategy<Value = TraceSnapshot> {
        (
            prop::collection::vec(arb_thread(), 0..6),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            prop_oneof![
                Just(SnapshotTrigger::Failure),
                Just(SnapshotTrigger::Breakpoint),
                Just(SnapshotTrigger::OnDemand),
            ],
        )
            .prop_map(|(threads, taken_at, trigger_tid, trigger_pc, trigger)| {
                TraceSnapshot {
                    threads,
                    taken_at,
                    trigger_tid,
                    trigger_pc,
                    trigger,
                }
            })
    }

    proptest! {
        /// Any snapshot survives the wire roundtrip bit-exactly.
        #[test]
        fn wire_roundtrip(snap in arb_snapshot()) {
            let wire = encode_snapshot(&snap);
            let back = decode_snapshot(&wire).unwrap();
            prop_assert_eq!(back.taken_at, snap.taken_at);
            prop_assert_eq!(back.trigger_tid, snap.trigger_tid);
            prop_assert_eq!(back.trigger_pc, snap.trigger_pc);
            prop_assert_eq!(back.trigger, snap.trigger);
            prop_assert_eq!(back.threads.len(), snap.threads.len());
            for (a, b) in back.threads.iter().zip(&snap.threads) {
                prop_assert_eq!(a.tid, b.tid);
                prop_assert_eq!(&a.bytes, &b.bytes);
                prop_assert_eq!(a.wrapped, b.wrapped);
                prop_assert_eq!(a.stats, b.stats);
            }
        }

        /// Arbitrary garbage never decodes successfully by accident
        /// (and never panics).
        #[test]
        fn garbage_never_validates(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            prop_assert!(decode_snapshot(&bytes).is_err());
        }

        /// Flipping any single bit of a valid wire image is always
        /// rejected. The FNV-1a step `h -> (h ^ b) * prime` is a
        /// bijection on the hash state (the prime is odd), so a one-bit
        /// change in the checksummed body always changes the final
        /// hash; flips in the magic or the trailing checksum word are
        /// caught by their own comparisons.
        #[test]
        fn single_bit_flip_never_validates(snap in arb_snapshot(), salt in any::<u64>()) {
            let wire = encode_snapshot(&snap);
            prop_assert!(decode_snapshot(&wire).is_ok());
            // Check a pseudo-random probe plus both ends of the image
            // (magic and checksum word) on every case.
            let total_bits = wire.len() as u64 * 8;
            let probes = [
                salt % total_bits,
                salt % 32,                // somewhere in the magic
                total_bits - 1 - (salt % 32), // somewhere in the checksum
            ];
            for bit in probes {
                let mut corrupt = wire.clone();
                corrupt[(bit / 8) as usize] ^= 1 << (bit % 8);
                prop_assert!(
                    decode_snapshot(&corrupt).is_err(),
                    "bit {bit} of {} accepted", wire.len() * 8
                );
            }
        }
    }
}
