//! Property-based tests of the trace substrate: packet-codec roundtrip,
//! ring-buffer semantics, and decoder robustness against garbage.

use lazy_trace::{Packet, PacketDecoder, PacketEncoder, RingBuffer};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        Just(Packet::Psb),
        Just(Packet::Ovf),
        (0u8..64, 1u8..=6).prop_map(|(bits, count)| Packet::Tnt {
            bits: bits & ((1 << count) - 1),
            count
        }),
        (0u64..1 << 48).prop_map(|pc| Packet::Tip { pc }),
        (0u64..1 << 48).prop_map(|pc| Packet::Fup { pc }),
        any::<u64>().prop_map(|tsc| Packet::Tsc { tsc }),
        any::<u8>().prop_map(|ctc| Packet::Mtc { ctc }),
        (0u64..1 << 40).prop_map(|delta| Packet::Cyc { delta }),
    ]
}

proptest! {
    /// Any packet sequence survives an encode/decode roundtrip.
    #[test]
    fn packet_roundtrip(packets in prop::collection::vec(arb_packet(), 0..64)) {
        let mut enc = PacketEncoder::new();
        let mut bytes = Vec::new();
        for p in &packets {
            enc.encode(p, &mut bytes);
        }
        let mut dec = PacketDecoder::new(&bytes);
        let mut out = Vec::new();
        while let Some(p) = dec.next_packet().unwrap() {
            out.push(p);
        }
        prop_assert_eq!(out, packets);
    }

    /// The packet decoder never panics on arbitrary bytes, and always
    /// terminates.
    #[test]
    fn decoder_handles_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = PacketDecoder::new(&bytes);
        let _ = dec.sync_to_psb();
        let mut guard = 0;
        loop {
            match dec.next_packet() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    if !dec.sync_to_psb() {
                        break;
                    }
                }
            }
            guard += 1;
            prop_assert!(guard <= bytes.len() + 8, "decoder failed to make progress");
        }
    }

    /// Ring snapshots equal the suffix of the logical byte stream, no
    /// matter how writes are chunked.
    #[test]
    fn ring_is_a_suffix(
        data in prop::collection::vec(any::<u8>(), 0..600),
        cap in 1usize..128,
        chunk in 1usize..64,
    ) {
        let mut r = RingBuffer::new(cap);
        for c in data.chunks(chunk) {
            r.write(c);
        }
        let snap = r.snapshot();
        let expect_len = data.len().min(cap);
        prop_assert_eq!(snap.len(), if r.wrapped() { cap } else { expect_len });
        prop_assert_eq!(&snap[..], &data[data.len() - snap.len()..]);
        prop_assert_eq!(r.total_written(), data.len() as u64);
    }
}

mod decode_differential {
    use lazy_ir::{Module, ModuleBuilder, Operand, Type};
    use lazy_trace::{
        decode_thread_trace, decode_thread_trace_adaptive, decode_thread_trace_compiled,
        decode_thread_trace_legacy, decode_thread_trace_sharded, Encoder, ExecIndex, TraceConfig,
        WalkTable,
    };
    use proptest::prelude::*;

    /// main: entry -> head(cond) -> body(call leaf; ret) -> head -> exit.
    fn looped_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let leaf = mb.declare("leaf", vec![], Type::Void);
        let mut lf = mb.define(leaf);
        let e = lf.entry();
        lf.switch_to(e);
        lf.copy(Operand::const_int(7));
        lf.ret(None);
        lf.finish();

        let mut f = mb.function("main", vec![], Type::Void);
        let entry = f.entry();
        let head = f.block("head");
        let body = f.block("body");
        let exit = f.block("exit");
        f.switch_to(entry);
        let n = f.alloca(Type::I64);
        f.store(n.clone(), Operand::const_int(0), Type::I64);
        f.br(head);
        f.switch_to(head);
        let v = f.load(n.clone(), Type::I64);
        let c = f.lt(v.clone(), Operand::const_int(3));
        f.cond_br(c, body, exit);
        f.switch_to(body);
        f.call(leaf, vec![]);
        let v2 = f.load(n.clone(), Type::I64);
        let v3 = f.add(v2, Operand::const_int(1));
        f.store(n, v3, Type::I64);
        f.br(head);
        f.switch_to(exit);
        f.halt();
        f.finish();
        mb.finish().unwrap()
    }

    /// Drives the encoder exactly as the VM would for `iters` loop
    /// iterations and returns the snapshot bytes.
    fn drive(module: &Module, iters: u64, cfg: TraceConfig) -> Vec<u8> {
        let main = module.func_by_name("main").unwrap();
        let leaf = module.func_by_name("leaf").unwrap();
        let pcs = |bi: usize| {
            main.blocks[bi]
                .insts
                .iter()
                .map(|i| i.pc.0)
                .collect::<Vec<_>>()
        };
        let (entry, head, body, exit) = (pcs(0), pcs(1), pcs(2), pcs(3));
        let leaf_pcs: Vec<u64> = leaf.entry().insts.iter().map(|i| i.pc.0).collect();
        let mut enc = Encoder::new(cfg);
        let mut t = 1_000u64;
        enc.start(entry[0], t);
        t += 10 * entry.len() as u64;
        for i in 0..=iters {
            t += 10 * head.len() as u64;
            let taken = i < iters;
            enc.branch(head[head.len() - 1], taken, t);
            if !taken {
                break;
            }
            t += 10 * (1 + leaf_pcs.len()) as u64;
            enc.indirect(leaf_pcs[leaf_pcs.len() - 1], body[1], t);
            t += 10 * (body.len() - 1) as u64;
        }
        t += 10 * exit.len() as u64;
        enc.async_fup(exit[exit.len() - 1], t);
        enc.snapshot()
    }

    /// One stream corruption to inject.
    #[derive(Clone, Copy, Debug)]
    enum Mutation {
        /// Drop this many bytes from the head (simulated wrap: decode
        /// starts mid-packet).
        ChopHead(u16),
        /// Drop this many bytes from the tail (mid-packet truncation).
        ChopTail(u16),
        /// Splice a raw `OVF` packet (`02 F3`) at this position.
        InjectOvf(u16),
        /// Flip one byte at this position.
        Corrupt(u16),
    }

    fn arb_mutation() -> impl Strategy<Value = Mutation> {
        prop_oneof![
            any::<u16>().prop_map(Mutation::ChopHead),
            any::<u16>().prop_map(Mutation::ChopTail),
            any::<u16>().prop_map(Mutation::InjectOvf),
            any::<u16>().prop_map(Mutation::Corrupt),
        ]
    }

    fn mutate(mut bytes: Vec<u8>, muts: &[Mutation]) -> Vec<u8> {
        for m in muts {
            if bytes.is_empty() {
                break;
            }
            match *m {
                Mutation::ChopHead(n) => {
                    let n = usize::from(n) % (bytes.len() / 2 + 1);
                    bytes.drain(..n);
                }
                Mutation::ChopTail(n) => {
                    let n = usize::from(n) % (bytes.len() / 2 + 1);
                    bytes.truncate(bytes.len() - n);
                }
                Mutation::InjectOvf(p) => {
                    let p = usize::from(p) % (bytes.len() + 1);
                    bytes.splice(p..p, [0x02, 0xF3]);
                }
                Mutation::Corrupt(p) => {
                    let i = usize::from(p) % bytes.len();
                    bytes[i] ^= (p >> 8) as u8 | 1;
                }
            }
        }
        bytes
    }

    proptest! {
        /// The fused streaming decoder and the PSB-sharded parallel
        /// decoder agree exactly with the legacy three-pass decoder —
        /// events (PCs *and* time bounds), resync counts, dropped-CYC
        /// counts, and errors — on encoder-produced streams with
        /// injected truncation, overflow, and corruption.
        #[test]
        fn all_decode_paths_agree(
            iters in 1u64..60,
            psb_period in 16usize..192,
            timing in any::<bool>(),
            muts in prop::collection::vec(arb_mutation(), 0..4),
        ) {
            let module = looped_module();
            let index = ExecIndex::build(&module);
            let cfg = TraceConfig {
                psb_period_bytes: psb_period,
                timing_enabled: timing,
                buffer_size: 1 << 20,
                ..TraceConfig::default()
            };
            let bytes = mutate(drive(&module, iters, cfg.clone()), &muts);
            let snapshot_time = 10_000_000;
            let legacy = decode_thread_trace_legacy(&index, &cfg, &bytes, snapshot_time);
            let fused = decode_thread_trace(&index, &cfg, &bytes, snapshot_time);
            match (&legacy, &fused) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.events, &b.events);
                    prop_assert_eq!(a.resyncs, b.resyncs);
                    prop_assert_eq!(a.cyc_dropped, b.cyc_dropped);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "fused/legacy split: {:?} vs {:?}", legacy, fused),
            }
            for workers in [2, 4, 7] {
                let sharded =
                    decode_thread_trace_sharded(&index, &cfg, &bytes, snapshot_time, workers);
                match (&legacy, &sharded) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.events, &b.events, "workers={}", workers);
                        prop_assert_eq!(a.resyncs, b.resyncs, "workers={}", workers);
                        prop_assert_eq!(a.cyc_dropped, b.cyc_dropped, "workers={}", workers);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b, "workers={}", workers),
                    _ => prop_assert!(
                        false,
                        "sharded({}) split: {:?} vs {:?}",
                        workers,
                        legacy,
                        sharded
                    ),
                }
            }
            // The compiled walk table and the adaptive front door must be
            // byte-identical too. Tiny shard thresholds force the adaptive
            // path through real sharding + stitching even on these short
            // streams.
            let table = WalkTable::build(&module);
            let compiled =
                decode_thread_trace_compiled(&index, &table, &cfg, &bytes, snapshot_time);
            match (&legacy, &compiled) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.events, &b.events);
                    prop_assert_eq!(a.resyncs, b.resyncs);
                    prop_assert_eq!(a.cyc_dropped, b.cyc_dropped);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "compiled split: {:?} vs {:?}", legacy, compiled),
            }
            let shard_cfg = TraceConfig {
                decode_shard_min_bytes: 0,
                decode_shard_target_bytes: 64,
                ..cfg.clone()
            };
            for budget in [1, 3] {
                let adaptive = decode_thread_trace_adaptive(
                    &index,
                    Some(&table),
                    &shard_cfg,
                    &bytes,
                    snapshot_time,
                    budget,
                );
                match (&legacy, &adaptive) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.events, &b.events, "budget={}", budget);
                        prop_assert_eq!(a.resyncs, b.resyncs, "budget={}", budget);
                        prop_assert_eq!(a.cyc_dropped, b.cyc_dropped, "budget={}", budget);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b, "budget={}", budget),
                    _ => prop_assert!(
                        false,
                        "adaptive(budget={}) split: {:?} vs {:?}",
                        budget,
                        legacy,
                        adaptive
                    ),
                }
            }
        }
    }
}

mod wire_props {
    use lazy_trace::driver::SnapshotTrigger;
    use lazy_trace::{decode_snapshot, encode_snapshot, ThreadTrace, TraceSnapshot, TraceStats};
    use proptest::prelude::*;

    fn arb_thread() -> impl Strategy<Value = ThreadTrace> {
        (
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..200),
            any::<bool>(),
            any::<[u16; 7]>(),
        )
            .prop_map(|(tid, bytes, wrapped, s)| ThreadTrace {
                tid,
                bytes,
                wrapped,
                stats: TraceStats {
                    control_events: u64::from(s[0]),
                    control_packets: u64::from(s[1]),
                    timing_packets: u64::from(s[2]),
                    timing_bytes: u64::from(s[3]),
                    sync_packets: u64::from(s[4]),
                    bytes: u64::from(s[5]),
                    cyc_dropped: u64::from(s[6]),
                },
            })
    }

    fn arb_snapshot() -> impl Strategy<Value = TraceSnapshot> {
        (
            prop::collection::vec(arb_thread(), 0..6),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            prop_oneof![
                Just(SnapshotTrigger::Failure),
                Just(SnapshotTrigger::Breakpoint),
                Just(SnapshotTrigger::OnDemand),
            ],
        )
            .prop_map(|(threads, taken_at, trigger_tid, trigger_pc, trigger)| {
                TraceSnapshot {
                    threads,
                    taken_at,
                    trigger_tid,
                    trigger_pc,
                    trigger,
                }
            })
    }

    proptest! {
        /// Any snapshot survives the wire roundtrip bit-exactly.
        #[test]
        fn wire_roundtrip(snap in arb_snapshot()) {
            let wire = encode_snapshot(&snap);
            let back = decode_snapshot(&wire).unwrap();
            prop_assert_eq!(back.taken_at, snap.taken_at);
            prop_assert_eq!(back.trigger_tid, snap.trigger_tid);
            prop_assert_eq!(back.trigger_pc, snap.trigger_pc);
            prop_assert_eq!(back.trigger, snap.trigger);
            prop_assert_eq!(back.threads.len(), snap.threads.len());
            for (a, b) in back.threads.iter().zip(&snap.threads) {
                prop_assert_eq!(a.tid, b.tid);
                prop_assert_eq!(&a.bytes, &b.bytes);
                prop_assert_eq!(a.wrapped, b.wrapped);
                prop_assert_eq!(a.stats, b.stats);
            }
        }

        /// Arbitrary garbage never decodes successfully by accident
        /// (and never panics).
        #[test]
        fn garbage_never_validates(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            prop_assert!(decode_snapshot(&bytes).is_err());
        }

        /// Flipping any single bit of a valid wire image is always
        /// rejected. The FNV-1a step `h -> (h ^ b) * prime` is a
        /// bijection on the hash state (the prime is odd), so a one-bit
        /// change in the checksummed body always changes the final
        /// hash; flips in the magic or the trailing checksum word are
        /// caught by their own comparisons.
        #[test]
        fn single_bit_flip_never_validates(snap in arb_snapshot(), salt in any::<u64>()) {
            let wire = encode_snapshot(&snap);
            prop_assert!(decode_snapshot(&wire).is_ok());
            // Check a pseudo-random probe plus both ends of the image
            // (magic and checksum word) on every case.
            let total_bits = wire.len() as u64 * 8;
            let probes = [
                salt % total_bits,
                salt % 32,                // somewhere in the magic
                total_bits - 1 - (salt % 32), // somewhere in the checksum
            ];
            for bit in probes {
                let mut corrupt = wire.clone();
                corrupt[(bit / 8) as usize] ^= 1 << (bit % 8);
                prop_assert!(
                    decode_snapshot(&corrupt).is_err(),
                    "bit {bit} of {} accepted", wire.len() * 8
                );
            }
        }
    }
}
