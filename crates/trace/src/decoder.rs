//! Trace decoding: packet stream + module CFG → executed instructions
//! with coarse time windows.
//!
//! Decoding mirrors a real Intel PT software decoder (the paper uses
//! Intel's stock decoder, §5): synchronize at a `PSB`, anchor the clock
//! from the following `TSC`, anchor the instruction pointer from the
//! following `FUP`, then *walk the program's control-flow graph*,
//! consuming a TNT bit at each conditional branch and a TIP packet at
//! each indirect transfer or return. Timing packets interleaved with the
//! control packets bound each decoded instruction inside a coarse
//! [`TimeBounds`] window — the partial order of the paper's step 3.

use crate::config::TraceConfig;
use crate::packet::{Packet, PacketDecoder};
use lazy_ir::{InstKind, Module, Pc};
use std::collections::HashMap;
use std::fmt;

/// Sentinel TIP target meaning "execution left traced code" (thread
/// exit). The VM emits it when a thread's entry function returns.
pub const EXIT_TARGET: u64 = 0;

/// A coarse time window `[lo, hi]` (virtual nanoseconds) within which an
/// instruction executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeBounds {
    /// Time of the last timing packet preceding the instruction.
    pub lo: u64,
    /// Time of the first timing packet following it (or the snapshot
    /// time).
    pub hi: u64,
}

impl TimeBounds {
    /// Returns `true` if this window is entirely before `other` — the
    /// "executes before" relation of the paper's Figure 5. Windows that
    /// overlap are *unordered*: the coarse interleaving hypothesis says
    /// target events of real bugs won't overlap.
    pub fn definitely_before(&self, other: &TimeBounds) -> bool {
        self.hi < other.lo
    }

    /// Returns `true` if the two windows overlap (no order recoverable).
    pub fn overlaps(&self, other: &TimeBounds) -> bool {
        !self.definitely_before(other) && !other.definitely_before(self)
    }

    /// Window width in nanoseconds.
    pub fn width(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }
}

/// One executed-instruction record in a decoded trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodedEvent {
    /// The instruction's program counter.
    pub pc: Pc,
    /// The coarse execution-time window.
    pub time: TimeBounds,
}

/// A decoded per-thread trace: executed instructions in program order
/// with coarse time windows.
#[derive(Clone, Debug, Default)]
pub struct DecodedTrace {
    /// Executed instructions, oldest first.
    pub events: Vec<DecodedEvent>,
    /// Number of packet-level resynchronizations performed (nonzero when
    /// the ring buffer wrapped mid-packet or packets were lost).
    pub resyncs: u32,
}

impl DecodedTrace {
    /// Iterates over the distinct PCs that appear in the trace.
    pub fn executed_pcs(&self) -> impl Iterator<Item = Pc> + '_ {
        let mut seen = std::collections::HashSet::new();
        self.events
            .iter()
            .filter_map(move |e| seen.insert(e.pc).then_some(e.pc))
    }
}

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The snapshot contains no `PSB`; nothing can be decoded.
    NoSync,
    /// The CFG walk and the packet stream disagree (corrupt trace or
    /// wrong module).
    Desync(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::NoSync => write!(f, "no PSB sync point in trace"),
            DecodeError::Desync(msg) => write!(f, "decoder desynchronized: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// How control leaves an instruction, precomputed for the decode walk.
#[derive(Clone, Copy, Debug)]
enum Transfer {
    /// Falls through to `pc + 4`.
    Linear,
    /// Unconditional branch to a block entry.
    Br { target: u64 },
    /// Conditional branch; consumes one TNT bit.
    CondBr { then_pc: u64, else_pc: u64 },
    /// Direct call; target is statically known.
    Call { callee: u64 },
    /// Indirect call; consumes a TIP packet.
    ICall,
    /// Return; consumes a TIP packet (the driver traces returns as
    /// indirect transfers, like PT without RET compression).
    Ret,
    /// Whole-program halt; the walk ends.
    Halt,
}

/// A precomputed walk table for a module: PC → outgoing transfer.
///
/// Build once per module, reuse across every decode.
#[derive(Clone, Debug)]
pub struct ExecIndex {
    steps: HashMap<u64, Transfer>,
}

impl ExecIndex {
    /// Builds the walk table for `module`.
    pub fn build(module: &Module) -> ExecIndex {
        let mut steps = HashMap::with_capacity(module.inst_count());
        for func in module.functions() {
            let entry_pc: HashMap<_, _> = func
                .blocks
                .iter()
                .map(|b| (b.id, b.insts.first().expect("empty block").pc.0))
                .collect();
            for block in &func.blocks {
                for inst in &block.insts {
                    let t = match &inst.kind {
                        InstKind::Br { target } => Transfer::Br {
                            target: entry_pc[target],
                        },
                        InstKind::CondBr {
                            then_bb, else_bb, ..
                        } => Transfer::CondBr {
                            then_pc: entry_pc[then_bb],
                            else_pc: entry_pc[else_bb],
                        },
                        InstKind::Call { callee, .. } => Transfer::Call {
                            callee: module.func(*callee).base_pc.0,
                        },
                        InstKind::CallIndirect { .. } => Transfer::ICall,
                        InstKind::Ret { .. } => Transfer::Ret,
                        InstKind::Halt => Transfer::Halt,
                        _ => Transfer::Linear,
                    };
                    steps.insert(inst.pc.0, t);
                }
            }
        }
        ExecIndex { steps }
    }

    fn get(&self, pc: u64) -> Option<Transfer> {
        self.steps.get(&pc).copied()
    }
}

/// Reconstructed clock while scanning the packet stream.
struct Clock {
    time: Option<u64>,
    ctc_full: u64,
    period: u64,
    shift: u32,
}

impl Clock {
    fn apply(&mut self, p: &Packet) {
        match p {
            Packet::Tsc { tsc } => {
                self.time = Some(*tsc);
                self.ctc_full = tsc / self.period;
            }
            Packet::Mtc { ctc } => {
                // Unwrap the 8-bit coarse counter against the last known
                // full counter value.
                let base = self.ctc_full & !0xff;
                let mut cand = base | u64::from(*ctc);
                if cand <= self.ctc_full {
                    cand += 0x100;
                }
                self.ctc_full = cand;
                self.time = Some(cand * self.period);
            }
            Packet::Cyc { delta } => {
                if let Some(t) = self.time {
                    self.time = Some(t + (delta << self.shift));
                }
            }
            _ => {}
        }
    }
}

/// Decodes one thread's snapshot bytes against the module walk table.
///
/// `snapshot_time` is the virtual TSC at which the snapshot was taken; it
/// upper-bounds the time window of trailing events.
///
/// # Errors
///
/// Returns [`DecodeError::NoSync`] when no `PSB` is present, or
/// [`DecodeError::Desync`] when the packet stream is inconsistent with
/// the module's control flow.
pub fn decode_thread_trace(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    // Pass 1: parse packets, resynchronizing at the next PSB on error
    // (a wrapped ring snapshot usually starts mid-packet).
    let mut pdec = PacketDecoder::new(bytes);
    let mut resyncs = 0u32;
    if !pdec.sync_to_psb() {
        return Err(DecodeError::NoSync);
    }
    let mut packets = Vec::new();
    loop {
        match pdec.next_packet() {
            Ok(Some(p)) => packets.push(p),
            Ok(None) => break,
            Err(_) => {
                resyncs += 1;
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }

    // Pass 2: reconstruct the last-known time at each packet.
    let mut clock = Clock {
        time: None,
        ctc_full: 0,
        period: config.ctc_period_ns.max(1),
        shift: config.cyc_shift,
    };
    let mut prev_time: Vec<Option<u64>> = Vec::with_capacity(packets.len());
    for p in &packets {
        clock.apply(p);
        prev_time.push(clock.time);
    }

    // Pass 3: CFG walk.
    //
    // Window assignment leans on an encoder invariant: a timing packet
    // is emitted immediately before any control packet once more than
    // one quantum of time has passed, so the reconstructed time at a
    // control packet lags the true time of its transfer by less than
    // one quantum. Events decoded at a control packet therefore
    // executed within `[time of previous control packet, time at this
    // packet + quantum]`; the transfer instruction itself gets the
    // tight window `[time at this packet, time at this packet +
    // quantum]`.
    let quantum = config.time_quantum_ns();
    let mut events = Vec::new();
    let mut cur: Option<u64> = None;
    // Lower bound on the previous control packet's time.
    let mut last_ctrl_lo: Option<u64> = None;
    // After a PSB, the next FUP re-anchors rather than being treated as
    // an async marker.
    let mut expect_anchor = true;

    // Walks from `cur`, emitting events, until `stop` says to pause; the
    // instruction that satisfies `stop` is emitted (with the tight
    // window) and `cur` stays on it.
    fn walk(
        index: &ExecIndex,
        cur: &mut Option<u64>,
        events: &mut Vec<DecodedEvent>,
        stretch: TimeBounds,
        tight: TimeBounds,
        stop: impl Fn(Transfer, u64) -> bool,
    ) -> Result<Option<Transfer>, DecodeError> {
        let mut fuel = 10_000_000u64;
        while let Some(pc) = *cur {
            let Some(t) = index.get(pc) else {
                if pc == EXIT_TARGET {
                    *cur = None;
                    return Ok(None);
                }
                return Err(DecodeError::Desync(format!(
                    "walked to unmapped pc {pc:#x}"
                )));
            };
            let stopping = stop(t, pc);
            events.push(DecodedEvent {
                pc: Pc(pc),
                time: if stopping { tight } else { stretch },
            });
            if stopping {
                return Ok(Some(t));
            }
            *cur = match t {
                Transfer::Linear | Transfer::ICall | Transfer::Ret => Some(pc + 4),
                Transfer::Br { target } => Some(target),
                Transfer::Call { callee } => Some(callee),
                Transfer::CondBr { .. } => {
                    return Err(DecodeError::Desync(format!(
                        "unexpected conditional branch at {pc:#x} without a TNT bit"
                    )))
                }
                Transfer::Halt => None,
            };
            fuel -= 1;
            if fuel == 0 {
                return Err(DecodeError::Desync("walk did not terminate".into()));
            }
        }
        Ok(None)
    }

    for (i, p) in packets.iter().enumerate() {
        let hi = prev_time[i]
            .map(|t| (t + quantum).min(snapshot_time))
            .unwrap_or(snapshot_time);
        let stretch = TimeBounds {
            lo: last_ctrl_lo.unwrap_or(0),
            hi,
        };
        let tight = TimeBounds {
            lo: prev_time[i].unwrap_or(0),
            hi,
        };
        match p {
            Packet::Psb => {
                // A PSB mid-stream (while in sync) is ignorable, exactly
                // as in real PT decode: resetting here would drop the
                // straight-line instructions between the last decision
                // point and the sync anchor. Only an out-of-sync decoder
                // anchors at the PSB's FUP.
                expect_anchor = true;
            }
            Packet::Ovf => {
                cur = None;
                expect_anchor = true;
                last_ctrl_lo = None;
            }
            Packet::Tsc { .. } | Packet::Mtc { .. } | Packet::Cyc { .. } => {}
            Packet::Fup { pc } => {
                if expect_anchor {
                    if cur.is_none() {
                        cur = Some(*pc);
                        // The thread was at the anchor when the PSB's
                        // TSC was stamped.
                        last_ctrl_lo = prev_time[i].or(last_ctrl_lo);
                    }
                    expect_anchor = false;
                } else if cur.is_none() {
                    cur = Some(*pc);
                    last_ctrl_lo = prev_time[i].or(last_ctrl_lo);
                } else {
                    // Async FUP (snapshot marker): walk up to and
                    // including the marked instruction.
                    let target = *pc;
                    if cur == Some(target) {
                        // Walk would stop immediately; emit the marked
                        // instruction (tightly timed) if it is mapped.
                        if index.get(target).is_some() {
                            events.push(DecodedEvent {
                                pc: Pc(target),
                                time: tight,
                            });
                            // Leave `cur` in place: the marked
                            // instruction is the point of interest.
                        }
                    } else {
                        walk(index, &mut cur, &mut events, stretch, tight, |_, pc| {
                            pc == target
                        })?;
                    }
                    last_ctrl_lo = prev_time[i].or(last_ctrl_lo);
                }
            }
            Packet::Tnt { bits, count } => {
                for b in 0..*count {
                    if cur.is_none() {
                        // Lost sync (e.g. OVF); skip bits until re-anchor.
                        break;
                    }
                    let t = walk(index, &mut cur, &mut events, stretch, tight, |t, _| {
                        matches!(t, Transfer::CondBr { .. })
                    })?;
                    match t {
                        Some(Transfer::CondBr { then_pc, else_pc }) => {
                            let taken = bits >> b & 1 == 1;
                            cur = Some(if taken { then_pc } else { else_pc });
                        }
                        _ => {
                            return Err(DecodeError::Desync(
                                "TNT bit with no conditional branch reachable".into(),
                            ))
                        }
                    }
                }
                last_ctrl_lo = prev_time[i].or(last_ctrl_lo);
            }
            Packet::Tip { pc } => {
                if cur.is_some() {
                    let t = walk(index, &mut cur, &mut events, stretch, tight, |t, _| {
                        matches!(t, Transfer::ICall | Transfer::Ret)
                    })?;
                    if t.is_none() && cur.is_some() {
                        return Err(DecodeError::Desync(
                            "TIP with no indirect transfer reachable".into(),
                        ));
                    }
                }
                cur = if *pc == EXIT_TARGET { None } else { Some(*pc) };
                last_ctrl_lo = prev_time[i].or(last_ctrl_lo);
            }
        }
    }

    Ok(DecodedTrace { events, resyncs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use lazy_ir::{ModuleBuilder, Operand, Type};

    /// Builds a module with a loop and a call, plus a tiny callee.
    ///
    /// main: entry -> loop(cond) -> body(call leaf) -> loop -> exit(halt)
    fn looped_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let leaf = mb.declare("leaf", vec![], Type::Void);
        let mut lf = mb.define(leaf);
        let e = lf.entry();
        lf.switch_to(e);
        lf.copy(Operand::const_int(7));
        lf.ret(None);
        lf.finish();

        let mut f = mb.function("main", vec![], Type::Void);
        let entry = f.entry();
        let head = f.block("head");
        let body = f.block("body");
        let exit = f.block("exit");
        f.switch_to(entry);
        let n = f.alloca(Type::I64);
        f.store(n.clone(), Operand::const_int(0), Type::I64);
        f.br(head);
        f.switch_to(head);
        let v = f.load(n.clone(), Type::I64);
        let c = f.lt(v.clone(), Operand::const_int(3));
        f.cond_br(c, body, exit);
        f.switch_to(body);
        f.call(leaf, vec![]);
        let v2 = f.load(n.clone(), Type::I64);
        let v3 = f.add(v2, Operand::const_int(1));
        f.store(n, v3, Type::I64);
        f.br(head);
        f.switch_to(exit);
        f.halt();
        f.finish();
        mb.finish().unwrap()
    }

    /// Simulates execution of `looped_module` for `iters` loop
    /// iterations, feeding the encoder exactly as the VM would, and
    /// returns (expected executed PCs, encoder).
    fn simulate(module: &Module, iters: u64, cfg: TraceConfig) -> (Vec<u64>, Encoder) {
        let main = module.func_by_name("main").unwrap();
        let leaf = module.func_by_name("leaf").unwrap();
        let blocks = &main.blocks;
        let pcs = |bi: usize| blocks[bi].insts.iter().map(|i| i.pc.0).collect::<Vec<_>>();
        let entry = pcs(0);
        let head = pcs(1);
        let body = pcs(2);
        let exit = pcs(3);
        let leaf_pcs: Vec<u64> = leaf.entry().insts.iter().map(|i| i.pc.0).collect();

        let mut enc = Encoder::new(cfg);
        let mut t = 1_000u64;
        let mut expected = Vec::new();
        enc.start(entry[0], t);
        let step = |pcs: &[u64], expected: &mut Vec<u64>, t: &mut u64| {
            for &pc in pcs {
                expected.push(pc);
                *t += 10;
            }
        };
        step(&entry, &mut expected, &mut t);
        for i in 0..=iters {
            step(&head, &mut expected, &mut t);
            // head ends with cond_br; taken while i < iters.
            let taken = i < iters;
            enc.branch(head[head.len() - 1], taken, t);
            if !taken {
                break;
            }
            // body: call leaf (direct, no packet), leaf runs, returns
            // (TIP back to after the call).
            expected.push(body[0]); // The call instruction.
            t += 10;
            step(&leaf_pcs, &mut expected, &mut t);
            // leaf's ret produces a TIP to the instruction after call.
            enc.indirect(leaf_pcs[leaf_pcs.len() - 1], body[1], t);
            step(&body[1..], &mut expected, &mut t);
        }
        // The run ends with a snapshot at the halt instruction: the
        // driver emits an async FUP there, which lets the decoder walk
        // the final straight-line stretch.
        step(&exit, &mut expected, &mut t);
        enc.async_fup(exit[exit.len() - 1], t);
        (expected, enc)
    }

    #[test]
    fn decode_reconstructs_exact_instruction_sequence() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let (expected, mut enc) = simulate(&module, 3, cfg.clone());
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 1_000_000).unwrap();
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(got, expected);
        assert_eq!(trace.resyncs, 0);
    }

    #[test]
    fn decode_without_timing_still_reconstructs_control_flow() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            timing_enabled: false,
            ..TraceConfig::default()
        };
        let (expected, mut enc) = simulate(&module, 2, cfg.clone());
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 1_000_000).unwrap();
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(got, expected);
        // With no timing packets every window spans the whole trace:
        // nothing is ordered.
        for w in trace.events.windows(2) {
            assert!(w[0].time.overlaps(&w[1].time));
        }
    }

    #[test]
    fn time_windows_are_monotonic_and_bounded() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            ctc_period_ns: 64,
            cyc_shift: 4,
            ..TraceConfig::default()
        };
        let (_, mut enc) = simulate(&module, 3, cfg.clone());
        let bytes = enc.snapshot();
        let snapshot_time = 1_000_000;
        let trace = decode_thread_trace(&index, &cfg, &bytes, snapshot_time).unwrap();
        let mut last_lo = 0;
        for e in &trace.events {
            assert!(e.time.lo <= e.time.hi, "lo>{:?}", e.time);
            assert!(e.time.hi <= snapshot_time);
            assert!(e.time.lo >= last_lo, "windows went backwards");
            last_lo = e.time.lo;
        }
        // With fine timing, early and late events must be ordered.
        let first = trace.events.first().unwrap();
        let last = trace.events.last().unwrap();
        assert!(first.time.definitely_before(&last.time));
    }

    #[test]
    fn wrapped_buffer_resyncs_and_decodes_suffix() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        // Tiny buffer to force wrapping.
        let cfg = TraceConfig {
            buffer_size: 96,
            psb_period_bytes: 24,
            ..TraceConfig::default()
        };
        let (expected, mut enc) = simulate(&module, 40, cfg.clone());
        assert!(enc.wrapped());
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 10_000_000).unwrap();
        // The decoded events must be a suffix-aligned subsequence of the
        // expected execution: specifically the decoded PC sequence must
        // appear as a contiguous run ending at the end of `expected`.
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert!(!got.is_empty());
        let tail = &expected[expected.len() - got.len()..];
        assert_eq!(got, tail, "decoded suffix disagrees with execution");
    }

    #[test]
    fn no_psb_is_an_error() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let err = decode_thread_trace(&index, &cfg, &[0x40, 0x01], 10).unwrap_err();
        assert_eq!(err, DecodeError::NoSync);
    }

    #[test]
    fn async_fup_walks_to_failure_point() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let main = module.func_by_name("main").unwrap();
        let entry_pcs: Vec<u64> = main.entry().insts.iter().map(|i| i.pc.0).collect();
        let mut enc = Encoder::new(cfg.clone());
        enc.start(entry_pcs[0], 100);
        // "Crash" at the second instruction of entry: emit async FUP.
        enc.async_fup(entry_pcs[1], 250);
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 300).unwrap();
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(got, vec![entry_pcs[0], entry_pcs[1]]);
    }

    #[test]
    fn exec_index_covers_every_instruction() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        for f in module.functions() {
            for inst in f.insts() {
                assert!(index.get(inst.pc.0).is_some(), "missing {:?}", inst.pc);
            }
        }
    }
}

#[cfg(test)]
mod ovf_tests {
    use super::*;
    use crate::packet::PacketEncoder;
    use lazy_ir::{ModuleBuilder, Operand, Type};

    /// An OVF mid-stream desynchronizes the walk until the next PSB
    /// anchor; events before the OVF and after the re-anchor survive.
    #[test]
    fn overflow_resyncs_at_next_psb() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Type::Void);
        let entry = f.entry();
        let a = f.block("a");
        let b = f.block("b");
        f.switch_to(entry);
        let x = f.alloca(Type::I64);
        f.store(x.clone(), Operand::const_int(0), Type::I64);
        let c = f.eq(Operand::const_int(1), Operand::const_int(1));
        f.cond_br(c, a, b);
        f.switch_to(a);
        f.load(x.clone(), Type::I64);
        f.halt();
        f.switch_to(b);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let index = ExecIndex::build(&m);
        let main = m.func_by_name("main").unwrap();
        let entry_pc = main.blocks[0].insts[0].pc.0;
        let a_load = main.blocks[1].insts[0].pc;
        let a_halt = main.blocks[1].insts[1].pc;

        // Hand-assemble: PSB TSC FUP(entry) OVF PSB TSC FUP(a_load)
        // FUP(a_halt as async marker).
        let mut enc = PacketEncoder::new();
        let mut bytes = Vec::new();
        for p in [
            Packet::Psb,
            Packet::Tsc { tsc: 100 },
            Packet::Fup { pc: entry_pc },
            Packet::Ovf,
            Packet::Psb,
            Packet::Tsc { tsc: 500 },
            Packet::Fup { pc: a_load.0 },
            Packet::Fup { pc: a_halt.0 },
        ] {
            enc.encode(&p, &mut bytes);
        }
        let trace = decode_thread_trace(&index, &TraceConfig::default(), &bytes, 1000).unwrap();
        // The post-resync events decode; nothing from before the OVF
        // (no control packet arrived to walk them).
        let pcs: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(pcs, vec![a_load.0, a_halt.0]);
        // Times re-anchored after the OVF.
        assert!(trace.events[0].time.lo >= 500);
    }
}
