//! Trace decoding: packet stream + module CFG → executed instructions
//! with coarse time windows.
//!
//! Decoding mirrors a real Intel PT software decoder (the paper uses
//! Intel's stock decoder, §5): synchronize at a `PSB`, anchor the clock
//! from the following `TSC`, anchor the instruction pointer from the
//! following `FUP`, then *walk the program's control-flow graph*,
//! consuming a TNT bit at each conditional branch and a TIP packet at
//! each indirect transfer or return. Timing packets interleaved with the
//! control packets bound each decoded instruction inside a coarse
//! [`TimeBounds`] window — the partial order of the paper's step 3.
//!
//! # Decode strategies
//!
//! Three entry points produce bit-identical [`DecodedTrace`]s:
//!
//! * [`decode_thread_trace`] — the production path: a **single fused
//!   streaming pass**. Packets are parsed, clocked, and walked one at a
//!   time; no intermediate `Vec<Packet>` or per-packet timestamp vector
//!   is ever materialized.
//! * [`decode_thread_trace_sharded`] — splits the byte stream at `PSB`
//!   boundaries and decodes the shards on worker threads. A `PSB`
//!   resets last-IP compression and (with timing on) is followed by a
//!   full `TSC` re-anchor, so a shard's packet and clock reconstruction
//!   is independent of its predecessors; only the tiny CFG-walk carry
//!   state (current PC + last control time) crosses the boundary, and a
//!   cheap sequential *stitch* recomputes each shard's head region with
//!   the true carried state, validates that the speculative decode
//!   converged, and falls back to sequential decode of a shard when it
//!   did not. See `DESIGN.md` ("Parallel trace decode") for the
//!   soundness argument.
//! * [`decode_thread_trace_legacy`] — the original three-pass decoder
//!   (packet vec → timestamp vec → CFG walk), kept as the differential
//!   baseline for tests and benches.

use crate::config::TraceConfig;
use crate::packet::{Packet, PacketDecoder};
use lazy_ir::{InstKind, Module, Pc};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Sentinel TIP target meaning "execution left traced code" (thread
/// exit). The VM emits it when a thread's entry function returns.
pub const EXIT_TARGET: u64 = 0;

/// A coarse time window `[lo, hi]` (virtual nanoseconds) within which an
/// instruction executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeBounds {
    /// Time of the last timing packet preceding the instruction.
    pub lo: u64,
    /// Time of the first timing packet following it (or the snapshot
    /// time).
    pub hi: u64,
}

impl TimeBounds {
    /// Returns `true` if this window is entirely before `other` — the
    /// "executes before" relation of the paper's Figure 5. Windows that
    /// overlap are *unordered*: the coarse interleaving hypothesis says
    /// target events of real bugs won't overlap.
    pub fn definitely_before(&self, other: &TimeBounds) -> bool {
        self.hi < other.lo
    }

    /// Returns `true` if the two windows overlap (no order recoverable).
    pub fn overlaps(&self, other: &TimeBounds) -> bool {
        !self.definitely_before(other) && !other.definitely_before(self)
    }

    /// Window width in nanoseconds.
    pub fn width(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }
}

/// One executed-instruction record in a decoded trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodedEvent {
    /// The instruction's program counter.
    pub pc: Pc,
    /// The coarse execution-time window.
    pub time: TimeBounds,
}

/// A decoded per-thread trace: executed instructions in program order
/// with coarse time windows.
#[derive(Clone, Debug, Default)]
pub struct DecodedTrace {
    /// Executed instructions, oldest first.
    pub events: Vec<DecodedEvent>,
    /// Number of packet-level resynchronizations performed (nonzero when
    /// the ring buffer wrapped mid-packet or packets were lost).
    pub resyncs: u32,
    /// `CYC` deltas dropped because no time anchor (`TSC`/`MTC`)
    /// preceded them — time information silently lost at the head of a
    /// wrapped buffer or after corruption.
    pub cyc_dropped: u64,
    /// `MTC` packets carrying a coarse byte identical to the current
    /// counter — duplicated packets (corruption, a PSB splice) that a
    /// naive unwrap would misread as a full 8-bit wrap, advancing
    /// virtual time by a spurious 256 ticks. Counted, not applied.
    pub mtc_dups: u64,
}

impl DecodedTrace {
    /// Iterates over the distinct PCs that appear in the trace.
    pub fn executed_pcs(&self) -> impl Iterator<Item = Pc> + '_ {
        let mut seen = std::collections::HashSet::new();
        self.events
            .iter()
            .filter_map(move |e| seen.insert(e.pc).then_some(e.pc))
    }
}

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The snapshot contains no `PSB`; nothing can be decoded.
    NoSync,
    /// The CFG walk and the packet stream disagree (corrupt trace or
    /// wrong module).
    Desync(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::NoSync => write!(f, "no PSB sync point in trace"),
            DecodeError::Desync(msg) => write!(f, "decoder desynchronized: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// How control leaves an instruction, precomputed for the decode walk.
#[derive(Clone, Copy, Debug)]
enum Transfer {
    /// Falls through to `pc + 4`.
    Linear,
    /// Unconditional branch to a block entry.
    Br { target: u64 },
    /// Conditional branch; consumes one TNT bit.
    CondBr { then_pc: u64, else_pc: u64 },
    /// Direct call; target is statically known.
    Call { callee: u64 },
    /// Indirect call; consumes a TIP packet.
    ICall,
    /// Return; consumes a TIP packet (the driver traces returns as
    /// indirect transfers, like PT without RET compression).
    Ret,
    /// Whole-program halt; the walk ends.
    Halt,
    /// A PC-stride slot with no instruction (function-alignment gap).
    Unmapped,
}

/// A precomputed walk table for a module: PC → outgoing transfer.
///
/// Build once per module, reuse across every decode. The table is a
/// **dense** `Vec` indexed by `(pc - TEXT_BASE) / PC_STRIDE` — the walk
/// probes it once per decoded instruction, and a bounds-checked array
/// load beats a `HashMap` probe by an order of magnitude on that path.
/// Function-alignment gaps hold [`Transfer::Unmapped`].
#[derive(Clone, Debug)]
pub struct ExecIndex {
    base: u64,
    steps: Vec<Transfer>,
}

impl ExecIndex {
    /// Builds the walk table for `module`.
    pub fn build(module: &Module) -> ExecIndex {
        let base = Module::TEXT_BASE;
        let slots = (module.max_pc().0.saturating_sub(base) / Module::PC_STRIDE) as usize;
        let mut steps = vec![Transfer::Unmapped; slots];
        for func in module.functions() {
            // Empty blocks have no entry PC; a branch into one resolves
            // to NO_ENTRY, which sits below TEXT_BASE and therefore
            // walks to a clean `Desync` instead of panicking here. A
            // well-formed module never hits this, but `build` must be
            // total over whatever IR reaches it.
            const NO_ENTRY: u64 = 0;
            let entry_pc: HashMap<_, _> = func
                .blocks
                .iter()
                .filter_map(|b| b.insts.first().map(|i| (b.id, i.pc.0)))
                .collect();
            let entry = |id| entry_pc.get(id).copied().unwrap_or(NO_ENTRY);
            for block in &func.blocks {
                for inst in &block.insts {
                    let t = match &inst.kind {
                        InstKind::Br { target } => Transfer::Br {
                            target: entry(target),
                        },
                        InstKind::CondBr {
                            then_bb, else_bb, ..
                        } => Transfer::CondBr {
                            then_pc: entry(then_bb),
                            else_pc: entry(else_bb),
                        },
                        InstKind::Call { callee, .. } => Transfer::Call {
                            callee: module.func(*callee).base_pc.0,
                        },
                        InstKind::CallIndirect { .. } => Transfer::ICall,
                        InstKind::Ret { .. } => Transfer::Ret,
                        InstKind::Halt => Transfer::Halt,
                        _ => Transfer::Linear,
                    };
                    let slot = (inst.pc.0.saturating_sub(base) / Module::PC_STRIDE) as usize;
                    if let Some(s) = steps.get_mut(slot) {
                        *s = t;
                    }
                }
            }
        }
        ExecIndex { base, steps }
    }

    #[inline]
    fn get(&self, pc: u64) -> Option<Transfer> {
        let off = pc.wrapping_sub(self.base);
        if pc < self.base || !off.is_multiple_of(Module::PC_STRIDE) {
            return None;
        }
        match self.steps.get((off / Module::PC_STRIDE) as usize) {
            None | Some(Transfer::Unmapped) => None,
            Some(t) => Some(*t),
        }
    }
}

/// Cap on pooled event buffers (see [`recycle_events`]). Eight covers
/// a full outer×inner decode fan-out's steady state without hoarding.
const EVENT_POOL_MAX: usize = 8;

/// Recycled event buffers. Decoded traces are multi-megabyte `Vec`s;
/// allocating one per decode makes the decoder fault every output page
/// on first touch, which profiles as ~a third of total decode time on
/// large streams. The serving loop decodes continuously, so buffers
/// whose events have been consumed are parked here and reused — warm
/// pages, no faults. Buffers enter via [`recycle_events`] (callers) and
/// the sharded stitch (speculative shard buffers it has spliced out).
static EVENT_POOL: std::sync::Mutex<Vec<Vec<DecodedEvent>>> = std::sync::Mutex::new(Vec::new());

/// An empty events buffer, reusing pooled (already-faulted) capacity
/// when available.
fn pool_take() -> Vec<DecodedEvent> {
    match EVENT_POOL.lock() {
        Ok(mut pool) => pool.pop().unwrap_or_default(),
        Err(_) => Vec::new(),
    }
}

fn pool_put(mut buf: Vec<DecodedEvent>) {
    if buf.capacity() == 0 {
        return;
    }
    if let Ok(mut pool) = EVENT_POOL.lock() {
        if pool.len() < EVENT_POOL_MAX {
            buf.clear();
            pool.push(buf);
        }
    }
}

/// Returns a consumed trace's event buffer to the decoder's reuse pool.
///
/// Call this once a [`DecodedTrace`]'s events have been fully consumed
/// (aggregated, compared, rendered). Entirely optional — it only makes
/// the *next* decode cheaper by handing it an already-faulted buffer.
pub fn recycle_events(trace: DecodedTrace) {
    pool_put(trace.events);
}

/// Frees every pooled event buffer.
///
/// For benchmarks that need a cold one-shot baseline, and for callers
/// that want the retained capacity back after a decode burst.
pub fn drain_event_pool() {
    if let Ok(mut pool) = EVENT_POOL.lock() {
        pool.clear();
    }
}

/// Walk fuel: the interpreted and compiled walks must apply exactly the
/// same budget for their "walk did not terminate" errors to coincide.
const WALK_FUEL: u64 = 10_000_000;

fn walk_fuel_exhausted() -> DecodeError {
    DecodeError::Desync("walk did not terminate".into())
}

/// How a compiled straight-line run ends.
#[derive(Clone, Copy, Debug)]
enum RunEnd {
    /// The run's last body instruction transfers unconditionally to
    /// `next` (an unconditional branch, a direct call, or straight-line
    /// fallthrough off the block end).
    Jump {
        /// PC the walk continues at.
        next: u64,
    },
    /// Conditional branch at `pc` — consumes a TNT bit.
    CondBr {
        /// The branch instruction's PC (not part of the body).
        pc: u64,
        /// Taken target.
        then_pc: u64,
        /// Not-taken target.
        else_pc: u64,
    },
    /// Indirect call or return at `pc` — consumes a TIP packet. A TNT
    /// walk passes through it linearly (`pc + stride`); a TIP walk
    /// stops on it.
    Indirect {
        /// The transfer instruction's PC (not part of the body).
        pc: u64,
    },
    /// Whole-program halt at `pc`; the walk ends.
    Halt {
        /// The halt instruction's PC (not part of the body).
        pc: u64,
    },
}

/// One compiled straight-line run: `body_len` consecutive instructions
/// from `start_pc` (spaced `Module::PC_STRIDE` apart), then `end`.
#[derive(Clone, Copy, Debug)]
struct Run {
    start_pc: u64,
    body_len: u32,
    end: RunEnd,
}

/// Cap on flattened jump-chain hops. A decision-free jump cycle would
/// otherwise never terminate at build time; a capped chain simply ends
/// in [`ChainEnd::Next`] and the walk loop re-probes from there.
const CHAIN_MAX_HOPS: u32 = 64;

/// Minimum mean run-body length (events per decision) for the compiled
/// walk to pay for itself. Each compiled step replaces per-instruction
/// index probes with one run probe plus a chain load — a win when runs
/// carry a few events each, a small constant loss on degenerate modules
/// whose blocks are one or two instructions long (the bulk extends
/// degenerate to single pushes while the chain bookkeeping remains).
/// Measured crossover on the bench corpus sits between ~1.8 (compiled
/// loses a few percent) and ~4.5 (compiled wins ~1.1x) events/decision.
const PROFITABLE_MEAN_BODY: f64 = 3.0;

/// One flattened run body inside a jump chain: `len` consecutive
/// instructions from `start_pc`.
#[derive(Clone, Copy, Debug)]
struct Seg {
    start_pc: u64,
    len: u32,
}

/// Where a flattened jump chain lands.
#[derive(Clone, Copy, Debug)]
enum ChainEnd {
    /// Same decision semantics as the matching [`RunEnd`] variants.
    CondBr {
        pc: u64,
        then_pc: u64,
        else_pc: u64,
    },
    Indirect {
        pc: u64,
    },
    Halt {
        pc: u64,
    },
    /// The chain stopped without reaching a decision (unmapped or
    /// mid-run jump target, thread-exit sentinel, or hop cap): the walk
    /// continues interpreting from `pc`.
    Next {
        pc: u64,
    },
}

/// The flattened continuation of a [`RunEnd::Jump`] run: every body the
/// walk is guaranteed to traverse after the run's own, following
/// unconditional transfers until the next decision point. Turns a
/// jump-linked sequence of runs (block → called leaf → …) into one
/// probe, a handful of bulk emits, and a single precomputed fuel check
/// (`segs_total`).
#[derive(Clone, Copy, Debug)]
struct Chain {
    seg_lo: u32,
    seg_hi: u32,
    /// Total events across the chain's segments — the originating
    /// run's own (offset-dependent) body is accounted separately.
    segs_total: u64,
    end: ChainEnd,
}

/// A compiled per-module walk specialization.
///
/// [`ExecIndex`] answers "how does control leave *this instruction*";
/// the decode walk interprets it one instruction at a time — a
/// bounds-checked load and an 8-way match per decoded event. A
/// `WalkTable` precomputes the module's **straight-line runs** (maximal
/// stretches the walk always traverses whole: within a basic block,
/// split at call sites because a callee's return re-enters mid-block)
/// so the hot TNT/TIP walks advance a run at a time: bulk-append the
/// run body (consecutive PCs, constant time window — a loop the
/// compiler vectorizes) and switch once on the run's end.
///
/// Every mapped PC belongs to exactly one run (decision instructions
/// carry offset == `body_len`), so compiled walks never fall back
/// mid-walk. The table is built once per module — typically at a
/// server's first decode — and shared read-only across every decode
/// job, thread, shard, and fleet round thereafter.
///
/// Byte-identity with the interpreted walk (events, time windows, error
/// messages, and the [`WALK_FUEL`] budget) is pinned by the decoder's
/// differential tests, `tests/proptests.rs`, and the full-corpus suite.
#[derive(Clone, Debug)]
pub struct WalkTable {
    base: u64,
    /// Slot (same geometry as [`ExecIndex`]) → run id + 1; 0 = unmapped.
    slot_run: Vec<u32>,
    runs: Vec<Run>,
    /// Per-run flattened jump chains (parallel to `runs`; only
    /// meaningful for [`RunEnd::Jump`] runs).
    chains: Vec<Chain>,
    /// Segment pool the chains index into.
    segs: Vec<Seg>,
    /// Whether the module's runs are long enough for the compiled walk
    /// to beat the interpreted one (see [`PROFITABLE_MEAN_BODY`]).
    profitable: bool,
}

impl WalkTable {
    /// Compiles the walk table for `module`.
    ///
    /// Mirrors [`ExecIndex::build`]'s iteration exactly so both cover
    /// the same PC set; assumes each PC belongs to at most one
    /// instruction (the module builder's layout guarantee).
    pub fn build(module: &Module) -> WalkTable {
        lazy_obs::counter!("decode.walk_table.build", 1u64);
        let base = Module::TEXT_BASE;
        let slots = (module.max_pc().0.saturating_sub(base) / Module::PC_STRIDE) as usize;
        let mut slot_run = vec![0u32; slots];
        let mut runs: Vec<Run> = Vec::new();
        for func in module.functions() {
            // NO_ENTRY mirrors ExecIndex::build: a branch into an empty
            // block resolves below TEXT_BASE and the walk surfaces a
            // clean Desync (or thread exit, since NO_ENTRY == 0).
            const NO_ENTRY: u64 = 0;
            let entry_pc: HashMap<_, _> = func
                .blocks
                .iter()
                .filter_map(|b| b.insts.first().map(|i| (b.id, i.pc.0)))
                .collect();
            let entry = |id| entry_pc.get(id).copied().unwrap_or(NO_ENTRY);
            for block in &func.blocks {
                let mut i = 0usize;
                while i < block.insts.len() {
                    let start_pc = block.insts[i].pc.0;
                    let mut body = 0u32;
                    let mut expect = start_pc;
                    let end = loop {
                        let Some(inst) = block.insts.get(i) else {
                            // Ran off the block without a terminator:
                            // the interpreted walk falls through
                            // linearly to the next PC.
                            break RunEnd::Jump { next: expect };
                        };
                        let pc = inst.pc.0;
                        if pc != expect {
                            // Non-contiguous layout inside a block —
                            // end the run where interpreted fallthrough
                            // would land (usually unmapped → Desync).
                            break RunEnd::Jump { next: expect };
                        }
                        i += 1;
                        match &inst.kind {
                            InstKind::Br { target } => {
                                body += 1;
                                break RunEnd::Jump {
                                    next: entry(target),
                                };
                            }
                            InstKind::CondBr {
                                then_bb, else_bb, ..
                            } => {
                                break RunEnd::CondBr {
                                    pc,
                                    then_pc: entry(then_bb),
                                    else_pc: entry(else_bb),
                                }
                            }
                            InstKind::Call { callee, .. } => {
                                body += 1;
                                break RunEnd::Jump {
                                    next: module.func(*callee).base_pc.0,
                                };
                            }
                            InstKind::CallIndirect { .. } | InstKind::Ret { .. } => {
                                break RunEnd::Indirect { pc }
                            }
                            InstKind::Halt => break RunEnd::Halt { pc },
                            _ => {
                                body += 1;
                                expect = pc + Module::PC_STRIDE;
                            }
                        }
                    };
                    let id = runs.len() as u32;
                    let mut claim = |pc: u64| {
                        let slot = (pc.saturating_sub(base) / Module::PC_STRIDE) as usize;
                        if let Some(s) = slot_run.get_mut(slot) {
                            *s = id + 1;
                        }
                    };
                    for k in 0..u64::from(body) {
                        claim(start_pc + k * Module::PC_STRIDE);
                    }
                    if let RunEnd::CondBr { pc, .. }
                    | RunEnd::Indirect { pc }
                    | RunEnd::Halt { pc } = end
                    {
                        claim(pc);
                    }
                    runs.push(Run {
                        start_pc,
                        body_len: body,
                        end,
                    });
                }
            }
        }
        // Second pass: flatten each Jump run's unconditional
        // continuation into a chain of whole-run segments ending at the
        // next decision point. Chains only extend through targets that
        // are run *starts*; anything else (mid-run landing, unmapped PC,
        // thread-exit sentinel) ends the chain and the walk loop
        // re-probes from there, so flattening never changes semantics.
        let run_at = |pc: u64| -> Option<(Run, u32)> {
            let off = pc.wrapping_sub(base);
            if pc < base || !off.is_multiple_of(Module::PC_STRIDE) {
                return None;
            }
            let id = *slot_run.get((off / Module::PC_STRIDE) as usize)?;
            let run = *runs.get(id.checked_sub(1)? as usize)?;
            Some((run, ((pc - run.start_pc) / Module::PC_STRIDE) as u32))
        };
        let mut chains = Vec::with_capacity(runs.len());
        let mut segs: Vec<Seg> = Vec::new();
        for r in &runs {
            let seg_lo = segs.len() as u32;
            let mut total = 0u64;
            let mut end = ChainEnd::Next { pc: 0 };
            if let RunEnd::Jump { next } = r.end {
                let mut next = next;
                let mut hops = 0u32;
                loop {
                    let Some((nr, 0)) = run_at(next) else {
                        end = ChainEnd::Next { pc: next };
                        break;
                    };
                    if nr.body_len > 0 {
                        segs.push(Seg {
                            start_pc: nr.start_pc,
                            len: nr.body_len,
                        });
                        total += u64::from(nr.body_len);
                    }
                    match nr.end {
                        RunEnd::Jump { next: n2 } => {
                            hops += 1;
                            if hops >= CHAIN_MAX_HOPS {
                                end = ChainEnd::Next { pc: n2 };
                                break;
                            }
                            next = n2;
                        }
                        RunEnd::CondBr {
                            pc,
                            then_pc,
                            else_pc,
                        } => {
                            end = ChainEnd::CondBr {
                                pc,
                                then_pc,
                                else_pc,
                            };
                            break;
                        }
                        RunEnd::Indirect { pc } => {
                            end = ChainEnd::Indirect { pc };
                            break;
                        }
                        RunEnd::Halt { pc } => {
                            end = ChainEnd::Halt { pc };
                            break;
                        }
                    }
                }
            }
            chains.push(Chain {
                seg_lo,
                seg_hi: segs.len() as u32,
                segs_total: total,
                end,
            });
        }
        let bodies: u64 = runs.iter().map(|r| u64::from(r.body_len)).sum();
        let profitable =
            !runs.is_empty() && bodies as f64 / runs.len() as f64 >= PROFITABLE_MEAN_BODY;
        WalkTable {
            base,
            slot_run,
            runs,
            chains,
            segs,
            profitable,
        }
    }

    /// Whether the compiled walk is expected to beat the interpreted
    /// one on this module (mean run body ≥ [`PROFITABLE_MEAN_BODY`]
    /// events per decision). The adaptive decoder consults this to
    /// decide whether a cached table is worth engaging; forcing the
    /// table via [`decode_thread_trace_compiled`] ignores it.
    #[inline]
    #[must_use]
    pub fn is_profitable(&self) -> bool {
        self.profitable
    }

    /// The run containing `pc`, with `pc`'s offset into it (equal to
    /// `body_len` when `pc` is the run's decision instruction) and the
    /// run's id (the index into `chains`).
    #[inline]
    fn run_of(&self, pc: u64) -> Option<(Run, u32, u32)> {
        let off = pc.wrapping_sub(self.base);
        if pc < self.base || !off.is_multiple_of(Module::PC_STRIDE) {
            return None;
        }
        let id = *self.slot_run.get((off / Module::PC_STRIDE) as usize)?;
        if id == 0 {
            return None;
        }
        let run = *self.runs.get((id - 1) as usize)?;
        let run_off = (pc.wrapping_sub(run.start_pc) / Module::PC_STRIDE) as u32;
        Some((run, run_off, id - 1))
    }

    /// Appends every segment of `chain` (bodies the walk traverses
    /// whole, each a bulk extend with one constant time window).
    #[inline]
    fn emit_chain(&self, events: &mut Vec<DecodedEvent>, chain: &Chain, time: TimeBounds) {
        for seg in &self.segs[chain.seg_lo as usize..chain.seg_hi as usize] {
            emit_span(events, seg.start_pc, seg.len, time);
        }
    }

    /// Compiled twin of [`walk`] with stop = "is a conditional branch".
    ///
    /// Returns the branch's `(then, else)` targets, or `None` when the
    /// walk ended without one (halt / thread exit). Event emission,
    /// time-window choice, fuel accounting, and error text are
    /// byte-identical to the interpreted walk.
    fn walk_to_condbr(
        &self,
        cur: &mut Option<u64>,
        events: &mut Vec<DecodedEvent>,
        stretch: TimeBounds,
        tight: TimeBounds,
    ) -> Result<Option<(u64, u64)>, DecodeError> {
        let mut fuel = WALK_FUEL;
        while let Some(pc) = *cur {
            let Some((run, off, id)) = self.run_of(pc) else {
                if pc == EXIT_TARGET {
                    *cur = None;
                    return Ok(None);
                }
                return Err(DecodeError::Desync(format!(
                    "walked to unmapped pc {pc:#x}"
                )));
            };
            let body = u64::from(run.body_len - off);
            match run.end {
                RunEnd::Jump { .. } => {
                    // Take the precomputed chain: the run's own body
                    // plus every jump-linked body through to the next
                    // decision, one fuel check for the lot. The
                    // interpreted walk burns one fuel per emitted
                    // (non-stopping) event; erroring at >= keeps the
                    // exhaustion point identical (events emitted before
                    // a walk error are unobservable — the decode
                    // returns `Err`).
                    let chain = self.chains[id as usize];
                    let total = body + chain.segs_total;
                    match chain.end {
                        ChainEnd::CondBr {
                            pc: dec,
                            then_pc,
                            else_pc,
                        } => {
                            if total >= fuel {
                                return Err(walk_fuel_exhausted());
                            }
                            emit_run_body(events, &run, off, stretch);
                            self.emit_chain(events, &chain, stretch);
                            events.push(DecodedEvent {
                                pc: Pc(dec),
                                time: tight,
                            });
                            *cur = Some(dec);
                            return Ok(Some((then_pc, else_pc)));
                        }
                        ChainEnd::Indirect { pc: dec } => {
                            if total + 1 >= fuel {
                                return Err(walk_fuel_exhausted());
                            }
                            fuel -= total + 1;
                            emit_run_body(events, &run, off, stretch);
                            self.emit_chain(events, &chain, stretch);
                            events.push(DecodedEvent {
                                pc: Pc(dec),
                                time: stretch,
                            });
                            *cur = Some(dec + Module::PC_STRIDE);
                        }
                        ChainEnd::Halt { pc: dec } => {
                            if total + 1 >= fuel {
                                return Err(walk_fuel_exhausted());
                            }
                            emit_run_body(events, &run, off, stretch);
                            self.emit_chain(events, &chain, stretch);
                            events.push(DecodedEvent {
                                pc: Pc(dec),
                                time: stretch,
                            });
                            *cur = None;
                        }
                        ChainEnd::Next { pc: next } => {
                            if total >= fuel {
                                return Err(walk_fuel_exhausted());
                            }
                            fuel -= total;
                            emit_run_body(events, &run, off, stretch);
                            self.emit_chain(events, &chain, stretch);
                            *cur = Some(next);
                        }
                    }
                }
                RunEnd::CondBr {
                    pc: dec,
                    then_pc,
                    else_pc,
                } => {
                    if body >= fuel {
                        return Err(walk_fuel_exhausted());
                    }
                    emit_run_body(events, &run, off, stretch);
                    events.push(DecodedEvent {
                        pc: Pc(dec),
                        time: tight,
                    });
                    *cur = Some(dec);
                    return Ok(Some((then_pc, else_pc)));
                }
                RunEnd::Indirect { pc: dec } => {
                    // Not a stop for this predicate: the transfer is
                    // emitted like a body event and the walk continues
                    // past it linearly.
                    if body + 1 >= fuel {
                        return Err(walk_fuel_exhausted());
                    }
                    fuel -= body + 1;
                    emit_run_body(events, &run, off, stretch);
                    events.push(DecodedEvent {
                        pc: Pc(dec),
                        time: stretch,
                    });
                    *cur = Some(dec + Module::PC_STRIDE);
                }
                RunEnd::Halt { pc: dec } => {
                    if body + 1 >= fuel {
                        return Err(walk_fuel_exhausted());
                    }
                    emit_run_body(events, &run, off, stretch);
                    events.push(DecodedEvent {
                        pc: Pc(dec),
                        time: stretch,
                    });
                    *cur = None;
                }
            }
        }
        Ok(None)
    }

    /// Compiled twin of [`walk`] with stop = "is an indirect transfer".
    ///
    /// Returns `true` when the walk stopped at an indirect call/return
    /// (`cur` stays on it), `false` when it ended without one.
    fn walk_to_indirect(
        &self,
        cur: &mut Option<u64>,
        events: &mut Vec<DecodedEvent>,
        stretch: TimeBounds,
        tight: TimeBounds,
    ) -> Result<bool, DecodeError> {
        let mut fuel = WALK_FUEL;
        while let Some(pc) = *cur {
            let Some((run, off, id)) = self.run_of(pc) else {
                if pc == EXIT_TARGET {
                    *cur = None;
                    return Ok(false);
                }
                return Err(DecodeError::Desync(format!(
                    "walked to unmapped pc {pc:#x}"
                )));
            };
            let body = u64::from(run.body_len - off);
            match run.end {
                RunEnd::Jump { .. } => {
                    let chain = self.chains[id as usize];
                    let total = body + chain.segs_total;
                    match chain.end {
                        ChainEnd::Indirect { pc: dec } => {
                            if total >= fuel {
                                return Err(walk_fuel_exhausted());
                            }
                            emit_run_body(events, &run, off, stretch);
                            self.emit_chain(events, &chain, stretch);
                            events.push(DecodedEvent {
                                pc: Pc(dec),
                                time: tight,
                            });
                            *cur = Some(dec);
                            return Ok(true);
                        }
                        ChainEnd::CondBr { pc: dec, .. } => {
                            // See the direct `RunEnd::CondBr` arm: the
                            // branch is emitted (stretch window), then
                            // the transfer resolution errors.
                            if total >= fuel {
                                return Err(walk_fuel_exhausted());
                            }
                            emit_run_body(events, &run, off, stretch);
                            self.emit_chain(events, &chain, stretch);
                            events.push(DecodedEvent {
                                pc: Pc(dec),
                                time: stretch,
                            });
                            return Err(DecodeError::Desync(format!(
                                "unexpected conditional branch at {dec:#x} without a TNT bit"
                            )));
                        }
                        ChainEnd::Halt { pc: dec } => {
                            if total + 1 >= fuel {
                                return Err(walk_fuel_exhausted());
                            }
                            emit_run_body(events, &run, off, stretch);
                            self.emit_chain(events, &chain, stretch);
                            events.push(DecodedEvent {
                                pc: Pc(dec),
                                time: stretch,
                            });
                            *cur = None;
                        }
                        ChainEnd::Next { pc: next } => {
                            if total >= fuel {
                                return Err(walk_fuel_exhausted());
                            }
                            fuel -= total;
                            emit_run_body(events, &run, off, stretch);
                            self.emit_chain(events, &chain, stretch);
                            *cur = Some(next);
                        }
                    }
                }
                RunEnd::Indirect { pc: dec } => {
                    if body >= fuel {
                        return Err(walk_fuel_exhausted());
                    }
                    emit_run_body(events, &run, off, stretch);
                    events.push(DecodedEvent {
                        pc: Pc(dec),
                        time: tight,
                    });
                    *cur = Some(dec);
                    return Ok(true);
                }
                RunEnd::CondBr { pc: dec, .. } => {
                    // The interpreted walk emits the branch (stretch
                    // window — not a stop for this predicate) and then
                    // errors while resolving the transfer.
                    if body >= fuel {
                        return Err(walk_fuel_exhausted());
                    }
                    emit_run_body(events, &run, off, stretch);
                    events.push(DecodedEvent {
                        pc: Pc(dec),
                        time: stretch,
                    });
                    return Err(DecodeError::Desync(format!(
                        "unexpected conditional branch at {dec:#x} without a TNT bit"
                    )));
                }
                RunEnd::Halt { pc: dec } => {
                    if body + 1 >= fuel {
                        return Err(walk_fuel_exhausted());
                    }
                    emit_run_body(events, &run, off, stretch);
                    events.push(DecodedEvent {
                        pc: Pc(dec),
                        time: stretch,
                    });
                    *cur = None;
                }
            }
        }
        Ok(false)
    }
}

/// Appends a run's body events from offset `off`: consecutive PCs, one
/// constant time window — a bulk extend the optimizer unrolls, versus
/// the interpreted walk's per-event index probe + transfer match.
#[inline]
fn emit_run_body(events: &mut Vec<DecodedEvent>, run: &Run, off: u32, time: TimeBounds) {
    let start = run.start_pc + u64::from(off) * Module::PC_STRIDE;
    emit_span(events, start, run.body_len - off, time);
}

/// Appends `len` consecutive-PC events. Short spans (the common case on
/// modules with small basic blocks) take plain pushes — iterator-extend
/// setup costs more than the events themselves below a handful.
#[inline]
fn emit_span(events: &mut Vec<DecodedEvent>, start: u64, len: u32, time: TimeBounds) {
    if len <= 4 {
        for k in 0..u64::from(len) {
            events.push(DecodedEvent {
                pc: Pc(start + k * Module::PC_STRIDE),
                time,
            });
        }
    } else {
        events.extend((0..u64::from(len)).map(|k| DecodedEvent {
            pc: Pc(start + k * Module::PC_STRIDE),
            time,
        }));
    }
}

/// The walk backend one decode uses: the interpreted [`ExecIndex`] is
/// always present (rare paths — async FUP target walks, mapped-PC
/// probes — stay interpreted); the hot TNT/TIP walks dispatch to the
/// compiled [`WalkTable`] when one is attached.
#[derive(Clone, Copy)]
struct Walker<'a> {
    index: &'a ExecIndex,
    table: Option<&'a WalkTable>,
}

/// Snapshot of the clock-reconstruction state at a stream position —
/// what a shard needs to reconstruct time exactly as the sequential
/// decoder would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ClockSeed {
    time: Option<u64>,
    ctc_full: u64,
}

impl ClockSeed {
    const INITIAL: ClockSeed = ClockSeed {
        time: None,
        ctc_full: 0,
    };
}

/// Reconstructed clock while scanning the packet stream.
struct Clock {
    time: Option<u64>,
    ctc_full: u64,
    period: u64,
    shift: u32,
    /// `CYC` deltas discarded for want of a preceding anchor.
    cyc_dropped: u64,
    /// `MTC` packets whose coarse byte equaled the current counter — a
    /// duplicated packet (corruption, a PSB splice), not a wrap.
    mtc_dups: u64,
}

impl Clock {
    fn seeded(config: &TraceConfig, seed: ClockSeed) -> Clock {
        Clock {
            time: seed.time,
            ctc_full: seed.ctc_full,
            period: config.ctc_period_ns.max(1),
            shift: config.cyc_shift,
            cyc_dropped: 0,
            mtc_dups: 0,
        }
    }

    fn seed(&self) -> ClockSeed {
        ClockSeed {
            time: self.time,
            ctc_full: self.ctc_full,
        }
    }

    fn apply(&mut self, p: &Packet) {
        match p {
            Packet::Tsc { tsc } => {
                self.time = Some(*tsc);
                self.ctc_full = tsc / self.period;
            }
            Packet::Mtc { ctc } => {
                // Unwrap the 8-bit coarse counter against the last known
                // full counter value. Only a *strictly smaller* coarse
                // byte means the 8-bit counter wrapped; an identical
                // byte is a duplicated packet (after corruption or a
                // PSB splice) and must not advance virtual time by a
                // spurious 256 ticks.
                let base = self.ctc_full & !0xff;
                let mut cand = base | u64::from(*ctc);
                if cand == self.ctc_full {
                    self.mtc_dups += 1;
                    return;
                }
                if cand < self.ctc_full {
                    cand += 0x100;
                }
                self.ctc_full = cand;
                self.time = Some(cand * self.period);
            }
            Packet::Cyc { delta } => {
                if let Some(t) = self.time {
                    self.time = Some(t + (delta << self.shift));
                } else {
                    self.cyc_dropped += 1;
                }
            }
            _ => {}
        }
    }
}

/// The CFG-walk state that flows across packets (and, in sharded
/// decode, across shard boundaries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WalkState {
    /// The walk's current PC (`None` while desynchronized).
    cur: Option<u64>,
    /// Lower bound on the previous control packet's time.
    last_ctrl_lo: Option<u64>,
    /// After a PSB, the next FUP re-anchors rather than being treated
    /// as an async marker.
    expect_anchor: bool,
}

impl WalkState {
    const INITIAL: WalkState = WalkState {
        cur: None,
        last_ctrl_lo: None,
        expect_anchor: true,
    };
}

/// Walks from `cur`, emitting events, until `stop` says to pause; the
/// instruction that satisfies `stop` is emitted (with the tight window)
/// and `cur` stays on it.
fn walk(
    index: &ExecIndex,
    cur: &mut Option<u64>,
    events: &mut Vec<DecodedEvent>,
    stretch: TimeBounds,
    tight: TimeBounds,
    stop: impl Fn(Transfer, u64) -> bool,
) -> Result<Option<Transfer>, DecodeError> {
    let mut fuel = 10_000_000u64;
    while let Some(pc) = *cur {
        let Some(t) = index.get(pc) else {
            if pc == EXIT_TARGET {
                *cur = None;
                return Ok(None);
            }
            return Err(DecodeError::Desync(format!(
                "walked to unmapped pc {pc:#x}"
            )));
        };
        let stopping = stop(t, pc);
        events.push(DecodedEvent {
            pc: Pc(pc),
            time: if stopping { tight } else { stretch },
        });
        if stopping {
            return Ok(Some(t));
        }
        *cur = match t {
            Transfer::Linear | Transfer::ICall | Transfer::Ret => Some(pc + 4),
            Transfer::Br { target } => Some(target),
            Transfer::Call { callee } => Some(callee),
            Transfer::CondBr { .. } => {
                return Err(DecodeError::Desync(format!(
                    "unexpected conditional branch at {pc:#x} without a TNT bit"
                )))
            }
            Transfer::Halt | Transfer::Unmapped => None,
        };
        fuel -= 1;
        if fuel == 0 {
            return Err(DecodeError::Desync("walk did not terminate".into()));
        }
    }
    Ok(None)
}

/// Applies one packet to the walk state, emitting decoded events.
///
/// `time_now` is the reconstructed clock *after* the packet (timing
/// packets change the clock before the walk sees them; control packets
/// leave it untouched).
///
/// Window assignment leans on an encoder invariant: a timing packet is
/// emitted immediately before any control packet once more than one
/// quantum of time has passed, so the reconstructed time at a control
/// packet lags the true time of its transfer by less than one quantum.
/// Events decoded at a control packet therefore executed within
/// `[time of previous control packet, time at this packet + quantum]`;
/// the transfer instruction itself gets the tight window `[time at
/// this packet, time at this packet + quantum]`.
fn step(
    walker: Walker<'_>,
    st: &mut WalkState,
    events: &mut Vec<DecodedEvent>,
    p: &Packet,
    time_now: Option<u64>,
    quantum: u64,
    snapshot_time: u64,
) -> Result<(), DecodeError> {
    let index = walker.index;
    let hi = time_now
        .map(|t| (t + quantum).min(snapshot_time))
        .unwrap_or(snapshot_time);
    let stretch = TimeBounds {
        lo: st.last_ctrl_lo.unwrap_or(0),
        hi,
    };
    let tight = TimeBounds {
        lo: time_now.unwrap_or(0),
        hi,
    };
    match p {
        Packet::Psb => {
            // A PSB mid-stream (while in sync) is ignorable, exactly
            // as in real PT decode: resetting here would drop the
            // straight-line instructions between the last decision
            // point and the sync anchor. Only an out-of-sync decoder
            // anchors at the PSB's FUP.
            st.expect_anchor = true;
        }
        Packet::Ovf => {
            st.cur = None;
            st.expect_anchor = true;
            st.last_ctrl_lo = None;
        }
        Packet::Tsc { .. } | Packet::Mtc { .. } | Packet::Cyc { .. } => {}
        Packet::Fup { pc } => {
            if st.expect_anchor {
                if st.cur.is_none() {
                    st.cur = Some(*pc);
                    // The thread was at the anchor when the PSB's
                    // TSC was stamped.
                    st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
                }
                st.expect_anchor = false;
            } else if st.cur.is_none() {
                st.cur = Some(*pc);
                st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
            } else {
                // Async FUP (snapshot marker): walk up to and
                // including the marked instruction.
                let target = *pc;
                if st.cur == Some(target) {
                    // Walk would stop immediately; emit the marked
                    // instruction (tightly timed) if it is mapped.
                    if index.get(target).is_some() {
                        events.push(DecodedEvent {
                            pc: Pc(target),
                            time: tight,
                        });
                        // Leave `cur` in place: the marked
                        // instruction is the point of interest.
                    }
                } else {
                    walk(index, &mut st.cur, events, stretch, tight, |_, pc| {
                        pc == target
                    })?;
                }
                st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
            }
        }
        Packet::Tnt { bits, count } => {
            for b in 0..*count {
                if st.cur.is_none() {
                    // Lost sync (e.g. OVF); skip bits until re-anchor.
                    break;
                }
                let resolved = match walker.table {
                    Some(tab) => tab.walk_to_condbr(&mut st.cur, events, stretch, tight)?,
                    None => {
                        match walk(index, &mut st.cur, events, stretch, tight, |t, _| {
                            matches!(t, Transfer::CondBr { .. })
                        })? {
                            Some(Transfer::CondBr { then_pc, else_pc }) => Some((then_pc, else_pc)),
                            _ => None,
                        }
                    }
                };
                match resolved {
                    Some((then_pc, else_pc)) => {
                        let taken = bits >> b & 1 == 1;
                        st.cur = Some(if taken { then_pc } else { else_pc });
                    }
                    None => {
                        return Err(DecodeError::Desync(
                            "TNT bit with no conditional branch reachable".into(),
                        ))
                    }
                }
            }
            st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
        }
        Packet::Tip { pc } => {
            if st.cur.is_some() {
                let found = match walker.table {
                    Some(tab) => tab.walk_to_indirect(&mut st.cur, events, stretch, tight)?,
                    None => walk(index, &mut st.cur, events, stretch, tight, |t, _| {
                        matches!(t, Transfer::ICall | Transfer::Ret)
                    })?
                    .is_some(),
                };
                if !found && st.cur.is_some() {
                    return Err(DecodeError::Desync(
                        "TIP with no indirect transfer reachable".into(),
                    ));
                }
            }
            st.cur = if *pc == EXIT_TARGET { None } else { Some(*pc) };
            st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
        }
    }
    Ok(())
}

/// Decodes one thread's snapshot bytes against the module walk table —
/// the fused single-pass production decoder.
///
/// Packets are parsed, clocked, and walked in one streaming pass; no
/// packet vector is materialized. `snapshot_time` is the virtual TSC at
/// which the snapshot was taken; it upper-bounds the time window of
/// trailing events.
///
/// # Errors
///
/// Returns [`DecodeError::NoSync`] when no `PSB` is present, or
/// [`DecodeError::Desync`] when the packet stream is inconsistent with
/// the module's control flow.
pub fn decode_thread_trace(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    decode_stream(Walker { index, table: None }, config, bytes, snapshot_time)
}

/// [`decode_thread_trace`] with a compiled [`WalkTable`] driving the
/// hot TNT/TIP walks. Byte-identical output, built for the warm path
/// where the table already exists in a cross-job cache.
///
/// # Errors
///
/// Same contract as [`decode_thread_trace`].
pub fn decode_thread_trace_compiled(
    index: &ExecIndex,
    table: &WalkTable,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    lazy_obs::counter!("decode.walk_table.hit", 1u64);
    decode_stream(
        Walker {
            index,
            table: Some(table),
        },
        config,
        bytes,
        snapshot_time,
    )
}

// Exactly two machine-code copies of the hot loop, split on the one
// thing worth specializing: whether a compiled walk table drives the
// TNT/TIP walks. Every *interpreted* sequential entry point (fused,
// adaptive-routed-fused, shard fallback) shares one outlined copy —
// letting rustc inline the loop per call site lands duplicates with
// different code alignment and measurably different throughput, which
// the one_core bench gate (adaptive == fused on 1 core) would report
// as routing overhead. The *tabled* copy is outlined separately so the
// `Option<&WalkTable>` discriminant constant-folds out of the walk.
fn decode_stream(
    walker: Walker<'_>,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    match walker.table {
        None => decode_stream_interpreted(walker.index, config, bytes, snapshot_time),
        Some(table) => decode_stream_tabled(walker.index, table, config, bytes, snapshot_time),
    }
}

#[inline(never)]
fn decode_stream_interpreted(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    decode_stream_core(Walker { index, table: None }, config, bytes, snapshot_time)
}

#[inline(never)]
fn decode_stream_tabled(
    index: &ExecIndex,
    table: &WalkTable,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    decode_stream_core(
        Walker {
            index,
            table: Some(table),
        },
        config,
        bytes,
        snapshot_time,
    )
}

#[inline(always)]
fn decode_stream_core(
    walker: Walker<'_>,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    let _span = lazy_obs::span!("decode.stream");
    lazy_obs::counter!("decode.stream_bytes_total", bytes.len());
    let mut pdec = PacketDecoder::new(bytes);
    if !pdec.sync_to_psb() {
        return Err(DecodeError::NoSync);
    }
    let quantum = config.time_quantum_ns();
    let mut clock = Clock::seeded(config, ClockSeed::INITIAL);
    let mut st = WalkState::INITIAL;
    let mut events = pool_take();
    let mut resyncs = 0u32;
    loop {
        match pdec.next_packet() {
            Ok(Some(p)) => {
                clock.apply(&p);
                step(
                    walker,
                    &mut st,
                    &mut events,
                    &p,
                    clock.time,
                    quantum,
                    snapshot_time,
                )?;
            }
            Ok(None) => break,
            Err(_) => {
                resyncs += 1;
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }
    Ok(DecodedTrace {
        events,
        resyncs,
        cyc_dropped: clock.cyc_dropped,
        mtc_dups: clock.mtc_dups,
    })
}

/// The original three-pass decoder (packet vec → per-packet timestamp
/// vec → CFG walk), kept as the differential-testing and benchmark
/// baseline for the fused and sharded paths.
///
/// # Errors
///
/// Same contract as [`decode_thread_trace`].
pub fn decode_thread_trace_legacy(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    // Pass 1: parse packets, resynchronizing at the next PSB on error
    // (a wrapped ring snapshot usually starts mid-packet).
    let mut pdec = PacketDecoder::new(bytes);
    let mut resyncs = 0u32;
    if !pdec.sync_to_psb() {
        return Err(DecodeError::NoSync);
    }
    let mut packets = Vec::new();
    loop {
        match pdec.next_packet() {
            Ok(Some(p)) => packets.push(p),
            Ok(None) => break,
            Err(_) => {
                resyncs += 1;
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }

    // Pass 2: reconstruct the last-known time at each packet.
    let mut clock = Clock::seeded(config, ClockSeed::INITIAL);
    let mut prev_time: Vec<Option<u64>> = Vec::with_capacity(packets.len());
    for p in &packets {
        clock.apply(p);
        prev_time.push(clock.time);
    }

    // Pass 3: CFG walk.
    let quantum = config.time_quantum_ns();
    let mut st = WalkState::INITIAL;
    let mut events = Vec::new();
    for (i, p) in packets.iter().enumerate() {
        step(
            Walker { index, table: None },
            &mut st,
            &mut events,
            p,
            prev_time[i],
            quantum,
            snapshot_time,
        )?;
    }
    Ok(DecodedTrace {
        events,
        resyncs,
        cyc_dropped: clock.cyc_dropped,
        mtc_dups: clock.mtc_dups,
    })
}

/// One `PSB` landing found by the skim pass, with the exact clock state
/// on entry (a `PSB` packet itself never changes the clock).
#[derive(Clone, Copy, Debug)]
struct Boundary {
    offset: usize,
    clock: ClockSeed,
}

/// The skim pass: a lightweight sequential scan that finds every `PSB`
/// the sequential decoder would decode (payload bytes that merely *look*
/// like a `PSB` marker are skipped exactly as the sequential packet
/// trajectory skips them), tracks the reconstructed clock at each, and
/// performs the authoritative resync / dropped-`CYC` accounting.
struct Skim {
    boundaries: Vec<Boundary>,
    resyncs: u32,
    cyc_dropped: u64,
    mtc_dups: u64,
}

fn skim_psb_sections(config: &TraceConfig, bytes: &[u8]) -> Option<Skim> {
    let mut pdec = PacketDecoder::new(bytes);
    if !pdec.sync_to_psb() {
        return None;
    }
    let mut clock = Clock::seeded(config, ClockSeed::INITIAL);
    let mut resyncs = 0u32;
    let mut boundaries = Vec::new();
    loop {
        let at = pdec.position();
        match pdec.next_packet() {
            Ok(Some(p)) => {
                if matches!(p, Packet::Psb) {
                    boundaries.push(Boundary {
                        offset: at,
                        clock: clock.seed(),
                    });
                }
                clock.apply(&p);
            }
            Ok(None) => break,
            Err(_) => {
                resyncs += 1;
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }
    Some(Skim {
        boundaries,
        resyncs,
        cyc_dropped: clock.cyc_dropped,
        mtc_dups: clock.mtc_dups,
    })
}

/// Sequentially decodes `range` (which must start at a packet boundary)
/// with exact seeded clock and walk state, appending decoded events to
/// `events` in place — the stitch decodes straight into the final
/// buffer instead of materializing per-shard vectors it would then
/// copy. Resync/CYC accounting is the skim's job, not this function's.
#[allow(clippy::too_many_arguments)] // internal: a seeded decode is this wide
fn run_range(
    walker: Walker<'_>,
    config: &TraceConfig,
    bytes: &[u8],
    range: Range<usize>,
    seed: ClockSeed,
    mut st: WalkState,
    events: &mut Vec<DecodedEvent>,
    snapshot_time: u64,
) -> Result<WalkState, DecodeError> {
    let mut pdec = PacketDecoder::new(&bytes[range]);
    let quantum = config.time_quantum_ns();
    let mut clock = Clock::seeded(config, seed);
    loop {
        match pdec.next_packet() {
            Ok(Some(p)) => {
                clock.apply(&p);
                step(
                    walker,
                    &mut st,
                    events,
                    &p,
                    clock.time,
                    quantum,
                    snapshot_time,
                )?;
            }
            Ok(None) => break,
            Err(_) => {
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }
    Ok(st)
}

/// The result of speculatively decoding one shard with an unknown
/// carried-in walk state.
struct ShardOutcome {
    /// All events the speculative decode produced.
    events: Vec<DecodedEvent>,
    /// How many of `events` belong to the *head* — emitted before the
    /// walk state provably converged; the stitch recomputes them.
    head_events: usize,
    /// Whether a convergence point was reached.
    converged: bool,
    /// Absolute byte offset just past the packet that established
    /// convergence (shard end when `!converged`).
    converged_at: usize,
    /// Speculative walk state right after the convergence packet; the
    /// stitch accepts the tail only if the true state matches exactly.
    post_head: WalkState,
    /// Walk state at shard end. Authoritative when `converged`, or when
    /// the true carried-in state turns out to equal the speculative
    /// premise ([`WalkState::INITIAL`]) — then the whole speculative
    /// decode *was* the sequential decode.
    end_state: WalkState,
    /// The walk error that stopped the speculation, if any.
    /// Authoritative after convergence (post-convergence decode is
    /// exactly what the sequential decoder would do from the same
    /// state) or when the carried-in premise proves true; a
    /// pre-convergence error under a false premise is speculative noise
    /// and the stitch's recompute supersedes it.
    error: Option<DecodeError>,
}

/// Speculatively decodes one shard assuming it starts desynchronized
/// (`cur = None`), recording where the walk state stops depending on
/// the unknown carry-in:
///
/// * an `OVF` wipes the walk state — convergence regardless of carry;
/// * a `TNT` leaves the walk at a CFG-determined conditional branch,
///   and a `TIP` sets the current PC from the packet itself — both
///   converge *if* the speculative anchor walked to the same place the
///   true state would have (validated by the stitch).
///
/// Events emitted before convergence (and by the converging packet's
/// own walk) are speculative; the stitch recomputes them from the true
/// carried state. A walk error before convergence simply ends the
/// speculation — the stitch's recompute of the whole region surfaces
/// the authoritative outcome.
fn decode_shard(
    walker: Walker<'_>,
    config: &TraceConfig,
    bytes: &[u8],
    range: Range<usize>,
    seed: ClockSeed,
    snapshot_time: u64,
) -> ShardOutcome {
    let mut pdec = PacketDecoder::new(&bytes[range.clone()]);
    let quantum = config.time_quantum_ns();
    let mut clock = Clock::seeded(config, seed);
    let mut st = WalkState::INITIAL;
    let mut events = pool_take();
    let mut converged = false;
    let mut head_events = 0usize;
    let mut converged_at = range.end;
    let mut post_head = st;
    let mut error = None;
    loop {
        match pdec.next_packet() {
            Ok(Some(p)) => {
                clock.apply(&p);
                let converging = !converged
                    && matches!(p, Packet::Tnt { .. } | Packet::Tip { .. } | Packet::Ovf);
                match step(
                    walker,
                    &mut st,
                    &mut events,
                    &p,
                    clock.time,
                    quantum,
                    snapshot_time,
                ) {
                    Ok(()) => {}
                    Err(e) => {
                        // Record the error regardless of convergence:
                        // the stitch decides whether it is
                        // authoritative (see `ShardOutcome::error`).
                        // Either way the speculation stops here.
                        error = Some(e);
                        break;
                    }
                }
                if converging {
                    converged = true;
                    head_events = events.len();
                    converged_at = range.start + pdec.position();
                    post_head = st;
                }
            }
            Ok(None) => break,
            Err(_) => {
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }
    if !converged {
        head_events = events.len();
        converged_at = range.end;
        post_head = st;
    }
    ShardOutcome {
        events,
        head_events,
        converged,
        converged_at,
        post_head,
        end_state: st,
        error,
    }
}

/// Decodes one thread's snapshot bytes by sharding the stream at `PSB`
/// boundaries and decoding shards on up to `workers` threads, then
/// stitching. Produces a [`DecodedTrace`] **bit-identical** to
/// [`decode_thread_trace`] (and the legacy decoder) for every input,
/// including corrupt and truncated streams — speculation failures fall
/// back to sequential decode of the affected shard.
///
/// # Errors
///
/// Same contract as [`decode_thread_trace`].
pub fn decode_thread_trace_sharded(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
    workers: usize,
) -> Result<DecodedTrace, DecodeError> {
    decode_sharded(
        Walker { index, table: None },
        config,
        bytes,
        snapshot_time,
        workers,
    )
}

/// The adaptive production decoder: routes each input to whichever
/// decode strategy wins for its size and the machine's parallelism.
///
/// * `table` — optional compiled [`WalkTable`] (from the server's
///   cross-job cache); when present **and profitable for the module**
///   ([`WalkTable::is_profitable`]), every routed path uses the
///   compiled hot walks; otherwise the table is bypassed and the
///   interpreted walk runs (`decode.walk_table.{hit,bypass}` count the
///   outcomes).
/// * `worker_budget` — the parallelism available to *this* decode;
///   `0` means "ask the OS" ([`std::thread::available_parallelism`]).
///
/// Routing: the shard count is the worker budget capped by
/// `len / decode_shard_target_bytes` (each shard must be big enough to
/// amortize skim + stitch), and inputs under `decode_shard_min_bytes`
/// — or any routing that leaves ≤ 1 shard, e.g. every input on a
/// 1-core box — take the fused sequential pass with zero sharding
/// overhead. The `decode.shard.routed_{fused,sharded}` counters record
/// each routing decision.
///
/// # Errors
///
/// Same contract as [`decode_thread_trace`].
pub fn decode_thread_trace_adaptive(
    index: &ExecIndex,
    table: Option<&WalkTable>,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
    worker_budget: usize,
) -> Result<DecodedTrace, DecodeError> {
    // Engage a cached table only where the compiled walk actually wins:
    // on degenerate short-run modules the interpreted walk is a few
    // percent faster, and "adaptive" means picking the faster path, not
    // the fancier one.
    let table = table.filter(|t| t.is_profitable());
    if table.is_some() {
        lazy_obs::counter!("decode.walk_table.hit", 1u64);
    } else {
        lazy_obs::counter!("decode.walk_table.bypass", 1u64);
    }
    let walker = Walker { index, table };
    let budget = if worker_budget == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        worker_budget
    };
    let shards = budget.min(bytes.len() / config.decode_shard_target_bytes.max(1));
    if shards <= 1 || bytes.len() < config.decode_shard_min_bytes {
        lazy_obs::counter!("decode.shard.routed_fused", 1u64);
        decode_stream(walker, config, bytes, snapshot_time)
    } else {
        lazy_obs::counter!("decode.shard.routed_sharded", 1u64);
        decode_sharded(walker, config, bytes, snapshot_time, shards)
    }
}

fn decode_sharded(
    walker: Walker<'_>,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
    workers: usize,
) -> Result<DecodedTrace, DecodeError> {
    if workers <= 1 {
        return decode_stream(walker, config, bytes, snapshot_time);
    }
    let skimmed = {
        let _span = lazy_obs::span!("decode.shard.skim");
        skim_psb_sections(config, bytes)
    };
    let Some(skim) = skimmed else {
        return Err(DecodeError::NoSync);
    };

    // Partition the PSB sections into byte-balanced shards.
    let first = skim.boundaries[0].offset;
    let n = workers.min(skim.boundaries.len());
    let target = (bytes.len() - first).div_ceil(n);
    let mut starts: Vec<usize> = vec![0];
    let mut shard_start = first;
    for (i, b) in skim.boundaries.iter().enumerate().skip(1) {
        if b.offset - shard_start >= target && starts.len() < n {
            starts.push(i);
            shard_start = b.offset;
        }
    }
    let shards: Vec<(Range<usize>, ClockSeed)> = starts
        .iter()
        .enumerate()
        .map(|(k, &bi)| {
            let start = skim.boundaries[bi].offset;
            let end = starts
                .get(k + 1)
                .map_or(bytes.len(), |&bj| skim.boundaries[bj].offset);
            (start..end, skim.boundaries[bi].clock)
        })
        .collect();

    lazy_obs::counter!("decode.shards_total", shards.len());
    let _speculate_span = lazy_obs::span!("decode.shard.speculate");
    let outcomes: Vec<ShardOutcome> = if shards.len() == 1 {
        let (r, seed) = &shards[0];
        vec![decode_shard(
            walker,
            config,
            bytes,
            r.clone(),
            *seed,
            snapshot_time,
        )]
    } else {
        // Speculative shard decode runs inside catch_unwind: a panic in
        // one worker must not take down the caller. The parallel path
        // is an optimization over the fused sequential decoder, so on
        // any shard panic we discard all speculation and fall back to
        // the sequential path — same result, just slower.
        let caught: Option<Vec<ShardOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|(r, seed)| {
                    let (r, seed) = (r.clone(), *seed);
                    scope.spawn(move || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            decode_shard(walker, config, bytes, r, seed, snapshot_time)
                        }))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(Ok(out)) => Some(out),
                    _ => None,
                })
                .collect()
        });
        match caught {
            Some(outs) => outs,
            None => return decode_stream(walker, config, bytes, snapshot_time),
        }
    };

    drop(_speculate_span);
    // Stitch: recompute each shard's head with the true carried state,
    // validate convergence, splice the speculative tail (or redecode
    // the shard sequentially when speculation failed). Heads and
    // redecodes stream straight into the final pre-sized buffer;
    // accepted tails are one bulk `extend_from_slice` — no per-shard
    // intermediate vectors.
    let _stitch_span = lazy_obs::span!("decode.shard.stitch");
    let mut events: Vec<DecodedEvent> = pool_take();
    events.reserve(outcomes.iter().map(|o| o.events.len()).sum());
    let mut carry = WalkState::INITIAL;
    for ((range, seed), out) in shards.iter().zip(outcomes) {
        if carry == WalkState::INITIAL {
            // The speculative premise (`WalkState::INITIAL` carry-in)
            // turned out to be exactly true — always for shard 0, and
            // for any shard whose predecessor ended e.g. right after
            // an OVF. The speculation *was* the sequential decode:
            // splice it whole, zero recompute.
            events.extend_from_slice(&out.events);
            if let Some(e) = out.error {
                return Err(e);
            }
            carry = out.end_state;
            pool_put(out.events);
            continue;
        }
        let base = events.len();
        let head_end = run_range(
            walker,
            config,
            bytes,
            range.start..out.converged_at,
            *seed,
            carry,
            &mut events,
            snapshot_time,
        )?;
        if !out.converged {
            // The "head" was the entire shard; the recompute above is
            // its authoritative sequential decode.
            carry = head_end;
            pool_put(out.events);
            continue;
        }
        if head_end == out.post_head {
            events.extend_from_slice(&out.events[out.head_events..]);
            if let Some(e) = out.error {
                return Err(e);
            }
            carry = out.end_state;
            pool_put(out.events);
        } else {
            // Speculation diverged (e.g. an async FUP whose target sat
            // inside the carried straight-line stretch): redecode the
            // whole shard from the true state.
            events.truncate(base);
            pool_put(out.events);
            carry = run_range(
                walker,
                config,
                bytes,
                range.clone(),
                *seed,
                carry,
                &mut events,
                snapshot_time,
            )?;
        }
    }
    Ok(DecodedTrace {
        events,
        resyncs: skim.resyncs,
        cyc_dropped: skim.cyc_dropped,
        mtc_dups: skim.mtc_dups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use lazy_ir::{ModuleBuilder, Operand, Type};

    /// Builds a module with a loop and a call, plus a tiny callee.
    ///
    /// main: entry -> loop(cond) -> body(call leaf) -> loop -> exit(halt)
    fn looped_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let leaf = mb.declare("leaf", vec![], Type::Void);
        let mut lf = mb.define(leaf);
        let e = lf.entry();
        lf.switch_to(e);
        lf.copy(Operand::const_int(7));
        lf.ret(None);
        lf.finish();

        let mut f = mb.function("main", vec![], Type::Void);
        let entry = f.entry();
        let head = f.block("head");
        let body = f.block("body");
        let exit = f.block("exit");
        f.switch_to(entry);
        let n = f.alloca(Type::I64);
        f.store(n.clone(), Operand::const_int(0), Type::I64);
        f.br(head);
        f.switch_to(head);
        let v = f.load(n.clone(), Type::I64);
        let c = f.lt(v.clone(), Operand::const_int(3));
        f.cond_br(c, body, exit);
        f.switch_to(body);
        f.call(leaf, vec![]);
        let v2 = f.load(n.clone(), Type::I64);
        let v3 = f.add(v2, Operand::const_int(1));
        f.store(n, v3, Type::I64);
        f.br(head);
        f.switch_to(exit);
        f.halt();
        f.finish();
        mb.finish().unwrap()
    }

    /// Simulates execution of `looped_module` for `iters` loop
    /// iterations, feeding the encoder exactly as the VM would, and
    /// returns (expected executed PCs, encoder).
    fn simulate(module: &Module, iters: u64, cfg: TraceConfig) -> (Vec<u64>, Encoder) {
        let main = module.func_by_name("main").unwrap();
        let leaf = module.func_by_name("leaf").unwrap();
        let blocks = &main.blocks;
        let pcs = |bi: usize| blocks[bi].insts.iter().map(|i| i.pc.0).collect::<Vec<_>>();
        let entry = pcs(0);
        let head = pcs(1);
        let body = pcs(2);
        let exit = pcs(3);
        let leaf_pcs: Vec<u64> = leaf.entry().insts.iter().map(|i| i.pc.0).collect();

        let mut enc = Encoder::new(cfg);
        let mut t = 1_000u64;
        let mut expected = Vec::new();
        enc.start(entry[0], t);
        let step = |pcs: &[u64], expected: &mut Vec<u64>, t: &mut u64| {
            for &pc in pcs {
                expected.push(pc);
                *t += 10;
            }
        };
        step(&entry, &mut expected, &mut t);
        for i in 0..=iters {
            step(&head, &mut expected, &mut t);
            // head ends with cond_br; taken while i < iters.
            let taken = i < iters;
            enc.branch(head[head.len() - 1], taken, t);
            if !taken {
                break;
            }
            // body: call leaf (direct, no packet), leaf runs, returns
            // (TIP back to after the call).
            expected.push(body[0]); // The call instruction.
            t += 10;
            step(&leaf_pcs, &mut expected, &mut t);
            // leaf's ret produces a TIP to the instruction after call.
            enc.indirect(leaf_pcs[leaf_pcs.len() - 1], body[1], t);
            step(&body[1..], &mut expected, &mut t);
        }
        // The run ends with a snapshot at the halt instruction: the
        // driver emits an async FUP there, which lets the decoder walk
        // the final straight-line stretch.
        step(&exit, &mut expected, &mut t);
        enc.async_fup(exit[exit.len() - 1], t);
        (expected, enc)
    }

    #[test]
    fn decode_reconstructs_exact_instruction_sequence() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let (expected, mut enc) = simulate(&module, 3, cfg.clone());
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 1_000_000).unwrap();
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(got, expected);
        assert_eq!(trace.resyncs, 0);
    }

    #[test]
    fn decode_without_timing_still_reconstructs_control_flow() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            timing_enabled: false,
            ..TraceConfig::default()
        };
        let (expected, mut enc) = simulate(&module, 2, cfg.clone());
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 1_000_000).unwrap();
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(got, expected);
        // With no timing packets every window spans the whole trace:
        // nothing is ordered.
        for w in trace.events.windows(2) {
            assert!(w[0].time.overlaps(&w[1].time));
        }
    }

    #[test]
    fn time_windows_are_monotonic_and_bounded() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            ctc_period_ns: 64,
            cyc_shift: 4,
            ..TraceConfig::default()
        };
        let (_, mut enc) = simulate(&module, 3, cfg.clone());
        let bytes = enc.snapshot();
        let snapshot_time = 1_000_000;
        let trace = decode_thread_trace(&index, &cfg, &bytes, snapshot_time).unwrap();
        let mut last_lo = 0;
        for e in &trace.events {
            assert!(e.time.lo <= e.time.hi, "lo>{:?}", e.time);
            assert!(e.time.hi <= snapshot_time);
            assert!(e.time.lo >= last_lo, "windows went backwards");
            last_lo = e.time.lo;
        }
        // With fine timing, early and late events must be ordered.
        let first = trace.events.first().unwrap();
        let last = trace.events.last().unwrap();
        assert!(first.time.definitely_before(&last.time));
    }

    #[test]
    fn wrapped_buffer_resyncs_and_decodes_suffix() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        // Tiny buffer to force wrapping.
        let cfg = TraceConfig {
            buffer_size: 96,
            psb_period_bytes: 24,
            ..TraceConfig::default()
        };
        let (expected, mut enc) = simulate(&module, 40, cfg.clone());
        assert!(enc.wrapped());
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 10_000_000).unwrap();
        // The decoded events must be a suffix-aligned subsequence of the
        // expected execution: specifically the decoded PC sequence must
        // appear as a contiguous run ending at the end of `expected`.
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert!(!got.is_empty());
        let tail = &expected[expected.len() - got.len()..];
        assert_eq!(got, tail, "decoded suffix disagrees with execution");
    }

    #[test]
    fn no_psb_is_an_error() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let err = decode_thread_trace(&index, &cfg, &[0x40, 0x01], 10).unwrap_err();
        assert_eq!(err, DecodeError::NoSync);
        let err = decode_thread_trace_sharded(&index, &cfg, &[0x40, 0x01], 10, 4).unwrap_err();
        assert_eq!(err, DecodeError::NoSync);
    }

    #[test]
    fn async_fup_walks_to_failure_point() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let main = module.func_by_name("main").unwrap();
        let entry_pcs: Vec<u64> = main.entry().insts.iter().map(|i| i.pc.0).collect();
        let mut enc = Encoder::new(cfg.clone());
        enc.start(entry_pcs[0], 100);
        // "Crash" at the second instruction of entry: emit async FUP.
        enc.async_fup(entry_pcs[1], 250);
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 300).unwrap();
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(got, vec![entry_pcs[0], entry_pcs[1]]);
    }

    #[test]
    fn exec_index_covers_every_instruction() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        for f in module.functions() {
            for inst in f.insts() {
                assert!(index.get(inst.pc.0).is_some(), "missing {:?}", inst.pc);
            }
        }
    }

    #[test]
    fn exec_index_rejects_gaps_and_unaligned_pcs() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        // Below the text base, above the last instruction, unaligned.
        assert!(index.get(0).is_none());
        assert!(index.get(Module::TEXT_BASE - 4).is_none());
        assert!(index.get(module.max_pc().0 + 4096).is_none());
        assert!(index.get(Module::TEXT_BASE + 1).is_none());
        // Function-alignment gap: the leaf function is padded to 64
        // bytes; the slot right after its last instruction is a gap.
        let leaf = module.func_by_name("leaf").unwrap();
        let last = leaf.insts().last().unwrap().pc.0;
        let next_base = module.func_by_name("main").unwrap().base_pc.0;
        if last + Module::PC_STRIDE < next_base {
            assert!(index.get(last + Module::PC_STRIDE).is_none());
        }
    }

    /// Asserts all three decoders agree exactly on `bytes`.
    fn assert_all_paths_agree(
        module: &Module,
        index: &ExecIndex,
        cfg: &TraceConfig,
        bytes: &[u8],
        snapshot_time: u64,
    ) {
        let table = WalkTable::build(module);
        let legacy = decode_thread_trace_legacy(index, cfg, bytes, snapshot_time);
        let check = |label: &str, got: &Result<DecodedTrace, DecodeError>| match (&legacy, got) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.events, b.events, "{label} events diverged");
                assert_eq!(a.resyncs, b.resyncs, "{label} resyncs");
                assert_eq!(a.cyc_dropped, b.cyc_dropped, "{label} cyc");
                assert_eq!(a.mtc_dups, b.mtc_dups, "{label} mtc dups");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{label} error diverged"),
            _ => panic!("{label} disagrees on success: {legacy:?} vs {got:?}"),
        };
        check(
            "fused",
            &decode_thread_trace(index, cfg, bytes, snapshot_time),
        );
        check(
            "compiled",
            &decode_thread_trace_compiled(index, &table, cfg, bytes, snapshot_time),
        );
        for workers in [2, 3, 5, 16] {
            check(
                &format!("sharded({workers})"),
                &decode_thread_trace_sharded(index, cfg, bytes, snapshot_time, workers),
            );
            check(
                &format!("sharded+table({workers})"),
                &decode_sharded(
                    Walker {
                        index,
                        table: Some(&table),
                    },
                    cfg,
                    bytes,
                    snapshot_time,
                    workers,
                ),
            );
        }
        for budget in [1, 3] {
            check(
                &format!("adaptive({budget})"),
                &decode_thread_trace_adaptive(
                    index,
                    Some(&table),
                    cfg,
                    bytes,
                    snapshot_time,
                    budget,
                ),
            );
        }
    }

    #[test]
    fn sharded_decode_matches_sequential_on_long_stream() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        // Small PSB period: many shard boundaries.
        let cfg = TraceConfig {
            psb_period_bytes: 32,
            buffer_size: 1 << 20,
            ..TraceConfig::default()
        };
        let (_, mut enc) = simulate(&module, 200, cfg.clone());
        let bytes = enc.snapshot();
        assert_all_paths_agree(&module, &index, &cfg, &bytes, 10_000_000);
    }

    #[test]
    fn sharded_decode_matches_sequential_on_wrapped_buffer() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            buffer_size: 256,
            psb_period_bytes: 24,
            ..TraceConfig::default()
        };
        let (_, mut enc) = simulate(&module, 300, cfg.clone());
        assert!(enc.wrapped());
        let bytes = enc.snapshot();
        assert_all_paths_agree(&module, &index, &cfg, &bytes, 10_000_000);
    }

    #[test]
    fn sharded_decode_matches_sequential_without_timing() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            timing_enabled: false,
            psb_period_bytes: 24,
            ..TraceConfig::default()
        };
        let (_, mut enc) = simulate(&module, 100, cfg.clone());
        let bytes = enc.snapshot();
        assert_all_paths_agree(&module, &index, &cfg, &bytes, 10_000_000);
    }

    #[test]
    fn cyc_before_any_anchor_is_counted_as_dropped() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        // Hand-assemble: PSB, CYC (no anchor yet: dropped), TSC, CYC
        // (anchored: applied).
        let mut enc = crate::packet::PacketEncoder::new();
        let mut bytes = Vec::new();
        for p in [
            Packet::Psb,
            Packet::Cyc { delta: 3 },
            Packet::Tsc { tsc: 1_000 },
            Packet::Cyc { delta: 2 },
        ] {
            enc.encode(&p, &mut bytes);
        }
        let trace = decode_thread_trace(&index, &cfg, &bytes, 10_000).unwrap();
        assert_eq!(trace.cyc_dropped, 1);
        assert_all_paths_agree(&module, &index, &cfg, &bytes, 10_000);
    }

    /// Regression: a duplicated *identical* MTC coarse-counter byte (a
    /// repeated packet after corruption or a PSB splice) used to be
    /// treated as a full 8-bit wrap, advancing virtual time by 256
    /// coarse ticks. It must leave the clock untouched and be counted
    /// in [`DecodedTrace::mtc_dups`] instead.
    #[test]
    fn duplicated_mtc_byte_does_not_advance_time() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let main = module.func_by_name("main").unwrap();
        let entry_pcs: Vec<u64> = main.entry().insts.iter().map(|i| i.pc.0).collect();
        let period = cfg.ctc_period_ns.max(1);
        let t0 = 64 * period; // anchor on a coarse-tick boundary
        let ctc = (t0 / period + 1) as u8; // one legitimate coarse tick
        let stream = |dups: usize| {
            let mut enc = crate::packet::PacketEncoder::new();
            let mut bytes = Vec::new();
            enc.encode(&Packet::Psb, &mut bytes);
            enc.encode(&Packet::Tsc { tsc: t0 }, &mut bytes);
            enc.encode(&Packet::Fup { pc: entry_pcs[0] }, &mut bytes);
            for _ in 0..=dups {
                enc.encode(&Packet::Mtc { ctc }, &mut bytes);
            }
            // Async FUP forces a walk, landing the MTC time in the
            // emitted events' windows.
            enc.encode(&Packet::Fup { pc: entry_pcs[1] }, &mut bytes);
            bytes
        };
        let snapshot_time = t0 + 10 * period;
        let clean = decode_thread_trace(&index, &cfg, &stream(0), snapshot_time).unwrap();
        let duped = decode_thread_trace(&index, &cfg, &stream(2), snapshot_time).unwrap();
        // The duplicates change no event and no window...
        assert_eq!(clean.events, duped.events);
        // ...they are accounted...
        assert_eq!(clean.mtc_dups, 0);
        assert_eq!(duped.mtc_dups, 2);
        // ...and the post-MTC window sits one coarse tick after the
        // anchor, not 256.
        let last = duped.events.last().unwrap();
        assert_eq!(last.time.lo, t0 + period);
        assert!(last.time.lo < t0 + 0x100 * period);
        assert_all_paths_agree(&module, &index, &cfg, &stream(2), snapshot_time);
    }
}

#[cfg(test)]
mod ovf_tests {
    use super::*;
    use crate::packet::PacketEncoder;
    use lazy_ir::{ModuleBuilder, Operand, Type};

    /// An OVF mid-stream desynchronizes the walk until the next PSB
    /// anchor; events before the OVF and after the re-anchor survive.
    #[test]
    fn overflow_resyncs_at_next_psb() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Type::Void);
        let entry = f.entry();
        let a = f.block("a");
        let b = f.block("b");
        f.switch_to(entry);
        let x = f.alloca(Type::I64);
        f.store(x.clone(), Operand::const_int(0), Type::I64);
        let c = f.eq(Operand::const_int(1), Operand::const_int(1));
        f.cond_br(c, a, b);
        f.switch_to(a);
        f.load(x.clone(), Type::I64);
        f.halt();
        f.switch_to(b);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let index = ExecIndex::build(&m);
        let main = m.func_by_name("main").unwrap();
        let entry_pc = main.blocks[0].insts[0].pc.0;
        let a_load = main.blocks[1].insts[0].pc;
        let a_halt = main.blocks[1].insts[1].pc;

        // Hand-assemble: PSB TSC FUP(entry) OVF PSB TSC FUP(a_load)
        // FUP(a_halt as async marker).
        let mut enc = PacketEncoder::new();
        let mut bytes = Vec::new();
        for p in [
            Packet::Psb,
            Packet::Tsc { tsc: 100 },
            Packet::Fup { pc: entry_pc },
            Packet::Ovf,
            Packet::Psb,
            Packet::Tsc { tsc: 500 },
            Packet::Fup { pc: a_load.0 },
            Packet::Fup { pc: a_halt.0 },
        ] {
            enc.encode(&p, &mut bytes);
        }
        let trace = decode_thread_trace(&index, &TraceConfig::default(), &bytes, 1000).unwrap();
        // The post-resync events decode; nothing from before the OVF
        // (no control packet arrived to walk them).
        let pcs: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(pcs, vec![a_load.0, a_halt.0]);
        // Times re-anchored after the OVF.
        assert!(trace.events[0].time.lo >= 500);
        // Sharded decode handles the OVF + re-anchor identically.
        let sharded =
            decode_thread_trace_sharded(&index, &TraceConfig::default(), &bytes, 1000, 4).unwrap();
        assert_eq!(sharded.events, trace.events);
        assert_eq!(sharded.resyncs, trace.resyncs);
    }
}
