//! Trace decoding: packet stream + module CFG → executed instructions
//! with coarse time windows.
//!
//! Decoding mirrors a real Intel PT software decoder (the paper uses
//! Intel's stock decoder, §5): synchronize at a `PSB`, anchor the clock
//! from the following `TSC`, anchor the instruction pointer from the
//! following `FUP`, then *walk the program's control-flow graph*,
//! consuming a TNT bit at each conditional branch and a TIP packet at
//! each indirect transfer or return. Timing packets interleaved with the
//! control packets bound each decoded instruction inside a coarse
//! [`TimeBounds`] window — the partial order of the paper's step 3.
//!
//! # Decode strategies
//!
//! Three entry points produce bit-identical [`DecodedTrace`]s:
//!
//! * [`decode_thread_trace`] — the production path: a **single fused
//!   streaming pass**. Packets are parsed, clocked, and walked one at a
//!   time; no intermediate `Vec<Packet>` or per-packet timestamp vector
//!   is ever materialized.
//! * [`decode_thread_trace_sharded`] — splits the byte stream at `PSB`
//!   boundaries and decodes the shards on worker threads. A `PSB`
//!   resets last-IP compression and (with timing on) is followed by a
//!   full `TSC` re-anchor, so a shard's packet and clock reconstruction
//!   is independent of its predecessors; only the tiny CFG-walk carry
//!   state (current PC + last control time) crosses the boundary, and a
//!   cheap sequential *stitch* recomputes each shard's head region with
//!   the true carried state, validates that the speculative decode
//!   converged, and falls back to sequential decode of a shard when it
//!   did not. See `DESIGN.md` ("Parallel trace decode") for the
//!   soundness argument.
//! * [`decode_thread_trace_legacy`] — the original three-pass decoder
//!   (packet vec → timestamp vec → CFG walk), kept as the differential
//!   baseline for tests and benches.

use crate::config::TraceConfig;
use crate::packet::{Packet, PacketDecoder};
use lazy_ir::{InstKind, Module, Pc};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Sentinel TIP target meaning "execution left traced code" (thread
/// exit). The VM emits it when a thread's entry function returns.
pub const EXIT_TARGET: u64 = 0;

/// A coarse time window `[lo, hi]` (virtual nanoseconds) within which an
/// instruction executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeBounds {
    /// Time of the last timing packet preceding the instruction.
    pub lo: u64,
    /// Time of the first timing packet following it (or the snapshot
    /// time).
    pub hi: u64,
}

impl TimeBounds {
    /// Returns `true` if this window is entirely before `other` — the
    /// "executes before" relation of the paper's Figure 5. Windows that
    /// overlap are *unordered*: the coarse interleaving hypothesis says
    /// target events of real bugs won't overlap.
    pub fn definitely_before(&self, other: &TimeBounds) -> bool {
        self.hi < other.lo
    }

    /// Returns `true` if the two windows overlap (no order recoverable).
    pub fn overlaps(&self, other: &TimeBounds) -> bool {
        !self.definitely_before(other) && !other.definitely_before(self)
    }

    /// Window width in nanoseconds.
    pub fn width(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }
}

/// One executed-instruction record in a decoded trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodedEvent {
    /// The instruction's program counter.
    pub pc: Pc,
    /// The coarse execution-time window.
    pub time: TimeBounds,
}

/// A decoded per-thread trace: executed instructions in program order
/// with coarse time windows.
#[derive(Clone, Debug, Default)]
pub struct DecodedTrace {
    /// Executed instructions, oldest first.
    pub events: Vec<DecodedEvent>,
    /// Number of packet-level resynchronizations performed (nonzero when
    /// the ring buffer wrapped mid-packet or packets were lost).
    pub resyncs: u32,
    /// `CYC` deltas dropped because no time anchor (`TSC`/`MTC`)
    /// preceded them — time information silently lost at the head of a
    /// wrapped buffer or after corruption.
    pub cyc_dropped: u64,
    /// `MTC` packets carrying a coarse byte identical to the current
    /// counter — duplicated packets (corruption, a PSB splice) that a
    /// naive unwrap would misread as a full 8-bit wrap, advancing
    /// virtual time by a spurious 256 ticks. Counted, not applied.
    pub mtc_dups: u64,
}

impl DecodedTrace {
    /// Iterates over the distinct PCs that appear in the trace.
    pub fn executed_pcs(&self) -> impl Iterator<Item = Pc> + '_ {
        let mut seen = std::collections::HashSet::new();
        self.events
            .iter()
            .filter_map(move |e| seen.insert(e.pc).then_some(e.pc))
    }
}

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The snapshot contains no `PSB`; nothing can be decoded.
    NoSync,
    /// The CFG walk and the packet stream disagree (corrupt trace or
    /// wrong module).
    Desync(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::NoSync => write!(f, "no PSB sync point in trace"),
            DecodeError::Desync(msg) => write!(f, "decoder desynchronized: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// How control leaves an instruction, precomputed for the decode walk.
#[derive(Clone, Copy, Debug)]
enum Transfer {
    /// Falls through to `pc + 4`.
    Linear,
    /// Unconditional branch to a block entry.
    Br { target: u64 },
    /// Conditional branch; consumes one TNT bit.
    CondBr { then_pc: u64, else_pc: u64 },
    /// Direct call; target is statically known.
    Call { callee: u64 },
    /// Indirect call; consumes a TIP packet.
    ICall,
    /// Return; consumes a TIP packet (the driver traces returns as
    /// indirect transfers, like PT without RET compression).
    Ret,
    /// Whole-program halt; the walk ends.
    Halt,
    /// A PC-stride slot with no instruction (function-alignment gap).
    Unmapped,
}

/// A precomputed walk table for a module: PC → outgoing transfer.
///
/// Build once per module, reuse across every decode. The table is a
/// **dense** `Vec` indexed by `(pc - TEXT_BASE) / PC_STRIDE` — the walk
/// probes it once per decoded instruction, and a bounds-checked array
/// load beats a `HashMap` probe by an order of magnitude on that path.
/// Function-alignment gaps hold [`Transfer::Unmapped`].
#[derive(Clone, Debug)]
pub struct ExecIndex {
    base: u64,
    steps: Vec<Transfer>,
}

impl ExecIndex {
    /// Builds the walk table for `module`.
    pub fn build(module: &Module) -> ExecIndex {
        let base = Module::TEXT_BASE;
        let slots = (module.max_pc().0.saturating_sub(base) / Module::PC_STRIDE) as usize;
        let mut steps = vec![Transfer::Unmapped; slots];
        for func in module.functions() {
            // Empty blocks have no entry PC; a branch into one resolves
            // to NO_ENTRY, which sits below TEXT_BASE and therefore
            // walks to a clean `Desync` instead of panicking here. A
            // well-formed module never hits this, but `build` must be
            // total over whatever IR reaches it.
            const NO_ENTRY: u64 = 0;
            let entry_pc: HashMap<_, _> = func
                .blocks
                .iter()
                .filter_map(|b| b.insts.first().map(|i| (b.id, i.pc.0)))
                .collect();
            let entry = |id| entry_pc.get(id).copied().unwrap_or(NO_ENTRY);
            for block in &func.blocks {
                for inst in &block.insts {
                    let t = match &inst.kind {
                        InstKind::Br { target } => Transfer::Br {
                            target: entry(target),
                        },
                        InstKind::CondBr {
                            then_bb, else_bb, ..
                        } => Transfer::CondBr {
                            then_pc: entry(then_bb),
                            else_pc: entry(else_bb),
                        },
                        InstKind::Call { callee, .. } => Transfer::Call {
                            callee: module.func(*callee).base_pc.0,
                        },
                        InstKind::CallIndirect { .. } => Transfer::ICall,
                        InstKind::Ret { .. } => Transfer::Ret,
                        InstKind::Halt => Transfer::Halt,
                        _ => Transfer::Linear,
                    };
                    let slot = (inst.pc.0.saturating_sub(base) / Module::PC_STRIDE) as usize;
                    if let Some(s) = steps.get_mut(slot) {
                        *s = t;
                    }
                }
            }
        }
        ExecIndex { base, steps }
    }

    #[inline]
    fn get(&self, pc: u64) -> Option<Transfer> {
        let off = pc.wrapping_sub(self.base);
        if pc < self.base || !off.is_multiple_of(Module::PC_STRIDE) {
            return None;
        }
        match self.steps.get((off / Module::PC_STRIDE) as usize) {
            None | Some(Transfer::Unmapped) => None,
            Some(t) => Some(*t),
        }
    }
}

/// Snapshot of the clock-reconstruction state at a stream position —
/// what a shard needs to reconstruct time exactly as the sequential
/// decoder would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ClockSeed {
    time: Option<u64>,
    ctc_full: u64,
}

impl ClockSeed {
    const INITIAL: ClockSeed = ClockSeed {
        time: None,
        ctc_full: 0,
    };
}

/// Reconstructed clock while scanning the packet stream.
struct Clock {
    time: Option<u64>,
    ctc_full: u64,
    period: u64,
    shift: u32,
    /// `CYC` deltas discarded for want of a preceding anchor.
    cyc_dropped: u64,
    /// `MTC` packets whose coarse byte equaled the current counter — a
    /// duplicated packet (corruption, a PSB splice), not a wrap.
    mtc_dups: u64,
}

impl Clock {
    fn seeded(config: &TraceConfig, seed: ClockSeed) -> Clock {
        Clock {
            time: seed.time,
            ctc_full: seed.ctc_full,
            period: config.ctc_period_ns.max(1),
            shift: config.cyc_shift,
            cyc_dropped: 0,
            mtc_dups: 0,
        }
    }

    fn seed(&self) -> ClockSeed {
        ClockSeed {
            time: self.time,
            ctc_full: self.ctc_full,
        }
    }

    fn apply(&mut self, p: &Packet) {
        match p {
            Packet::Tsc { tsc } => {
                self.time = Some(*tsc);
                self.ctc_full = tsc / self.period;
            }
            Packet::Mtc { ctc } => {
                // Unwrap the 8-bit coarse counter against the last known
                // full counter value. Only a *strictly smaller* coarse
                // byte means the 8-bit counter wrapped; an identical
                // byte is a duplicated packet (after corruption or a
                // PSB splice) and must not advance virtual time by a
                // spurious 256 ticks.
                let base = self.ctc_full & !0xff;
                let mut cand = base | u64::from(*ctc);
                if cand == self.ctc_full {
                    self.mtc_dups += 1;
                    return;
                }
                if cand < self.ctc_full {
                    cand += 0x100;
                }
                self.ctc_full = cand;
                self.time = Some(cand * self.period);
            }
            Packet::Cyc { delta } => {
                if let Some(t) = self.time {
                    self.time = Some(t + (delta << self.shift));
                } else {
                    self.cyc_dropped += 1;
                }
            }
            _ => {}
        }
    }
}

/// The CFG-walk state that flows across packets (and, in sharded
/// decode, across shard boundaries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WalkState {
    /// The walk's current PC (`None` while desynchronized).
    cur: Option<u64>,
    /// Lower bound on the previous control packet's time.
    last_ctrl_lo: Option<u64>,
    /// After a PSB, the next FUP re-anchors rather than being treated
    /// as an async marker.
    expect_anchor: bool,
}

impl WalkState {
    const INITIAL: WalkState = WalkState {
        cur: None,
        last_ctrl_lo: None,
        expect_anchor: true,
    };
}

/// Walks from `cur`, emitting events, until `stop` says to pause; the
/// instruction that satisfies `stop` is emitted (with the tight window)
/// and `cur` stays on it.
fn walk(
    index: &ExecIndex,
    cur: &mut Option<u64>,
    events: &mut Vec<DecodedEvent>,
    stretch: TimeBounds,
    tight: TimeBounds,
    stop: impl Fn(Transfer, u64) -> bool,
) -> Result<Option<Transfer>, DecodeError> {
    let mut fuel = 10_000_000u64;
    while let Some(pc) = *cur {
        let Some(t) = index.get(pc) else {
            if pc == EXIT_TARGET {
                *cur = None;
                return Ok(None);
            }
            return Err(DecodeError::Desync(format!(
                "walked to unmapped pc {pc:#x}"
            )));
        };
        let stopping = stop(t, pc);
        events.push(DecodedEvent {
            pc: Pc(pc),
            time: if stopping { tight } else { stretch },
        });
        if stopping {
            return Ok(Some(t));
        }
        *cur = match t {
            Transfer::Linear | Transfer::ICall | Transfer::Ret => Some(pc + 4),
            Transfer::Br { target } => Some(target),
            Transfer::Call { callee } => Some(callee),
            Transfer::CondBr { .. } => {
                return Err(DecodeError::Desync(format!(
                    "unexpected conditional branch at {pc:#x} without a TNT bit"
                )))
            }
            Transfer::Halt | Transfer::Unmapped => None,
        };
        fuel -= 1;
        if fuel == 0 {
            return Err(DecodeError::Desync("walk did not terminate".into()));
        }
    }
    Ok(None)
}

/// Applies one packet to the walk state, emitting decoded events.
///
/// `time_now` is the reconstructed clock *after* the packet (timing
/// packets change the clock before the walk sees them; control packets
/// leave it untouched).
///
/// Window assignment leans on an encoder invariant: a timing packet is
/// emitted immediately before any control packet once more than one
/// quantum of time has passed, so the reconstructed time at a control
/// packet lags the true time of its transfer by less than one quantum.
/// Events decoded at a control packet therefore executed within
/// `[time of previous control packet, time at this packet + quantum]`;
/// the transfer instruction itself gets the tight window `[time at
/// this packet, time at this packet + quantum]`.
fn step(
    index: &ExecIndex,
    st: &mut WalkState,
    events: &mut Vec<DecodedEvent>,
    p: &Packet,
    time_now: Option<u64>,
    quantum: u64,
    snapshot_time: u64,
) -> Result<(), DecodeError> {
    let hi = time_now
        .map(|t| (t + quantum).min(snapshot_time))
        .unwrap_or(snapshot_time);
    let stretch = TimeBounds {
        lo: st.last_ctrl_lo.unwrap_or(0),
        hi,
    };
    let tight = TimeBounds {
        lo: time_now.unwrap_or(0),
        hi,
    };
    match p {
        Packet::Psb => {
            // A PSB mid-stream (while in sync) is ignorable, exactly
            // as in real PT decode: resetting here would drop the
            // straight-line instructions between the last decision
            // point and the sync anchor. Only an out-of-sync decoder
            // anchors at the PSB's FUP.
            st.expect_anchor = true;
        }
        Packet::Ovf => {
            st.cur = None;
            st.expect_anchor = true;
            st.last_ctrl_lo = None;
        }
        Packet::Tsc { .. } | Packet::Mtc { .. } | Packet::Cyc { .. } => {}
        Packet::Fup { pc } => {
            if st.expect_anchor {
                if st.cur.is_none() {
                    st.cur = Some(*pc);
                    // The thread was at the anchor when the PSB's
                    // TSC was stamped.
                    st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
                }
                st.expect_anchor = false;
            } else if st.cur.is_none() {
                st.cur = Some(*pc);
                st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
            } else {
                // Async FUP (snapshot marker): walk up to and
                // including the marked instruction.
                let target = *pc;
                if st.cur == Some(target) {
                    // Walk would stop immediately; emit the marked
                    // instruction (tightly timed) if it is mapped.
                    if index.get(target).is_some() {
                        events.push(DecodedEvent {
                            pc: Pc(target),
                            time: tight,
                        });
                        // Leave `cur` in place: the marked
                        // instruction is the point of interest.
                    }
                } else {
                    walk(index, &mut st.cur, events, stretch, tight, |_, pc| {
                        pc == target
                    })?;
                }
                st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
            }
        }
        Packet::Tnt { bits, count } => {
            for b in 0..*count {
                if st.cur.is_none() {
                    // Lost sync (e.g. OVF); skip bits until re-anchor.
                    break;
                }
                let t = walk(index, &mut st.cur, events, stretch, tight, |t, _| {
                    matches!(t, Transfer::CondBr { .. })
                })?;
                match t {
                    Some(Transfer::CondBr { then_pc, else_pc }) => {
                        let taken = bits >> b & 1 == 1;
                        st.cur = Some(if taken { then_pc } else { else_pc });
                    }
                    _ => {
                        return Err(DecodeError::Desync(
                            "TNT bit with no conditional branch reachable".into(),
                        ))
                    }
                }
            }
            st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
        }
        Packet::Tip { pc } => {
            if st.cur.is_some() {
                let t = walk(index, &mut st.cur, events, stretch, tight, |t, _| {
                    matches!(t, Transfer::ICall | Transfer::Ret)
                })?;
                if t.is_none() && st.cur.is_some() {
                    return Err(DecodeError::Desync(
                        "TIP with no indirect transfer reachable".into(),
                    ));
                }
            }
            st.cur = if *pc == EXIT_TARGET { None } else { Some(*pc) };
            st.last_ctrl_lo = time_now.or(st.last_ctrl_lo);
        }
    }
    Ok(())
}

/// Decodes one thread's snapshot bytes against the module walk table —
/// the fused single-pass production decoder.
///
/// Packets are parsed, clocked, and walked in one streaming pass; no
/// packet vector is materialized. `snapshot_time` is the virtual TSC at
/// which the snapshot was taken; it upper-bounds the time window of
/// trailing events.
///
/// # Errors
///
/// Returns [`DecodeError::NoSync`] when no `PSB` is present, or
/// [`DecodeError::Desync`] when the packet stream is inconsistent with
/// the module's control flow.
pub fn decode_thread_trace(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    let _span = lazy_obs::span!("decode.stream");
    lazy_obs::counter!("decode.stream_bytes_total", bytes.len());
    let mut pdec = PacketDecoder::new(bytes);
    if !pdec.sync_to_psb() {
        return Err(DecodeError::NoSync);
    }
    let quantum = config.time_quantum_ns();
    let mut clock = Clock::seeded(config, ClockSeed::INITIAL);
    let mut st = WalkState::INITIAL;
    let mut events = Vec::new();
    let mut resyncs = 0u32;
    loop {
        match pdec.next_packet() {
            Ok(Some(p)) => {
                clock.apply(&p);
                step(
                    index,
                    &mut st,
                    &mut events,
                    &p,
                    clock.time,
                    quantum,
                    snapshot_time,
                )?;
            }
            Ok(None) => break,
            Err(_) => {
                resyncs += 1;
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }
    Ok(DecodedTrace {
        events,
        resyncs,
        cyc_dropped: clock.cyc_dropped,
        mtc_dups: clock.mtc_dups,
    })
}

/// The original three-pass decoder (packet vec → per-packet timestamp
/// vec → CFG walk), kept as the differential-testing and benchmark
/// baseline for the fused and sharded paths.
///
/// # Errors
///
/// Same contract as [`decode_thread_trace`].
pub fn decode_thread_trace_legacy(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
) -> Result<DecodedTrace, DecodeError> {
    // Pass 1: parse packets, resynchronizing at the next PSB on error
    // (a wrapped ring snapshot usually starts mid-packet).
    let mut pdec = PacketDecoder::new(bytes);
    let mut resyncs = 0u32;
    if !pdec.sync_to_psb() {
        return Err(DecodeError::NoSync);
    }
    let mut packets = Vec::new();
    loop {
        match pdec.next_packet() {
            Ok(Some(p)) => packets.push(p),
            Ok(None) => break,
            Err(_) => {
                resyncs += 1;
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }

    // Pass 2: reconstruct the last-known time at each packet.
    let mut clock = Clock::seeded(config, ClockSeed::INITIAL);
    let mut prev_time: Vec<Option<u64>> = Vec::with_capacity(packets.len());
    for p in &packets {
        clock.apply(p);
        prev_time.push(clock.time);
    }

    // Pass 3: CFG walk.
    let quantum = config.time_quantum_ns();
    let mut st = WalkState::INITIAL;
    let mut events = Vec::new();
    for (i, p) in packets.iter().enumerate() {
        step(
            index,
            &mut st,
            &mut events,
            p,
            prev_time[i],
            quantum,
            snapshot_time,
        )?;
    }
    Ok(DecodedTrace {
        events,
        resyncs,
        cyc_dropped: clock.cyc_dropped,
        mtc_dups: clock.mtc_dups,
    })
}

/// One `PSB` landing found by the skim pass, with the exact clock state
/// on entry (a `PSB` packet itself never changes the clock).
#[derive(Clone, Copy, Debug)]
struct Boundary {
    offset: usize,
    clock: ClockSeed,
}

/// The skim pass: a lightweight sequential scan that finds every `PSB`
/// the sequential decoder would decode (payload bytes that merely *look*
/// like a `PSB` marker are skipped exactly as the sequential packet
/// trajectory skips them), tracks the reconstructed clock at each, and
/// performs the authoritative resync / dropped-`CYC` accounting.
struct Skim {
    boundaries: Vec<Boundary>,
    resyncs: u32,
    cyc_dropped: u64,
    mtc_dups: u64,
}

fn skim_psb_sections(config: &TraceConfig, bytes: &[u8]) -> Option<Skim> {
    let mut pdec = PacketDecoder::new(bytes);
    if !pdec.sync_to_psb() {
        return None;
    }
    let mut clock = Clock::seeded(config, ClockSeed::INITIAL);
    let mut resyncs = 0u32;
    let mut boundaries = Vec::new();
    loop {
        let at = pdec.position();
        match pdec.next_packet() {
            Ok(Some(p)) => {
                if matches!(p, Packet::Psb) {
                    boundaries.push(Boundary {
                        offset: at,
                        clock: clock.seed(),
                    });
                }
                clock.apply(&p);
            }
            Ok(None) => break,
            Err(_) => {
                resyncs += 1;
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }
    Some(Skim {
        boundaries,
        resyncs,
        cyc_dropped: clock.cyc_dropped,
        mtc_dups: clock.mtc_dups,
    })
}

/// Sequentially decodes `range` (which must start at a packet boundary)
/// with exact seeded clock and walk state. Resync/CYC accounting is the
/// skim's job, not this function's.
fn run_range(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    range: Range<usize>,
    seed: ClockSeed,
    mut st: WalkState,
    snapshot_time: u64,
) -> Result<(Vec<DecodedEvent>, WalkState), DecodeError> {
    let mut pdec = PacketDecoder::new(&bytes[range]);
    let quantum = config.time_quantum_ns();
    let mut clock = Clock::seeded(config, seed);
    let mut events = Vec::new();
    loop {
        match pdec.next_packet() {
            Ok(Some(p)) => {
                clock.apply(&p);
                step(
                    index,
                    &mut st,
                    &mut events,
                    &p,
                    clock.time,
                    quantum,
                    snapshot_time,
                )?;
            }
            Ok(None) => break,
            Err(_) => {
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }
    Ok((events, st))
}

/// The result of speculatively decoding one shard with an unknown
/// carried-in walk state.
struct ShardOutcome {
    /// All events the speculative decode produced.
    events: Vec<DecodedEvent>,
    /// How many of `events` belong to the *head* — emitted before the
    /// walk state provably converged; the stitch recomputes them.
    head_events: usize,
    /// Whether a convergence point was reached.
    converged: bool,
    /// Absolute byte offset just past the packet that established
    /// convergence (shard end when `!converged`).
    converged_at: usize,
    /// Speculative walk state right after the convergence packet; the
    /// stitch accepts the tail only if the true state matches exactly.
    post_head: WalkState,
    /// Walk state at shard end (valid only when `converged`).
    end_state: WalkState,
    /// A walk error hit *after* convergence — authoritative, because
    /// post-convergence decode is exactly what the sequential decoder
    /// would do from the same state.
    tail_error: Option<DecodeError>,
}

/// Speculatively decodes one shard assuming it starts desynchronized
/// (`cur = None`), recording where the walk state stops depending on
/// the unknown carry-in:
///
/// * an `OVF` wipes the walk state — convergence regardless of carry;
/// * a `TNT` leaves the walk at a CFG-determined conditional branch,
///   and a `TIP` sets the current PC from the packet itself — both
///   converge *if* the speculative anchor walked to the same place the
///   true state would have (validated by the stitch).
///
/// Events emitted before convergence (and by the converging packet's
/// own walk) are speculative; the stitch recomputes them from the true
/// carried state. A walk error before convergence simply ends the
/// speculation — the stitch's recompute of the whole region surfaces
/// the authoritative outcome.
fn decode_shard(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    range: Range<usize>,
    seed: ClockSeed,
    snapshot_time: u64,
) -> ShardOutcome {
    let mut pdec = PacketDecoder::new(&bytes[range.clone()]);
    let quantum = config.time_quantum_ns();
    let mut clock = Clock::seeded(config, seed);
    let mut st = WalkState::INITIAL;
    let mut events = Vec::new();
    let mut converged = false;
    let mut head_events = 0usize;
    let mut converged_at = range.end;
    let mut post_head = st;
    let mut tail_error = None;
    loop {
        match pdec.next_packet() {
            Ok(Some(p)) => {
                clock.apply(&p);
                let converging = !converged
                    && matches!(p, Packet::Tnt { .. } | Packet::Tip { .. } | Packet::Ovf);
                match step(
                    index,
                    &mut st,
                    &mut events,
                    &p,
                    clock.time,
                    quantum,
                    snapshot_time,
                ) {
                    Ok(()) => {}
                    Err(e) => {
                        if converged {
                            tail_error = Some(e);
                        }
                        // Pre-convergence errors are speculative; either
                        // way the speculation stops here.
                        break;
                    }
                }
                if converging {
                    converged = true;
                    head_events = events.len();
                    converged_at = range.start + pdec.position();
                    post_head = st;
                }
            }
            Ok(None) => break,
            Err(_) => {
                if !pdec.sync_to_psb() {
                    break;
                }
            }
        }
    }
    if !converged {
        head_events = events.len();
        converged_at = range.end;
        post_head = st;
    }
    ShardOutcome {
        events,
        head_events,
        converged,
        converged_at,
        post_head,
        end_state: st,
        tail_error,
    }
}

/// Decodes one thread's snapshot bytes by sharding the stream at `PSB`
/// boundaries and decoding shards on up to `workers` threads, then
/// stitching. Produces a [`DecodedTrace`] **bit-identical** to
/// [`decode_thread_trace`] (and the legacy decoder) for every input,
/// including corrupt and truncated streams — speculation failures fall
/// back to sequential decode of the affected shard.
///
/// # Errors
///
/// Same contract as [`decode_thread_trace`].
pub fn decode_thread_trace_sharded(
    index: &ExecIndex,
    config: &TraceConfig,
    bytes: &[u8],
    snapshot_time: u64,
    workers: usize,
) -> Result<DecodedTrace, DecodeError> {
    if workers <= 1 {
        return decode_thread_trace(index, config, bytes, snapshot_time);
    }
    let skimmed = {
        let _span = lazy_obs::span!("decode.shard.skim");
        skim_psb_sections(config, bytes)
    };
    let Some(skim) = skimmed else {
        return Err(DecodeError::NoSync);
    };

    // Partition the PSB sections into byte-balanced shards.
    let first = skim.boundaries[0].offset;
    let n = workers.min(skim.boundaries.len());
    let target = (bytes.len() - first).div_ceil(n);
    let mut starts: Vec<usize> = vec![0];
    let mut shard_start = first;
    for (i, b) in skim.boundaries.iter().enumerate().skip(1) {
        if b.offset - shard_start >= target && starts.len() < n {
            starts.push(i);
            shard_start = b.offset;
        }
    }
    let shards: Vec<(Range<usize>, ClockSeed)> = starts
        .iter()
        .enumerate()
        .map(|(k, &bi)| {
            let start = skim.boundaries[bi].offset;
            let end = starts
                .get(k + 1)
                .map_or(bytes.len(), |&bj| skim.boundaries[bj].offset);
            (start..end, skim.boundaries[bi].clock)
        })
        .collect();

    lazy_obs::counter!("decode.shards_total", shards.len());
    let _speculate_span = lazy_obs::span!("decode.shard.speculate");
    let outcomes: Vec<ShardOutcome> = if shards.len() == 1 {
        let (r, seed) = &shards[0];
        vec![decode_shard(
            index,
            config,
            bytes,
            r.clone(),
            *seed,
            snapshot_time,
        )]
    } else {
        // Speculative shard decode runs inside catch_unwind: a panic in
        // one worker must not take down the caller. The parallel path
        // is an optimization over the fused sequential decoder, so on
        // any shard panic we discard all speculation and fall back to
        // the sequential path — same result, just slower.
        let caught: Option<Vec<ShardOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|(r, seed)| {
                    let (r, seed) = (r.clone(), *seed);
                    scope.spawn(move || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            decode_shard(index, config, bytes, r, seed, snapshot_time)
                        }))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(Ok(out)) => Some(out),
                    _ => None,
                })
                .collect()
        });
        match caught {
            Some(outs) => outs,
            None => return decode_thread_trace(index, config, bytes, snapshot_time),
        }
    };

    drop(_speculate_span);
    // Stitch: recompute each shard's head with the true carried state,
    // validate convergence, splice the speculative tail (or redecode
    // the shard sequentially when speculation failed).
    let _stitch_span = lazy_obs::span!("decode.shard.stitch");
    let mut events: Vec<DecodedEvent> = Vec::new();
    let mut carry = WalkState::INITIAL;
    for ((range, seed), out) in shards.iter().zip(outcomes) {
        let (head, head_end) = run_range(
            index,
            config,
            bytes,
            range.start..out.converged_at,
            *seed,
            carry,
            snapshot_time,
        )?;
        if !out.converged {
            // The "head" was the entire shard; the recompute above is
            // its authoritative sequential decode.
            events.extend(head);
            carry = head_end;
            continue;
        }
        if head_end == out.post_head {
            events.extend(head);
            events.extend_from_slice(&out.events[out.head_events..]);
            if let Some(e) = out.tail_error {
                return Err(e);
            }
            carry = out.end_state;
        } else {
            // Speculation diverged (e.g. an async FUP whose target sat
            // inside the carried straight-line stretch): redecode the
            // whole shard from the true state.
            let (all, end) = run_range(
                index,
                config,
                bytes,
                range.clone(),
                *seed,
                carry,
                snapshot_time,
            )?;
            events.extend(all);
            carry = end;
        }
    }
    Ok(DecodedTrace {
        events,
        resyncs: skim.resyncs,
        cyc_dropped: skim.cyc_dropped,
        mtc_dups: skim.mtc_dups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use lazy_ir::{ModuleBuilder, Operand, Type};

    /// Builds a module with a loop and a call, plus a tiny callee.
    ///
    /// main: entry -> loop(cond) -> body(call leaf) -> loop -> exit(halt)
    fn looped_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let leaf = mb.declare("leaf", vec![], Type::Void);
        let mut lf = mb.define(leaf);
        let e = lf.entry();
        lf.switch_to(e);
        lf.copy(Operand::const_int(7));
        lf.ret(None);
        lf.finish();

        let mut f = mb.function("main", vec![], Type::Void);
        let entry = f.entry();
        let head = f.block("head");
        let body = f.block("body");
        let exit = f.block("exit");
        f.switch_to(entry);
        let n = f.alloca(Type::I64);
        f.store(n.clone(), Operand::const_int(0), Type::I64);
        f.br(head);
        f.switch_to(head);
        let v = f.load(n.clone(), Type::I64);
        let c = f.lt(v.clone(), Operand::const_int(3));
        f.cond_br(c, body, exit);
        f.switch_to(body);
        f.call(leaf, vec![]);
        let v2 = f.load(n.clone(), Type::I64);
        let v3 = f.add(v2, Operand::const_int(1));
        f.store(n, v3, Type::I64);
        f.br(head);
        f.switch_to(exit);
        f.halt();
        f.finish();
        mb.finish().unwrap()
    }

    /// Simulates execution of `looped_module` for `iters` loop
    /// iterations, feeding the encoder exactly as the VM would, and
    /// returns (expected executed PCs, encoder).
    fn simulate(module: &Module, iters: u64, cfg: TraceConfig) -> (Vec<u64>, Encoder) {
        let main = module.func_by_name("main").unwrap();
        let leaf = module.func_by_name("leaf").unwrap();
        let blocks = &main.blocks;
        let pcs = |bi: usize| blocks[bi].insts.iter().map(|i| i.pc.0).collect::<Vec<_>>();
        let entry = pcs(0);
        let head = pcs(1);
        let body = pcs(2);
        let exit = pcs(3);
        let leaf_pcs: Vec<u64> = leaf.entry().insts.iter().map(|i| i.pc.0).collect();

        let mut enc = Encoder::new(cfg);
        let mut t = 1_000u64;
        let mut expected = Vec::new();
        enc.start(entry[0], t);
        let step = |pcs: &[u64], expected: &mut Vec<u64>, t: &mut u64| {
            for &pc in pcs {
                expected.push(pc);
                *t += 10;
            }
        };
        step(&entry, &mut expected, &mut t);
        for i in 0..=iters {
            step(&head, &mut expected, &mut t);
            // head ends with cond_br; taken while i < iters.
            let taken = i < iters;
            enc.branch(head[head.len() - 1], taken, t);
            if !taken {
                break;
            }
            // body: call leaf (direct, no packet), leaf runs, returns
            // (TIP back to after the call).
            expected.push(body[0]); // The call instruction.
            t += 10;
            step(&leaf_pcs, &mut expected, &mut t);
            // leaf's ret produces a TIP to the instruction after call.
            enc.indirect(leaf_pcs[leaf_pcs.len() - 1], body[1], t);
            step(&body[1..], &mut expected, &mut t);
        }
        // The run ends with a snapshot at the halt instruction: the
        // driver emits an async FUP there, which lets the decoder walk
        // the final straight-line stretch.
        step(&exit, &mut expected, &mut t);
        enc.async_fup(exit[exit.len() - 1], t);
        (expected, enc)
    }

    #[test]
    fn decode_reconstructs_exact_instruction_sequence() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let (expected, mut enc) = simulate(&module, 3, cfg.clone());
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 1_000_000).unwrap();
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(got, expected);
        assert_eq!(trace.resyncs, 0);
    }

    #[test]
    fn decode_without_timing_still_reconstructs_control_flow() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            timing_enabled: false,
            ..TraceConfig::default()
        };
        let (expected, mut enc) = simulate(&module, 2, cfg.clone());
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 1_000_000).unwrap();
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(got, expected);
        // With no timing packets every window spans the whole trace:
        // nothing is ordered.
        for w in trace.events.windows(2) {
            assert!(w[0].time.overlaps(&w[1].time));
        }
    }

    #[test]
    fn time_windows_are_monotonic_and_bounded() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            ctc_period_ns: 64,
            cyc_shift: 4,
            ..TraceConfig::default()
        };
        let (_, mut enc) = simulate(&module, 3, cfg.clone());
        let bytes = enc.snapshot();
        let snapshot_time = 1_000_000;
        let trace = decode_thread_trace(&index, &cfg, &bytes, snapshot_time).unwrap();
        let mut last_lo = 0;
        for e in &trace.events {
            assert!(e.time.lo <= e.time.hi, "lo>{:?}", e.time);
            assert!(e.time.hi <= snapshot_time);
            assert!(e.time.lo >= last_lo, "windows went backwards");
            last_lo = e.time.lo;
        }
        // With fine timing, early and late events must be ordered.
        let first = trace.events.first().unwrap();
        let last = trace.events.last().unwrap();
        assert!(first.time.definitely_before(&last.time));
    }

    #[test]
    fn wrapped_buffer_resyncs_and_decodes_suffix() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        // Tiny buffer to force wrapping.
        let cfg = TraceConfig {
            buffer_size: 96,
            psb_period_bytes: 24,
            ..TraceConfig::default()
        };
        let (expected, mut enc) = simulate(&module, 40, cfg.clone());
        assert!(enc.wrapped());
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 10_000_000).unwrap();
        // The decoded events must be a suffix-aligned subsequence of the
        // expected execution: specifically the decoded PC sequence must
        // appear as a contiguous run ending at the end of `expected`.
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert!(!got.is_empty());
        let tail = &expected[expected.len() - got.len()..];
        assert_eq!(got, tail, "decoded suffix disagrees with execution");
    }

    #[test]
    fn no_psb_is_an_error() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let err = decode_thread_trace(&index, &cfg, &[0x40, 0x01], 10).unwrap_err();
        assert_eq!(err, DecodeError::NoSync);
        let err = decode_thread_trace_sharded(&index, &cfg, &[0x40, 0x01], 10, 4).unwrap_err();
        assert_eq!(err, DecodeError::NoSync);
    }

    #[test]
    fn async_fup_walks_to_failure_point() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let main = module.func_by_name("main").unwrap();
        let entry_pcs: Vec<u64> = main.entry().insts.iter().map(|i| i.pc.0).collect();
        let mut enc = Encoder::new(cfg.clone());
        enc.start(entry_pcs[0], 100);
        // "Crash" at the second instruction of entry: emit async FUP.
        enc.async_fup(entry_pcs[1], 250);
        let bytes = enc.snapshot();
        let trace = decode_thread_trace(&index, &cfg, &bytes, 300).unwrap();
        let got: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(got, vec![entry_pcs[0], entry_pcs[1]]);
    }

    #[test]
    fn exec_index_covers_every_instruction() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        for f in module.functions() {
            for inst in f.insts() {
                assert!(index.get(inst.pc.0).is_some(), "missing {:?}", inst.pc);
            }
        }
    }

    #[test]
    fn exec_index_rejects_gaps_and_unaligned_pcs() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        // Below the text base, above the last instruction, unaligned.
        assert!(index.get(0).is_none());
        assert!(index.get(Module::TEXT_BASE - 4).is_none());
        assert!(index.get(module.max_pc().0 + 4096).is_none());
        assert!(index.get(Module::TEXT_BASE + 1).is_none());
        // Function-alignment gap: the leaf function is padded to 64
        // bytes; the slot right after its last instruction is a gap.
        let leaf = module.func_by_name("leaf").unwrap();
        let last = leaf.insts().last().unwrap().pc.0;
        let next_base = module.func_by_name("main").unwrap().base_pc.0;
        if last + Module::PC_STRIDE < next_base {
            assert!(index.get(last + Module::PC_STRIDE).is_none());
        }
    }

    /// Asserts all three decoders agree exactly on `bytes`.
    fn assert_all_paths_agree(
        index: &ExecIndex,
        cfg: &TraceConfig,
        bytes: &[u8],
        snapshot_time: u64,
    ) {
        let legacy = decode_thread_trace_legacy(index, cfg, bytes, snapshot_time);
        let fused = decode_thread_trace(index, cfg, bytes, snapshot_time);
        match (&legacy, &fused) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.events, b.events, "fused events diverged");
                assert_eq!(a.resyncs, b.resyncs);
                assert_eq!(a.cyc_dropped, b.cyc_dropped);
                assert_eq!(a.mtc_dups, b.mtc_dups);
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            _ => panic!("fused/legacy disagree on success: {legacy:?} vs {fused:?}"),
        }
        for workers in [2, 3, 5, 16] {
            let sharded = decode_thread_trace_sharded(index, cfg, bytes, snapshot_time, workers);
            match (&legacy, &sharded) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.events, b.events, "sharded({workers}) events diverged");
                    assert_eq!(a.resyncs, b.resyncs, "sharded({workers}) resyncs");
                    assert_eq!(a.cyc_dropped, b.cyc_dropped, "sharded({workers}) cyc");
                    assert_eq!(a.mtc_dups, b.mtc_dups, "sharded({workers}) mtc dups");
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("sharded({workers}) disagree: {legacy:?} vs {sharded:?}"),
            }
        }
    }

    #[test]
    fn sharded_decode_matches_sequential_on_long_stream() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        // Small PSB period: many shard boundaries.
        let cfg = TraceConfig {
            psb_period_bytes: 32,
            buffer_size: 1 << 20,
            ..TraceConfig::default()
        };
        let (_, mut enc) = simulate(&module, 200, cfg.clone());
        let bytes = enc.snapshot();
        assert_all_paths_agree(&index, &cfg, &bytes, 10_000_000);
    }

    #[test]
    fn sharded_decode_matches_sequential_on_wrapped_buffer() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            buffer_size: 256,
            psb_period_bytes: 24,
            ..TraceConfig::default()
        };
        let (_, mut enc) = simulate(&module, 300, cfg.clone());
        assert!(enc.wrapped());
        let bytes = enc.snapshot();
        assert_all_paths_agree(&index, &cfg, &bytes, 10_000_000);
    }

    #[test]
    fn sharded_decode_matches_sequential_without_timing() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig {
            timing_enabled: false,
            psb_period_bytes: 24,
            ..TraceConfig::default()
        };
        let (_, mut enc) = simulate(&module, 100, cfg.clone());
        let bytes = enc.snapshot();
        assert_all_paths_agree(&index, &cfg, &bytes, 10_000_000);
    }

    #[test]
    fn cyc_before_any_anchor_is_counted_as_dropped() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        // Hand-assemble: PSB, CYC (no anchor yet: dropped), TSC, CYC
        // (anchored: applied).
        let mut enc = crate::packet::PacketEncoder::new();
        let mut bytes = Vec::new();
        for p in [
            Packet::Psb,
            Packet::Cyc { delta: 3 },
            Packet::Tsc { tsc: 1_000 },
            Packet::Cyc { delta: 2 },
        ] {
            enc.encode(&p, &mut bytes);
        }
        let trace = decode_thread_trace(&index, &cfg, &bytes, 10_000).unwrap();
        assert_eq!(trace.cyc_dropped, 1);
        assert_all_paths_agree(&index, &cfg, &bytes, 10_000);
    }

    /// Regression: a duplicated *identical* MTC coarse-counter byte (a
    /// repeated packet after corruption or a PSB splice) used to be
    /// treated as a full 8-bit wrap, advancing virtual time by 256
    /// coarse ticks. It must leave the clock untouched and be counted
    /// in [`DecodedTrace::mtc_dups`] instead.
    #[test]
    fn duplicated_mtc_byte_does_not_advance_time() {
        let module = looped_module();
        let index = ExecIndex::build(&module);
        let cfg = TraceConfig::default();
        let main = module.func_by_name("main").unwrap();
        let entry_pcs: Vec<u64> = main.entry().insts.iter().map(|i| i.pc.0).collect();
        let period = cfg.ctc_period_ns.max(1);
        let t0 = 64 * period; // anchor on a coarse-tick boundary
        let ctc = (t0 / period + 1) as u8; // one legitimate coarse tick
        let stream = |dups: usize| {
            let mut enc = crate::packet::PacketEncoder::new();
            let mut bytes = Vec::new();
            enc.encode(&Packet::Psb, &mut bytes);
            enc.encode(&Packet::Tsc { tsc: t0 }, &mut bytes);
            enc.encode(&Packet::Fup { pc: entry_pcs[0] }, &mut bytes);
            for _ in 0..=dups {
                enc.encode(&Packet::Mtc { ctc }, &mut bytes);
            }
            // Async FUP forces a walk, landing the MTC time in the
            // emitted events' windows.
            enc.encode(&Packet::Fup { pc: entry_pcs[1] }, &mut bytes);
            bytes
        };
        let snapshot_time = t0 + 10 * period;
        let clean = decode_thread_trace(&index, &cfg, &stream(0), snapshot_time).unwrap();
        let duped = decode_thread_trace(&index, &cfg, &stream(2), snapshot_time).unwrap();
        // The duplicates change no event and no window...
        assert_eq!(clean.events, duped.events);
        // ...they are accounted...
        assert_eq!(clean.mtc_dups, 0);
        assert_eq!(duped.mtc_dups, 2);
        // ...and the post-MTC window sits one coarse tick after the
        // anchor, not 256.
        let last = duped.events.last().unwrap();
        assert_eq!(last.time.lo, t0 + period);
        assert!(last.time.lo < t0 + 0x100 * period);
        assert_all_paths_agree(&index, &cfg, &stream(2), snapshot_time);
    }
}

#[cfg(test)]
mod ovf_tests {
    use super::*;
    use crate::packet::PacketEncoder;
    use lazy_ir::{ModuleBuilder, Operand, Type};

    /// An OVF mid-stream desynchronizes the walk until the next PSB
    /// anchor; events before the OVF and after the re-anchor survive.
    #[test]
    fn overflow_resyncs_at_next_psb() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Type::Void);
        let entry = f.entry();
        let a = f.block("a");
        let b = f.block("b");
        f.switch_to(entry);
        let x = f.alloca(Type::I64);
        f.store(x.clone(), Operand::const_int(0), Type::I64);
        let c = f.eq(Operand::const_int(1), Operand::const_int(1));
        f.cond_br(c, a, b);
        f.switch_to(a);
        f.load(x.clone(), Type::I64);
        f.halt();
        f.switch_to(b);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let index = ExecIndex::build(&m);
        let main = m.func_by_name("main").unwrap();
        let entry_pc = main.blocks[0].insts[0].pc.0;
        let a_load = main.blocks[1].insts[0].pc;
        let a_halt = main.blocks[1].insts[1].pc;

        // Hand-assemble: PSB TSC FUP(entry) OVF PSB TSC FUP(a_load)
        // FUP(a_halt as async marker).
        let mut enc = PacketEncoder::new();
        let mut bytes = Vec::new();
        for p in [
            Packet::Psb,
            Packet::Tsc { tsc: 100 },
            Packet::Fup { pc: entry_pc },
            Packet::Ovf,
            Packet::Psb,
            Packet::Tsc { tsc: 500 },
            Packet::Fup { pc: a_load.0 },
            Packet::Fup { pc: a_halt.0 },
        ] {
            enc.encode(&p, &mut bytes);
        }
        let trace = decode_thread_trace(&index, &TraceConfig::default(), &bytes, 1000).unwrap();
        // The post-resync events decode; nothing from before the OVF
        // (no control packet arrived to walk them).
        let pcs: Vec<u64> = trace.events.iter().map(|e| e.pc.0).collect();
        assert_eq!(pcs, vec![a_load.0, a_halt.0]);
        // Times re-anchored after the OVF.
        assert!(trace.events[0].time.lo >= 500);
        // Sharded decode handles the OVF + re-anchor identically.
        let sharded =
            decode_thread_trace_sharded(&index, &TraceConfig::default(), &bytes, 1000, 4).unwrap();
        assert_eq!(sharded.events, trace.events);
        assert_eq!(sharded.resyncs, trace.resyncs);
    }
}
