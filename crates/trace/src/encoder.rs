//! The per-thread trace encoder.
//!
//! The execution substrate feeds the encoder with control-flow events
//! (conditional-branch outcomes, indirect targets, returns) and the
//! current virtual TSC. The encoder packs branch outcomes into TNT
//! packets, compresses indirect targets against the last IP, injects
//! timing packets (MTC on coarse-counter boundaries, CYC deltas before
//! control packets, full TSC re-anchors after PSB or long gaps), and
//! writes everything into the thread's ring buffer.
//!
//! Timing packets are emitted at the highest frequency the protocol
//! allows, as the paper configures its driver (§5): a CYC before every
//! control packet when any quantized time has passed, and an MTC whenever
//! the coarse counter ticks.

use crate::config::TraceConfig;
use crate::packet::{Packet, PacketEncoder};
use crate::ring::RingBuffer;
use crate::stats::TraceStats;

/// Encodes one thread's control-flow trace into a ring buffer.
#[derive(Clone, Debug)]
pub struct Encoder {
    config: TraceConfig,
    ring: RingBuffer,
    penc: PacketEncoder,
    /// Pending TNT bits (bit `i` = `i`-th oldest outcome).
    tnt_bits: u8,
    tnt_count: u8,
    /// Coarse-counter value at the last MTC/TSC emission.
    last_ctc: u64,
    /// Reconstructed "decoder view" of the last emitted timing value, in
    /// ns. CYC deltas are computed against this (not against the exact
    /// TSC) so encoder and decoder reconstructions cannot drift apart.
    last_timing_ns: u64,
    /// Payload bytes since the last PSB.
    bytes_since_psb: usize,
    /// Whether `start` has been called.
    started: bool,
    /// Spilled ("persisted") trace bytes when spill mode is on.
    spill: Vec<u8>,
    /// Number of buffer flushes to storage performed.
    spill_flushes: u64,
    stats: TraceStats,
}

impl Encoder {
    /// Creates an encoder with its ring buffer.
    pub fn new(config: TraceConfig) -> Encoder {
        let ring = RingBuffer::new(config.buffer_size);
        Encoder {
            config,
            ring,
            penc: PacketEncoder::new(),
            tnt_bits: 0,
            tnt_count: 0,
            last_ctc: 0,
            last_timing_ns: 0,
            bytes_since_psb: 0,
            started: false,
            spill: Vec::new(),
            spill_flushes: 0,
            stats: TraceStats::default(),
        }
    }

    /// Running statistics (packet and event counts, bytes written).
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Total bytes written over the encoder's lifetime (monotonic even
    /// across spill-mode buffer resets); the execution substrate uses
    /// the delta between calls to charge the modelled hardware tracing
    /// cost.
    pub fn total_bytes(&self) -> u64 {
        self.stats.bytes
    }

    fn write(&mut self, packet: &Packet) {
        let mut buf = Vec::with_capacity(12);
        let n = self.penc.encode(packet, &mut buf);
        if self.config.spill_to_storage && self.ring.used() + n > self.ring.capacity() {
            // The buffer is about to overwrite: drain it to storage
            // first (§7's full-trace mode).
            self.spill.extend_from_slice(&self.ring.snapshot());
            self.ring.clear();
            self.spill_flushes += 1;
        }
        self.ring.write(&buf);
        self.bytes_since_psb += n;
        self.stats.bytes += n as u64;
        if packet.is_timing() {
            self.stats.timing_packets += 1;
            self.stats.timing_bytes += n as u64;
        } else if packet.is_control() {
            self.stats.control_packets += 1;
        } else {
            self.stats.sync_packets += 1;
        }
    }

    fn flush_tnt(&mut self) {
        if self.tnt_count > 0 {
            let p = Packet::Tnt {
                bits: self.tnt_bits,
                count: self.tnt_count,
            };
            self.tnt_bits = 0;
            self.tnt_count = 0;
            self.write(&p);
        }
    }

    /// Emits a PSB sync sequence: PSB + TSC + FUP(current pc).
    fn emit_psb(&mut self, pc: u64, tsc: u64) {
        self.flush_tnt();
        self.write(&Packet::Psb);
        if self.config.timing_enabled {
            self.write(&Packet::Tsc { tsc });
            self.last_timing_ns = tsc;
            self.last_ctc = tsc / self.config.ctc_period_ns;
        }
        self.write(&Packet::Fup { pc });
        self.bytes_since_psb = 0;
    }

    fn maybe_psb(&mut self, pc: u64, tsc: u64) {
        if self.bytes_since_psb >= self.config.psb_period_bytes {
            self.emit_psb(pc, tsc);
        }
    }

    /// Emits timing packets needed to bring the decoder's clock close to
    /// `tsc`. Called before control packets and on explicit ticks.
    fn emit_timing(&mut self, tsc: u64) {
        if !self.config.timing_enabled {
            return;
        }
        let ctc = tsc / self.config.ctc_period_ns;
        if ctc != self.last_ctc {
            self.flush_tnt();
            // A wrap-ambiguous gap gets a full TSC re-anchor; a small gap
            // gets a compact MTC.
            if ctc - self.last_ctc >= 128 {
                self.write(&Packet::Tsc { tsc });
                self.last_timing_ns = tsc;
            } else {
                self.write(&Packet::Mtc {
                    ctc: (ctc & 0xff) as u8,
                });
                self.last_timing_ns = ctc * self.config.ctc_period_ns;
            }
            self.last_ctc = ctc;
        } else if tsc > self.last_timing_ns {
            let delta = (tsc - self.last_timing_ns) >> self.config.cyc_shift;
            if delta > 0 {
                self.flush_tnt();
                self.write(&Packet::Cyc { delta });
                self.last_timing_ns += delta << self.config.cyc_shift;
            }
        }
    }

    /// Starts the trace: PSB + TSC + FUP at the thread's first PC.
    pub fn start(&mut self, pc: u64, tsc: u64) {
        self.emit_psb(pc, tsc);
        self.started = true;
    }

    /// Returns `true` once `start` has been called.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Records a conditional-branch outcome at `pc`.
    pub fn branch(&mut self, pc: u64, taken: bool, tsc: u64) {
        self.maybe_psb(pc, tsc);
        self.emit_timing(tsc);
        if taken {
            self.tnt_bits |= 1 << self.tnt_count;
        }
        self.tnt_count += 1;
        self.stats.control_events += 1;
        if self.tnt_count == 6 {
            self.flush_tnt();
        }
    }

    /// Records an indirect control transfer (indirect call or return)
    /// landing at `target`; `pc` is the transferring instruction.
    pub fn indirect(&mut self, pc: u64, target: u64, tsc: u64) {
        self.maybe_psb(pc, tsc);
        self.emit_timing(tsc);
        self.flush_tnt();
        self.stats.control_events += 1;
        self.write(&Packet::Tip { pc: target });
    }

    /// Advances the timing stream without a control event (the VM calls
    /// this as virtual time passes, e.g. across simulated I/O).
    pub fn tick(&mut self, tsc: u64) {
        self.emit_timing(tsc);
    }

    /// Records an asynchronous flow update at `pc` (emitted when a
    /// snapshot is taken, so the decoder can walk precisely to the
    /// triggering instruction).
    pub fn async_fup(&mut self, pc: u64, tsc: u64) {
        self.emit_timing(tsc);
        self.flush_tnt();
        self.write(&Packet::Fup { pc });
    }

    /// Flushes pending state and returns the retained trace bytes: the
    /// ring contents, prefixed by the spilled history when spill mode
    /// is on (the full execution trace).
    pub fn snapshot(&mut self) -> Vec<u8> {
        self.flush_tnt();
        if self.spill.is_empty() {
            self.ring.snapshot()
        } else {
            let mut out = self.spill.clone();
            out.extend_from_slice(&self.ring.snapshot());
            out
        }
    }

    /// Buffer flushes to storage performed so far (spill mode).
    pub fn spill_flushes(&self) -> u64 {
        self.spill_flushes
    }

    /// Returns `true` if the ring buffer has overwritten old data.
    pub fn wrapped(&self) -> bool {
        self.ring.wrapped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketDecoder;

    fn decode_all(bytes: &[u8]) -> Vec<Packet> {
        let mut dec = PacketDecoder::new(bytes);
        assert!(dec.sync_to_psb());
        let mut out = Vec::new();
        while let Some(p) = dec.next_packet().unwrap() {
            out.push(p);
        }
        out
    }

    #[test]
    fn start_emits_sync_sequence() {
        let mut e = Encoder::new(TraceConfig::default());
        e.start(0x40_0000, 1_000_000);
        let pk = decode_all(&e.snapshot());
        assert_eq!(pk[0], Packet::Psb);
        assert_eq!(pk[1], Packet::Tsc { tsc: 1_000_000 });
        assert_eq!(pk[2], Packet::Fup { pc: 0x40_0000 });
    }

    #[test]
    fn six_branches_pack_into_one_tnt() {
        let mut e = Encoder::new(TraceConfig::default());
        e.start(0x40_0000, 0);
        for i in 0..6 {
            e.branch(0x40_0000 + i * 4, i % 2 == 0, 10);
        }
        let pk = decode_all(&e.snapshot());
        let tnts: Vec<&Packet> = pk
            .iter()
            .filter(|p| matches!(p, Packet::Tnt { .. }))
            .collect();
        assert_eq!(tnts.len(), 1);
        assert_eq!(
            *tnts[0],
            Packet::Tnt {
                bits: 0b010101,
                count: 6
            }
        );
    }

    #[test]
    fn partial_tnt_flushes_on_snapshot() {
        let mut e = Encoder::new(TraceConfig::default());
        e.start(0x40_0000, 0);
        e.branch(0x40_0004, true, 10);
        e.branch(0x40_0008, true, 20);
        let pk = decode_all(&e.snapshot());
        assert!(pk.contains(&Packet::Tnt {
            bits: 0b11,
            count: 2
        }));
    }

    #[test]
    fn mtc_emitted_on_coarse_boundary() {
        let cfg = TraceConfig {
            ctc_period_ns: 1000,
            ..TraceConfig::default()
        };
        let mut e = Encoder::new(cfg);
        e.start(0x40_0000, 0);
        e.branch(0x40_0004, true, 500); // Same period: CYC at most.
        e.branch(0x40_0008, true, 1500); // Crosses boundary: MTC.
        let pk = decode_all(&e.snapshot());
        assert!(
            pk.iter().any(|p| matches!(p, Packet::Mtc { ctc: 1 })),
            "{pk:?}"
        );
    }

    #[test]
    fn long_gap_reanchors_with_tsc() {
        let cfg = TraceConfig {
            ctc_period_ns: 1000,
            ..TraceConfig::default()
        };
        let mut e = Encoder::new(cfg);
        e.start(0x40_0000, 0);
        e.tick(10_000_000); // 10 ms later: >=128 periods.
        let pk = decode_all(&e.snapshot());
        assert!(
            pk.iter()
                .any(|p| matches!(p, Packet::Tsc { tsc: 10_000_000 })),
            "{pk:?}"
        );
    }

    #[test]
    fn cyc_quantizes_small_deltas() {
        let cfg = TraceConfig {
            cyc_shift: 8,
            ctc_period_ns: 1 << 30,
            ..TraceConfig::default()
        };
        let mut e = Encoder::new(cfg);
        e.start(0x40_0000, 0);
        e.branch(0x40_0004, true, 100); // < 256 ns: no CYC yet.
        e.branch(0x40_0008, true, 600); // 600 ns: CYC delta = 2 (512 ns).
        let pk = decode_all(&e.snapshot());
        assert!(
            pk.iter().any(|p| matches!(p, Packet::Cyc { delta: 2 })),
            "{pk:?}"
        );
    }

    #[test]
    fn timing_disabled_emits_no_timing_packets() {
        let cfg = TraceConfig {
            timing_enabled: false,
            ..TraceConfig::default()
        };
        let mut e = Encoder::new(cfg);
        e.start(0x40_0000, 0);
        e.branch(0x40_0004, true, 123_456);
        e.tick(999_999_999);
        let pk = decode_all(&e.snapshot());
        assert!(pk.iter().all(|p| !p.is_timing()), "{pk:?}");
        assert_eq!(e.stats().timing_packets, 0);
    }

    #[test]
    fn psb_reinserted_after_period() {
        let cfg = TraceConfig {
            psb_period_bytes: 32,
            ..TraceConfig::default()
        };
        let mut e = Encoder::new(cfg);
        e.start(0x40_0000, 0);
        for i in 0..200u64 {
            e.indirect(0x40_0000 + i * 4, 0x41_0000 + (i % 7) * 64, i * 10);
        }
        let pk = decode_all(&e.snapshot());
        let psbs = pk.iter().filter(|p| matches!(p, Packet::Psb)).count();
        assert!(psbs >= 2, "expected multiple PSBs, got {psbs}");
    }

    #[test]
    fn stats_count_events_and_packets() {
        let mut e = Encoder::new(TraceConfig::default());
        e.start(0x40_0000, 0);
        for i in 0..10 {
            e.branch(0x40_0004, i % 2 == 0, (i as u64) * 1000);
        }
        e.indirect(0x40_0030, 0x40_0100, 11_000);
        assert_eq!(e.stats().control_events, 11);
        assert!(e.stats().control_packets >= 2);
        assert!(e.stats().bytes > 0);
    }
}

#[cfg(test)]
mod spill_tests {
    use super::*;
    use crate::packet::PacketDecoder;

    #[test]
    fn spill_mode_retains_the_full_trace() {
        let cfg = TraceConfig {
            buffer_size: 64,
            spill_to_storage: true,
            psb_period_bytes: 24,
            ..TraceConfig::default()
        };
        let mut spilling = Encoder::new(cfg.clone());
        let mut ring_only = Encoder::new(TraceConfig {
            spill_to_storage: false,
            buffer_size: 64,
            psb_period_bytes: 24,
            ..TraceConfig::default()
        });
        spilling.start(0x40_0000, 0);
        ring_only.start(0x40_0000, 0);
        for i in 0..200u64 {
            spilling.indirect(0x40_0000 + i * 4, 0x41_0000 + (i % 5) * 64, i * 50);
            ring_only.indirect(0x40_0000 + i * 4, 0x41_0000 + (i % 5) * 64, i * 50);
        }
        assert!(spilling.spill_flushes() > 0);
        assert_eq!(ring_only.spill_flushes(), 0);
        let full = spilling.snapshot();
        let windowed = ring_only.snapshot();
        // The spilled trace holds the entire history; the ring only a
        // suffix window.
        assert!(
            full.len() > windowed.len() * 2,
            "{} vs {}",
            full.len(),
            windowed.len()
        );
        // And it decodes from the very first packet: PSB TSC FUP anchor
        // at the start PC.
        let mut dec = PacketDecoder::new(&full);
        assert!(dec.sync_to_psb());
        assert_eq!(dec.position(), 0, "no truncated head in spill mode");
        assert_eq!(dec.next_packet().unwrap(), Some(Packet::Psb));
        assert_eq!(dec.next_packet().unwrap(), Some(Packet::Tsc { tsc: 0 }));
        assert_eq!(
            dec.next_packet().unwrap(),
            Some(Packet::Fup { pc: 0x40_0000 })
        );
    }
}
