//! The packet protocol: byte-level encoding and decoding.
//!
//! The wire format deliberately mirrors Intel PT's structure (leading
//! opcode byte, two-byte extended opcodes behind `0x02`, packed TNT
//! payloads, last-IP compression for target packets) without copying its
//! exact bit layouts. What matters for the reproduction is the
//! *information content* and the *cost structure*: control packets are a
//! couple of bytes, timing packets are small but frequent, and indirect
//! targets compress against the previously emitted IP.
//!
//! | Packet | Encoding | Meaning |
//! |--------|----------|---------|
//! | `PSB`  | `02 82`  | Stream sync point |
//! | `OVF`  | `02 F3`  | Internal buffer overflow; decode resumes at next `PSB` |
//! | `TNT`  | `40|n` + bits byte | `n` (1–6) conditional-branch outcomes, oldest in bit 0 |
//! | `TIP`  | `10` + zigzag-LEB128 delta | Indirect branch/return target, relative to last IP |
//! | `FUP`  | `11` + zigzag-LEB128 delta | Current PC at a sync or async event |
//! | `TSC`  | `19` + 8-byte LE | Full virtual timestamp (after `PSB`) |
//! | `MTC`  | `59` + 1 byte | Low 8 bits of the coarse time counter |
//! | `CYC`  | `03` + LEB128 | Quantized time delta since the last timing packet |

use std::fmt;

/// A decoded trace packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Packet {
    /// Stream synchronization point.
    Psb,
    /// The tracer lost packets; decode must resynchronize.
    Ovf,
    /// Packed conditional-branch outcomes; `bits` bit `i` is the `i`-th
    /// oldest outcome, `count` in `1..=6`.
    Tnt {
        /// Outcome bits, oldest in bit 0.
        bits: u8,
        /// Number of valid bits (1–6).
        count: u8,
    },
    /// Indirect-branch / return target.
    Tip {
        /// The landing PC.
        pc: u64,
    },
    /// Flow update (current PC), emitted after `PSB` and at asynchronous
    /// events such as failure snapshots.
    Fup {
        /// The current PC.
        pc: u64,
    },
    /// Full timestamp, emitted after `PSB`.
    Tsc {
        /// The virtual TSC value.
        tsc: u64,
    },
    /// Coarse time counter (low 8 bits of `tsc / ctc_period`).
    Mtc {
        /// Low 8 bits of the coarse counter.
        ctc: u8,
    },
    /// Quantized delta since the previous timing packet, in units of
    /// `1 << cyc_shift` nanoseconds.
    Cyc {
        /// The quantized delta.
        delta: u64,
    },
}

impl Packet {
    /// Returns `true` for the timing packets (`TSC`, `MTC`, `CYC`).
    pub fn is_timing(&self) -> bool {
        matches!(
            self,
            Packet::Tsc { .. } | Packet::Mtc { .. } | Packet::Cyc { .. }
        )
    }

    /// Returns `true` for control-flow packets (`TNT`, `TIP`, `FUP`).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Packet::Tnt { .. } | Packet::Tip { .. } | Packet::Fup { .. }
        )
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Packet::Psb => write!(f, "PSB"),
            Packet::Ovf => write!(f, "OVF"),
            Packet::Tnt { bits, count } => write!(f, "TNT[{count}]={bits:06b}"),
            Packet::Tip { pc } => write!(f, "TIP {pc:#x}"),
            Packet::Fup { pc } => write!(f, "FUP {pc:#x}"),
            Packet::Tsc { tsc } => write!(f, "TSC {tsc}"),
            Packet::Mtc { ctc } => write!(f, "MTC {ctc}"),
            Packet::Cyc { delta } => write!(f, "CYC {delta}"),
        }
    }
}

const OP_EXT: u8 = 0x02;
const EXT_PSB: u8 = 0x82;
const EXT_OVF: u8 = 0xF3;

/// The encoded 4-byte `PSB` sync marker (`OP_EXT EXT_PSB` twice).
pub const PSB_MARKER: [u8; 4] = [OP_EXT, EXT_PSB, OP_EXT, EXT_PSB];

/// Returns the offset of the first `PSB` marker starting at or after
/// `from`, scanning a `u64` word at a time (SWAR, std-only).
///
/// The scan splats the marker's first byte (`0x02`) across a word and
/// uses the zero-byte trick `(x - 0x01…01) & !x & 0x80…80` on
/// `word ^ splat` to flag candidate bytes. The trick never misses a true
/// `0x02` byte, and borrow propagation can only raise *spurious* flags —
/// every candidate is confirmed against the full 4-byte marker before
/// being returned, so spurious flags cost a compare, never correctness.
/// Runs free of `0x02` skip 8 bytes per iteration; markers crossing the
/// word boundary are caught because confirmation reads the real slice.
///
/// [`find_psb_scalar`] is the byte-at-a-time differential twin; the two
/// must agree on every input (`tests/scan_diff.rs`).
pub fn find_psb(bytes: &[u8], from: usize) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    const SPLAT: u64 = 0x0202_0202_0202_0202; // OP_EXT in every lane.
    let len = bytes.len();
    let mut i = from;
    while i + 8 <= len {
        let mut word = [0u8; 8];
        word.copy_from_slice(&bytes[i..i + 8]);
        // Little-endian load keeps lane order == memory order, so the
        // lowest set flag is the earliest candidate.
        let x = u64::from_le_bytes(word) ^ SPLAT;
        let mut flags = x.wrapping_sub(LO) & !x & HI;
        while flags != 0 {
            let j = i + (flags.trailing_zeros() / 8) as usize;
            if len >= j + 4 && bytes[j..j + 4] == PSB_MARKER {
                return Some(j);
            }
            flags &= flags - 1;
        }
        i += 8;
    }
    // Scalar tail: fewer than 8 bytes left to start a candidate in.
    while i + 4 <= len {
        if bytes[i..i + 4] == PSB_MARKER {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Byte-at-a-time differential twin of [`find_psb`] (the pre-SWAR
/// memchr-style skip loop), kept for proptest byte-identity.
///
/// Probes the marker's *second* byte: if `bytes[pos + 1]` is not `0x82`,
/// no marker can start at `pos` (needs `0x82` there), and one starting
/// at `pos + 1` would put its second byte at `pos + 2` — so `0x82` means
/// verify the full pattern, `0x02` means step 1 (a marker may start at
/// `pos + 1`), anything else steps 2.
pub fn find_psb_scalar(bytes: &[u8], from: usize) -> Option<usize> {
    let mut pos = from;
    while pos + 3 < bytes.len() {
        match bytes[pos + 1] {
            EXT_PSB => {
                if bytes[pos] == OP_EXT && bytes[pos + 2] == OP_EXT && bytes[pos + 3] == EXT_PSB {
                    return Some(pos);
                }
                pos += 2;
            }
            OP_EXT => pos += 1,
            _ => pos += 2,
        }
    }
    None
}
const OP_CYC: u8 = 0x03;
const OP_TIP: u8 = 0x10;
const OP_FUP: u8 = 0x11;
const OP_TSC: u8 = 0x19;
const OP_TNT_BASE: u8 = 0x40;
const OP_MTC: u8 = 0x59;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_leb128(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_leb128(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Serializes packets, maintaining last-IP compression state.
///
/// The encoder and decoder must process the same packet sequence for the
/// IP compression to stay in sync; `PSB` resets the compression state (as
/// real PT decoders assume).
#[derive(Clone, Debug, Default)]
pub struct PacketEncoder {
    last_ip: u64,
}

impl PacketEncoder {
    /// Creates an encoder with cleared compression state.
    pub fn new() -> PacketEncoder {
        PacketEncoder::default()
    }

    /// Appends the encoding of `packet` to `out`, returning the number of
    /// bytes written.
    pub fn encode(&mut self, packet: &Packet, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        match packet {
            Packet::Psb => {
                // A repeated 4-byte pattern, like real PT's 16-byte PSB:
                // long enough that payload bytes cannot false-sync.
                out.extend_from_slice(&[OP_EXT, EXT_PSB, OP_EXT, EXT_PSB]);
                self.last_ip = 0;
            }
            Packet::Ovf => out.extend_from_slice(&[OP_EXT, EXT_OVF]),
            Packet::Tnt { bits, count } => {
                debug_assert!((1..=6).contains(count), "TNT count out of range");
                out.push(OP_TNT_BASE | count);
                out.push(*bits);
            }
            Packet::Tip { pc } => {
                out.push(OP_TIP);
                let delta = *pc as i64 - self.last_ip as i64;
                push_leb128(out, zigzag(delta));
                self.last_ip = *pc;
            }
            Packet::Fup { pc } => {
                out.push(OP_FUP);
                let delta = *pc as i64 - self.last_ip as i64;
                push_leb128(out, zigzag(delta));
                self.last_ip = *pc;
            }
            Packet::Tsc { tsc } => {
                out.push(OP_TSC);
                out.extend_from_slice(&tsc.to_le_bytes());
            }
            Packet::Mtc { ctc } => {
                out.push(OP_MTC);
                out.push(*ctc);
            }
            Packet::Cyc { delta } => {
                out.push(OP_CYC);
                push_leb128(out, *delta);
            }
        }
        out.len() - start
    }
}

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// The stream ended in the middle of a packet.
    Truncated,
    /// An unknown opcode byte was encountered.
    BadOpcode(u8),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "truncated packet"),
            PacketError::BadOpcode(op) => write!(f, "unknown packet opcode {op:#04x}"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Deserializes a packet stream, maintaining last-IP compression state.
#[derive(Clone, Debug)]
pub struct PacketDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    last_ip: u64,
}

impl<'a> PacketDecoder<'a> {
    /// Creates a decoder over `bytes`.
    pub fn new(bytes: &'a [u8]) -> PacketDecoder<'a> {
        PacketDecoder {
            bytes,
            pos: 0,
            last_ip: 0,
        }
    }

    /// Current byte offset into the stream.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Skips forward to the first `PSB` at or after the current position.
    ///
    /// Returns `false` if no `PSB` exists in the remainder of the stream.
    /// This is how decoding begins on a wrapped ring-buffer snapshot,
    /// whose head may start mid-packet. Uses the word-at-a-time
    /// [`find_psb`] scan; [`find_psb_scalar`] is its differential twin.
    pub fn sync_to_psb(&mut self) -> bool {
        match find_psb(self.bytes, self.pos) {
            Some(at) => {
                self.pos = at;
                true
            }
            None => {
                self.pos = self.bytes.len();
                false
            }
        }
    }

    /// Decodes the next packet.
    ///
    /// Returns `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError`] on truncation mid-packet or an unknown
    /// opcode (possible when decode starts at a misaligned offset).
    pub fn next_packet(&mut self) -> Result<Option<Packet>, PacketError> {
        let Some(&op) = self.bytes.get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        let take = |s: &mut Self| -> Result<u8, PacketError> {
            let b = *s.bytes.get(s.pos).ok_or(PacketError::Truncated)?;
            s.pos += 1;
            Ok(b)
        };
        match op {
            OP_EXT => {
                let ext = take(self)?;
                match ext {
                    EXT_PSB => {
                        // Consume the second half of the 4-byte pattern.
                        let b2 = take(self)?;
                        let b3 = take(self)?;
                        if (b2, b3) != (OP_EXT, EXT_PSB) {
                            return Err(PacketError::BadOpcode(b2));
                        }
                        self.last_ip = 0;
                        Ok(Some(Packet::Psb))
                    }
                    EXT_OVF => Ok(Some(Packet::Ovf)),
                    other => Err(PacketError::BadOpcode(other)),
                }
            }
            OP_CYC => {
                let delta = read_leb128(self.bytes, &mut self.pos).ok_or(PacketError::Truncated)?;
                Ok(Some(Packet::Cyc { delta }))
            }
            OP_TIP | OP_FUP => {
                let z = read_leb128(self.bytes, &mut self.pos).ok_or(PacketError::Truncated)?;
                let pc = (self.last_ip as i64 + unzigzag(z)) as u64;
                self.last_ip = pc;
                Ok(Some(if op == OP_TIP {
                    Packet::Tip { pc }
                } else {
                    Packet::Fup { pc }
                }))
            }
            OP_TSC => {
                if self.pos + 8 > self.bytes.len() {
                    return Err(PacketError::Truncated);
                }
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
                self.pos += 8;
                Ok(Some(Packet::Tsc {
                    tsc: u64::from_le_bytes(raw),
                }))
            }
            OP_MTC => {
                let ctc = take(self)?;
                Ok(Some(Packet::Mtc { ctc }))
            }
            op if op & 0xf8 == OP_TNT_BASE && (1..=6).contains(&(op & 0x07)) => {
                let bits = take(self)?;
                Ok(Some(Packet::Tnt {
                    bits,
                    count: op & 0x07,
                }))
            }
            other => Err(PacketError::BadOpcode(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(packets: &[Packet]) -> Vec<Packet> {
        let mut enc = PacketEncoder::new();
        let mut bytes = Vec::new();
        for p in packets {
            enc.encode(p, &mut bytes);
        }
        let mut dec = PacketDecoder::new(&bytes);
        let mut out = Vec::new();
        while let Some(p) = dec.next_packet().unwrap() {
            out.push(p);
        }
        out
    }

    #[test]
    fn roundtrip_all_packet_kinds() {
        let packets = vec![
            Packet::Psb,
            Packet::Tsc { tsc: 123_456_789 },
            Packet::Fup { pc: 0x40_0040 },
            Packet::Tnt {
                bits: 0b101,
                count: 3,
            },
            Packet::Mtc { ctc: 42 },
            Packet::Cyc { delta: 300 },
            Packet::Tip { pc: 0x40_0100 },
            Packet::Ovf,
            Packet::Psb,
            Packet::Tsc { tsc: 999 },
            Packet::Fup { pc: 0x41_0000 },
        ];
        assert_eq!(roundtrip(&packets), packets);
    }

    #[test]
    fn ip_compression_shrinks_nearby_targets() {
        let mut enc = PacketEncoder::new();
        let mut far = Vec::new();
        enc.encode(
            &Packet::Tip {
                pc: 0x7fff_0000_0000,
            },
            &mut far,
        );
        let mut near = Vec::new();
        enc.encode(
            &Packet::Tip {
                pc: 0x7fff_0000_0010,
            },
            &mut near,
        );
        assert!(near.len() < far.len(), "{} vs {}", near.len(), far.len());
    }

    #[test]
    fn psb_resets_compression_state() {
        let packets = vec![
            Packet::Tip { pc: 0x40_2000 },
            Packet::Psb,
            Packet::Tip { pc: 0x40_2000 },
        ];
        assert_eq!(roundtrip(&packets), packets);
    }

    #[test]
    fn sync_to_psb_skips_garbage() {
        let mut enc = PacketEncoder::new();
        let mut bytes = vec![0xAA, 0xBB, 0x40]; // Garbage prefix.
        enc.encode(&Packet::Psb, &mut bytes);
        enc.encode(&Packet::Tsc { tsc: 7 }, &mut bytes);
        let mut dec = PacketDecoder::new(&bytes);
        assert!(dec.sync_to_psb());
        assert_eq!(dec.next_packet().unwrap(), Some(Packet::Psb));
        assert_eq!(dec.next_packet().unwrap(), Some(Packet::Tsc { tsc: 7 }));
        assert_eq!(dec.next_packet().unwrap(), None);
    }

    #[test]
    fn sync_fails_without_psb() {
        let bytes = vec![0x40, 0x01, 0x59, 0x02];
        let mut dec = PacketDecoder::new(&bytes);
        assert!(!dec.sync_to_psb());
    }

    /// The SWAR scanner and its scalar twin agree on crafted streams
    /// exercising every alignment, word-boundary crossings, partial
    /// markers, and `0x02` runs (the byte the SWAR pass keys on).
    #[test]
    fn swar_scan_matches_scalar_on_crafted_streams() {
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x02],
            vec![0x02, 0x82],
            vec![0x02, 0x82, 0x02],
            PSB_MARKER.to_vec(),
            vec![0x02; 32],
            vec![0x82; 32],
            [0x02, 0x82].repeat(16),
        ];
        // A marker at every offset 0..=20 (covers both word lanes and
        // the scalar tail), with 0x02-heavy filler before it.
        for off in 0..=20usize {
            let mut v = vec![0x02u8; off];
            v.extend_from_slice(&PSB_MARKER);
            v.extend_from_slice(&[0x19, 0x00, 0x02, 0x82]);
            cases.push(v);
            let mut v = vec![0xAAu8; off];
            v.extend_from_slice(&PSB_MARKER);
            cases.push(v);
        }
        // Marker flush against the end of the buffer.
        let mut v = vec![0x55u8; 13];
        v.extend_from_slice(&PSB_MARKER);
        cases.push(v);
        // Almost-markers only.
        cases.push(vec![0x02, 0x82, 0x02, 0x83, 0x02, 0x82, 0x03, 0x82]);
        for bytes in &cases {
            for from in 0..=bytes.len() + 2 {
                assert_eq!(
                    find_psb(bytes, from),
                    find_psb_scalar(bytes, from),
                    "bytes={bytes:02x?} from={from}"
                );
            }
        }
    }

    #[test]
    fn find_psb_returns_first_marker() {
        // Filler chosen so no accidental marker forms across joins.
        let mut bytes = vec![0x40u8, 0x01, 0x59, 0x00, 0x19, 0x00];
        bytes.extend_from_slice(&PSB_MARKER); // first marker at 6
        bytes.extend_from_slice(&[0x59, 0x07]);
        bytes.extend_from_slice(&PSB_MARKER); // second marker at 12
        assert_eq!(find_psb(&bytes, 0), Some(6));
        assert_eq!(find_psb(&bytes, 6), Some(6));
        assert_eq!(find_psb(&bytes, 7), Some(12));
        assert_eq!(find_psb(&bytes, 13), None);
    }

    #[test]
    fn truncated_tsc_is_error() {
        let mut enc = PacketEncoder::new();
        let mut bytes = Vec::new();
        enc.encode(&Packet::Tsc { tsc: u64::MAX }, &mut bytes);
        bytes.truncate(bytes.len() - 3);
        let mut dec = PacketDecoder::new(&bytes);
        assert_eq!(dec.next_packet(), Err(PacketError::Truncated));
    }

    #[test]
    fn bad_opcode_is_error() {
        let mut dec = PacketDecoder::new(&[0xFF]);
        assert_eq!(dec.next_packet(), Err(PacketError::BadOpcode(0xFF)));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 63, 64, 1_000_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn classification() {
        assert!(Packet::Mtc { ctc: 0 }.is_timing());
        assert!(!Packet::Mtc { ctc: 0 }.is_control());
        assert!(Packet::Tnt { bits: 0, count: 1 }.is_control());
        assert!(!Packet::Psb.is_control());
    }
}
