//! Fixed-capacity ring buffers with overwrite-oldest semantics.
//!
//! The paper's driver keeps each thread's trace in a memory ring buffer
//! (64 KB by default) that overwrites itself once full, avoiding all I/O
//! during normal operation (§5). The consequence the decoder must live
//! with: a snapshot of a wrapped buffer starts at an arbitrary byte —
//! usually mid-packet — so decoding synchronizes at the first `PSB`.

/// A byte ring buffer that silently overwrites its oldest contents.
#[derive(Clone, Debug)]
pub struct RingBuffer {
    buf: Vec<u8>,
    /// Next write offset within `buf`.
    head: usize,
    /// Total bytes ever written (may exceed capacity).
    written: u64,
}

impl RingBuffer {
    /// Creates a ring buffer with the given capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RingBuffer {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            buf: vec![0; capacity],
            head: 0,
            written: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Total bytes written over the buffer's lifetime.
    pub fn total_written(&self) -> u64 {
        self.written
    }

    /// Returns `true` once old data has been overwritten.
    pub fn wrapped(&self) -> bool {
        self.written > self.buf.len() as u64
    }

    /// Clears the buffer (used by spill mode after draining to
    /// storage).
    ///
    /// The backing store is zeroed, not just the cursors: a cleared
    /// buffer that later wraps snapshots its *entire* backing store,
    /// and stale bytes from before the clear must not resurrect as
    /// phantom trace data.
    pub fn clear(&mut self) {
        self.buf.fill(0);
        self.head = 0;
        self.written = 0;
    }

    /// Bytes currently retained (≤ capacity).
    pub fn used(&self) -> usize {
        (self.written as usize).min(self.buf.len())
    }

    /// Appends bytes, overwriting the oldest data when full.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.buf[self.head] = b;
            self.head = (self.head + 1) % self.buf.len();
        }
        self.written += bytes.len() as u64;
    }

    /// Returns the retained contents oldest-first.
    ///
    /// If the buffer wrapped, the snapshot begins at whatever byte
    /// happens to be oldest — typically the middle of a packet.
    pub fn snapshot(&self) -> Vec<u8> {
        if !self.wrapped() && self.written <= self.buf.len() as u64 {
            return self.buf[..self.written as usize].to_vec();
        }
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrapped_snapshot_preserves_order() {
        let mut r = RingBuffer::new(8);
        r.write(&[1, 2, 3]);
        assert_eq!(r.snapshot(), vec![1, 2, 3]);
        assert!(!r.wrapped());
        assert_eq!(r.total_written(), 3);
    }

    #[test]
    fn wrapped_snapshot_is_oldest_first() {
        let mut r = RingBuffer::new(4);
        r.write(&[1, 2, 3, 4, 5, 6]);
        assert!(r.wrapped());
        assert_eq!(r.snapshot(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn exactly_full_is_not_wrapped() {
        let mut r = RingBuffer::new(4);
        r.write(&[1, 2, 3, 4]);
        assert!(!r.wrapped());
        assert_eq!(r.snapshot(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn many_small_writes_equal_one_big_write() {
        let mut a = RingBuffer::new(16);
        let mut b = RingBuffer::new(16);
        let data: Vec<u8> = (0..100).collect();
        a.write(&data);
        for chunk in data.chunks(7) {
            b.write(chunk);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn clear_resets_state() {
        let mut r = RingBuffer::new(4);
        r.write(&[1, 2, 3, 4, 5]);
        assert!(r.wrapped());
        r.clear();
        assert!(!r.wrapped());
        assert_eq!(r.used(), 0);
        assert!(r.snapshot().is_empty());
        r.write(&[9]);
        assert_eq!(r.snapshot(), vec![9]);
    }

    /// Regression: `clear` used to reset only the cursors, leaving the
    /// previous trace's bytes in the backing store. A post-clear write
    /// that wraps snapshots the whole store oldest-first, so those
    /// stale bytes came back as phantom leading trace data.
    #[test]
    fn clear_zeroes_stale_bytes() {
        let mut r = RingBuffer::new(4);
        r.write(&[0xAA, 0xBB, 0xCC, 0xDD, 0xEE]);
        r.clear();
        // Wrap by exactly one byte: the snapshot now includes three
        // bytes the current epoch never wrote.
        r.write(&[1, 2, 3, 4, 5]);
        assert_eq!(r.snapshot(), vec![2, 3, 4, 5]);
        let mut r2 = RingBuffer::new(4);
        r2.write(&[0x11, 0x22]);
        r2.clear();
        // Partially refill without wrapping past the stale region.
        r2.write(&[7]);
        assert_eq!(r2.snapshot(), vec![7]);
        assert!(r2.buf[1..].iter().all(|&b| b == 0), "stale bytes zeroed");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::new(0);
    }
}
