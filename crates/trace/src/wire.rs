//! Wire format for trace snapshots.
//!
//! The paper's deployment is client-server: production machines ship
//! trace snapshots to the analysis server (§4, Figure 2). This module
//! is that transport — a versioned, checksummed binary encoding of a
//! [`TraceSnapshot`], so snapshots can cross a socket or be archived
//! and re-analyzed later. The format is deliberately simple
//! (little-endian, length-prefixed) and self-validating: corruption or
//! truncation is detected before any bytes reach the decoder.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "LZTR" | version u16 | trigger u8 | trigger_tid u32
//! | trigger_pc u64 | taken_at u64 | thread_count u32
//! | thread*   (tid u32 | wrapped u8 | stats 7×u64 | len u32 | bytes)
//! | fnv1a32 checksum over everything above
//! ```

use crate::driver::{SnapshotTrigger, SnapshotView, ThreadTraceView, TraceSnapshot};
use crate::stats::TraceStats;
use std::fmt;

/// Current wire-format version. Version 2 added the `cyc_dropped`
/// stats counter (stats went from 6 to 7 `u64`s per thread).
pub const WIRE_VERSION: u16 = 2;

const MAGIC: &[u8; 4] = b"LZTR";

/// A wire decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer does not begin with the snapshot magic.
    BadMagic,
    /// The version is not one this decoder understands.
    BadVersion(u16),
    /// The buffer ends before the encoded length.
    Truncated,
    /// The checksum does not match (corruption in transit).
    BadChecksum,
    /// An enum discriminant is out of range.
    BadField(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not a trace snapshot (bad magic)"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated => write!(f, "snapshot truncated"),
            WireError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            WireError::BadField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Continues an FNV-1a hash from `seed` over `bytes` — the incremental
/// form, for checksumming a logical message held in several buffers
/// without concatenating them.
pub fn fnv1a32_with(seed: u32, bytes: &[u8]) -> u32 {
    // FNV-1a is byte-serial by construction, so the only
    // value-preserving unroll is a fixed-width inner loop the compiler
    // can keep in registers: process 8 bytes per iteration via
    // `chunks_exact`, then the sub-word tail.
    const PRIME: u32 = 0x0100_0193;
    let mut h = seed;
    let chunks = bytes.chunks_exact(8);
    let tail = chunks.remainder();
    for chunk in chunks {
        for &b in chunk {
            h = (h ^ u32::from(b)).wrapping_mul(PRIME);
        }
    }
    for &b in tail {
        h = (h ^ u32::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a over `bytes` from the standard offset basis — the checksum
/// this wire format (and the daemon's frame protocol on top of it)
/// trails every message with.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    fnv1a32_with(0x811c_9dc5, bytes)
}

fn trigger_code(t: SnapshotTrigger) -> u8 {
    match t {
        SnapshotTrigger::Failure => 0,
        SnapshotTrigger::Breakpoint => 1,
        SnapshotTrigger::OnDemand => 2,
    }
}

fn trigger_from(code: u8) -> Result<SnapshotTrigger, WireError> {
    match code {
        0 => Ok(SnapshotTrigger::Failure),
        1 => Ok(SnapshotTrigger::Breakpoint),
        2 => Ok(SnapshotTrigger::OnDemand),
        _ => Err(WireError::BadField("trigger")),
    }
}

/// Serializes a snapshot to its wire form.
pub fn encode_snapshot(snap: &TraceSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + snap
            .threads
            .iter()
            .map(|t| t.bytes.len() + 64)
            .sum::<usize>(),
    );
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(trigger_code(snap.trigger));
    out.extend_from_slice(&snap.trigger_tid.to_le_bytes());
    out.extend_from_slice(&snap.trigger_pc.to_le_bytes());
    out.extend_from_slice(&snap.taken_at.to_le_bytes());
    out.extend_from_slice(&(snap.threads.len() as u32).to_le_bytes());
    for t in &snap.threads {
        out.extend_from_slice(&t.tid.to_le_bytes());
        out.push(u8::from(t.wrapped));
        for v in [
            t.stats.control_events,
            t.stats.control_packets,
            t.stats.timing_packets,
            t.stats.timing_bytes,
            t.stats.sync_packets,
            t.stats.bytes,
            t.stats.cyc_dropped,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(t.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&t.bytes);
    }
    let sum = fnv1a32(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Bytes left between the cursor and the end of the body.
    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        // `n` is attacker-controlled (declared lengths); compare against
        // the remainder rather than computing `pos + n`, which could
        // overflow on 32-bit targets.
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Minimum wire bytes one thread record occupies: tid (4) + wrapped (1)
/// + 7 stats `u64`s (56) + payload length word (4).
const MIN_THREAD_BYTES: usize = 4 + 1 + 7 * 8 + 4;

/// Parses a snapshot from its wire form.
///
/// # Errors
///
/// Returns a [`WireError`] for anything malformed: wrong magic or
/// version, truncation, field corruption, or checksum mismatch.
pub fn decode_snapshot(bytes: &[u8]) -> Result<TraceSnapshot, WireError> {
    Ok(decode_snapshot_view(bytes)?.to_snapshot())
}

/// Parses a snapshot from its wire form without copying thread bytes:
/// the returned [`SnapshotView`] borrows each thread's trace payload
/// directly from `bytes`. This is the daemon's zero-copy ingest path —
/// the connection's read buffer doubles as the arena the decoded
/// snapshot lives in.
///
/// # Errors
///
/// Returns a [`WireError`] for anything malformed: wrong magic or
/// version, truncation, field corruption, or checksum mismatch.
pub fn decode_snapshot_view(bytes: &[u8]) -> Result<SnapshotView<'_>, WireError> {
    let _span = lazy_obs::span!("wire.parse");
    lazy_obs::counter!("wire.bytes_total", bytes.len());
    let out = decode_snapshot_inner(bytes);
    match &out {
        Ok(_) => lazy_obs::counter!("wire.snapshots_total", 1u64),
        Err(_) => lazy_obs::counter!("wire.rejects_total", 1u64),
    }
    out
}

fn decode_snapshot_inner(bytes: &[u8]) -> Result<SnapshotView<'_>, WireError> {
    // Reject anything shorter than magic + version + checksum *before*
    // slicing: `bytes[bytes.len() - 4..]` on a 0–3 byte buffer would
    // otherwise panic. `checked_sub` keeps the guard and the slice in
    // one expression, so they cannot drift apart.
    let Some(body_len) = bytes.len().checked_sub(4) else {
        return Err(WireError::Truncated);
    };
    if body_len < 4 + 2 {
        return Err(WireError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    // Validate the checksum over everything but the trailing word.
    let (body, tail) = bytes.split_at(body_len);
    let expect = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if fnv1a32(body) != expect {
        return Err(WireError::BadChecksum);
    }
    let mut r = Reader {
        bytes: body,
        pos: 4,
    };
    let version = r.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let trigger = trigger_from(r.u8()?)?;
    let trigger_tid = r.u32()?;
    let trigger_pc = r.u64()?;
    let taken_at = r.u64()?;
    let nthreads = r.u32()? as usize;
    // The count is attacker-controlled: clamp the declared value against
    // what the remaining bytes could possibly hold before letting it
    // size anything. Each thread record is at least MIN_THREAD_BYTES, so
    // a count beyond remaining/MIN is corrupt on its face — reject it
    // instead of looping into an inevitable Truncated (or, worse,
    // pre-allocating a count-sized Vec).
    if nthreads > r.remaining() / MIN_THREAD_BYTES {
        return Err(WireError::BadField("thread count"));
    }
    let mut threads = Vec::with_capacity(nthreads);
    for _ in 0..nthreads {
        let tid = r.u32()?;
        let wrapped = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::BadField("wrapped")),
        };
        let stats = TraceStats {
            control_events: r.u64()?,
            control_packets: r.u64()?,
            timing_packets: r.u64()?,
            timing_bytes: r.u64()?,
            sync_packets: r.u64()?,
            bytes: r.u64()?,
            cyc_dropped: r.u64()?,
        };
        // Clamp the declared payload length against the remaining bytes
        // before anything is sized off it; `take` borrows, so no
        // allocation happens at all on this path.
        let len = r.u32()? as usize;
        if len > r.remaining() {
            return Err(WireError::Truncated);
        }
        let data = r.take(len)?;
        threads.push(ThreadTraceView {
            tid,
            bytes: data,
            stats,
            wrapped,
        });
    }
    if r.pos != body.len() {
        return Err(WireError::BadField("trailing bytes"));
    }
    Ok(SnapshotView {
        threads,
        taken_at,
        trigger_tid,
        trigger_pc,
        trigger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ThreadTrace;

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            threads: vec![
                ThreadTrace {
                    tid: 0,
                    bytes: vec![1, 2, 3, 4, 5],
                    stats: TraceStats {
                        control_events: 10,
                        control_packets: 4,
                        timing_packets: 7,
                        timing_bytes: 14,
                        sync_packets: 1,
                        bytes: 40,
                        cyc_dropped: 2,
                    },
                    wrapped: false,
                },
                ThreadTrace {
                    tid: 3,
                    bytes: vec![],
                    stats: TraceStats::default(),
                    wrapped: true,
                },
            ],
            taken_at: 123_456_789,
            trigger_tid: 3,
            trigger_pc: 0x40_0040,
            trigger: SnapshotTrigger::Failure,
        }
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        let wire = encode_snapshot(&snap);
        let back = decode_snapshot(&wire).unwrap();
        assert_eq!(back.taken_at, snap.taken_at);
        assert_eq!(back.trigger_tid, snap.trigger_tid);
        assert_eq!(back.trigger_pc, snap.trigger_pc);
        assert_eq!(back.trigger, snap.trigger);
        assert_eq!(back.threads.len(), 2);
        assert_eq!(back.threads[0].bytes, snap.threads[0].bytes);
        assert_eq!(back.threads[0].stats, snap.threads[0].stats);
        assert!(back.threads[1].wrapped);
    }

    /// The borrowed view decode must agree with the owned decode and
    /// actually borrow: each thread's bytes must point into the wire
    /// buffer, not a copy.
    #[test]
    fn view_roundtrip_borrows_from_wire() {
        let snap = sample();
        let wire = encode_snapshot(&snap);
        let view = decode_snapshot_view(&wire).unwrap();
        assert_eq!(view.to_snapshot(), decode_snapshot(&wire).unwrap());
        assert_eq!(view, snap.view());
        let range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        for t in &view.threads {
            if !t.bytes.is_empty() {
                assert!(range.contains(&(t.bytes.as_ptr() as usize)));
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut wire = encode_snapshot(&sample());
        let mid = wire.len() / 2;
        wire[mid] ^= 0x40;
        assert_eq!(decode_snapshot(&wire), Err(WireError::BadChecksum));
    }

    #[test]
    fn truncation_is_detected() {
        let wire = encode_snapshot(&sample());
        for cut in [0, 3, 7, wire.len() / 2, wire.len() - 1] {
            let err = decode_snapshot(&wire[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadChecksum),
                "cut {cut}: {err}"
            );
        }
    }

    /// Regression: buffers shorter than the 4-byte checksum word used
    /// to reach `bytes[bytes.len() - 4..]` and panic; every sub-header
    /// length must instead report `Truncated`.
    #[test]
    fn tiny_buffers_return_truncated() {
        let wire = encode_snapshot(&sample());
        for cut in 0..=3 {
            assert_eq!(
                decode_snapshot(&wire[..cut]),
                Err(WireError::Truncated),
                "cut {cut}"
            );
        }
        // The whole sub-header range, for good measure.
        for cut in 4..(4 + 2 + 4) {
            assert!(decode_snapshot(&wire[..cut]).is_err(), "cut {cut}");
        }
    }

    /// Re-checksums `wire` in place (for tests that corrupt fields
    /// *behind* the checksum to reach the structural validators).
    fn fix_checksum(wire: &mut [u8]) {
        let n = wire.len();
        let sum = fnv1a32(&wire[..n - 4]);
        wire[n - 4..].copy_from_slice(&sum.to_le_bytes());
    }

    /// A corrupt thread count (with a fixed-up checksum, so the
    /// corruption reaches the structural layer) is rejected before any
    /// count-sized allocation.
    #[test]
    fn inflated_thread_count_is_rejected() {
        let mut wire = encode_snapshot(&sample());
        // thread_count u32 sits after magic(4)+version(2)+trigger(1)
        // +trigger_tid(4)+trigger_pc(8)+taken_at(8).
        let off = 4 + 2 + 1 + 4 + 8 + 8;
        for bogus in [u32::MAX, u32::MAX / 2, 1_000_000] {
            wire[off..off + 4].copy_from_slice(&bogus.to_le_bytes());
            fix_checksum(&mut wire);
            assert_eq!(
                decode_snapshot(&wire),
                Err(WireError::BadField("thread count")),
                "count {bogus}"
            );
        }
    }

    /// A corrupt per-thread payload length (checksum fixed up) is
    /// clamped against the remaining bytes instead of driving a huge
    /// allocation.
    #[test]
    fn inflated_payload_length_is_rejected() {
        let mut wire = encode_snapshot(&sample());
        // First thread record starts right after the header; its length
        // word sits after tid(4)+wrapped(1)+stats(56).
        let off = (4 + 2 + 1 + 4 + 8 + 8 + 4) + 4 + 1 + 56;
        for bogus in [u32::MAX, 1 << 30, 0x10_0000] {
            wire[off..off + 4].copy_from_slice(&bogus.to_le_bytes());
            fix_checksum(&mut wire);
            assert_eq!(
                decode_snapshot(&wire),
                Err(WireError::Truncated),
                "len {bogus}"
            );
        }
    }

    /// Zeroing a length field (checksum fixed up) desynchronizes the
    /// record stream; decode must fail cleanly, not panic.
    #[test]
    fn zeroed_payload_length_fails_cleanly() {
        let mut wire = encode_snapshot(&sample());
        let off = (4 + 2 + 1 + 4 + 8 + 8 + 4) + 4 + 1 + 56;
        wire[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
        fix_checksum(&mut wire);
        assert!(decode_snapshot(&wire).is_err());
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut wire = encode_snapshot(&sample());
        wire[0] = b'X';
        assert_eq!(decode_snapshot(&wire), Err(WireError::BadMagic));
    }

    #[test]
    fn version_mismatch_is_detected() {
        let mut wire = encode_snapshot(&sample());
        // Bump the version and re-checksum so only the version differs.
        wire[4] = 0xfe;
        let n = wire.len();
        let sum = super::fnv1a32(&wire[..n - 4]);
        wire[n - 4..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_snapshot(&wire), Err(WireError::BadVersion(0xfe)));
    }

    #[test]
    fn bad_trigger_is_detected() {
        let mut wire = encode_snapshot(&sample());
        wire[6] = 9; // Trigger discriminant.
        let n = wire.len();
        let sum = super::fnv1a32(&wire[..n - 4]);
        wire[n - 4..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_snapshot(&wire), Err(WireError::BadField("trigger")));
    }
}
