//! The trace-driver facade.
//!
//! Models the paper's loadable kernel module (§5): it owns one trace
//! encoder (and ring buffer) per thread, exposes the ioctl-style control
//! surface — arm a hardware breakpoint at a PC and snapshot when any
//! thread reaches it, or snapshot on a fail-stop event — and hands the
//! collected per-thread buffers to the diagnosis server.

use crate::config::TraceConfig;
use crate::encoder::Encoder;
use crate::stats::TraceStats;
use std::collections::{BTreeMap, HashSet};

/// One thread's contribution to a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The thread's identifier (assigned by the execution substrate).
    pub tid: u32,
    /// Raw ring-buffer bytes, oldest first.
    pub bytes: Vec<u8>,
    /// Encoder statistics at snapshot time.
    pub stats: TraceStats,
    /// Whether the ring buffer had overwritten old data.
    pub wrapped: bool,
}

/// What triggered a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotTrigger {
    /// A fail-stop event (crash, deadlock, failed assertion).
    Failure,
    /// A breakpoint armed at a previous failure's PC fired (used to
    /// collect traces from successful executions, step 8).
    Breakpoint,
    /// An explicit on-demand request.
    OnDemand,
}

/// A full multi-thread trace snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Per-thread trace buffers.
    pub threads: Vec<ThreadTrace>,
    /// Virtual TSC when the snapshot was taken.
    pub taken_at: u64,
    /// The thread that triggered the snapshot.
    pub trigger_tid: u32,
    /// The PC that triggered the snapshot.
    pub trigger_pc: u64,
    /// Why the snapshot was taken.
    pub trigger: SnapshotTrigger,
}

impl TraceSnapshot {
    /// Aggregate statistics across all threads.
    pub fn total_stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for t in &self.threads {
            s.merge(&t.stats);
        }
        s
    }

    /// A borrowed view of this snapshot (zero-copy ingest path).
    pub fn view(&self) -> SnapshotView<'_> {
        SnapshotView {
            threads: self
                .threads
                .iter()
                .map(|t| ThreadTraceView {
                    tid: t.tid,
                    bytes: &t.bytes,
                    stats: t.stats,
                    wrapped: t.wrapped,
                })
                .collect(),
            taken_at: self.taken_at,
            trigger_tid: self.trigger_tid,
            trigger_pc: self.trigger_pc,
            trigger: self.trigger,
        }
    }
}

/// One thread's contribution to a snapshot, borrowing its ring-buffer
/// bytes from a caller-owned buffer (typically a connection's read
/// buffer) instead of owning a copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadTraceView<'a> {
    /// The thread's identifier (assigned by the execution substrate).
    pub tid: u32,
    /// Raw ring-buffer bytes, oldest first — borrowed, not copied.
    pub bytes: &'a [u8],
    /// Encoder statistics at snapshot time.
    pub stats: TraceStats,
    /// Whether the ring buffer had overwritten old data.
    pub wrapped: bool,
}

impl ThreadTraceView<'_> {
    /// Materializes an owned [`ThreadTrace`] (copies the bytes).
    pub fn to_thread_trace(&self) -> ThreadTrace {
        ThreadTrace {
            tid: self.tid,
            bytes: self.bytes.to_vec(),
            stats: self.stats,
            wrapped: self.wrapped,
        }
    }
}

/// A borrowed view of a [`TraceSnapshot`]: the zero-copy ingest shape.
///
/// Wire decode ([`crate::wire::decode_snapshot_view`]) produces these
/// directly over a request payload, so per-thread trace bytes are never
/// copied between the socket read buffer and the decoder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotView<'a> {
    /// Per-thread trace buffers (borrowed).
    pub threads: Vec<ThreadTraceView<'a>>,
    /// Virtual TSC when the snapshot was taken.
    pub taken_at: u64,
    /// The thread that triggered the snapshot.
    pub trigger_tid: u32,
    /// The PC that triggered the snapshot.
    pub trigger_pc: u64,
    /// Why the snapshot was taken.
    pub trigger: SnapshotTrigger,
}

impl SnapshotView<'_> {
    /// Materializes an owned [`TraceSnapshot`] (copies all bytes).
    pub fn to_snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            threads: self.threads.iter().map(|t| t.to_thread_trace()).collect(),
            taken_at: self.taken_at,
            trigger_tid: self.trigger_tid,
            trigger_pc: self.trigger_pc,
            trigger: self.trigger,
        }
    }

    /// Aggregate statistics across all threads.
    pub fn total_stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for t in &self.threads {
            s.merge(&t.stats);
        }
        s
    }
}

/// Per-thread trace encoders plus the breakpoint control surface.
#[derive(Clone, Debug)]
pub struct TraceDriver {
    config: TraceConfig,
    threads: BTreeMap<u32, Encoder>,
    breakpoints: HashSet<u64>,
    enabled: bool,
}

impl TraceDriver {
    /// Creates a driver with the given configuration.
    pub fn new(config: TraceConfig) -> TraceDriver {
        TraceDriver {
            config,
            threads: BTreeMap::new(),
            breakpoints: HashSet::new(),
            enabled: true,
        }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Enables or disables tracing (disabled = baseline runs for
    /// overhead measurement).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns `true` if tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Arms a snapshot breakpoint at `pc` (the ioctl interface: "save the
    /// trace when the program executes a specific instruction").
    pub fn add_breakpoint(&mut self, pc: u64) {
        self.breakpoints.insert(pc);
    }

    /// Disarms all breakpoints.
    pub fn clear_breakpoints(&mut self) {
        self.breakpoints.clear();
    }

    /// Returns `true` if a breakpoint is armed at `pc`.
    pub fn is_breakpoint(&self, pc: u64) -> bool {
        !self.breakpoints.is_empty() && self.breakpoints.contains(&pc)
    }

    /// Registers a new thread and starts its trace at `pc`.
    pub fn thread_start(&mut self, tid: u32, pc: u64, tsc: u64) {
        if !self.enabled {
            return;
        }
        let mut enc = Encoder::new(self.config.clone());
        enc.start(pc, tsc);
        self.threads.insert(tid, enc);
    }

    /// Records a conditional-branch outcome.
    pub fn on_branch(&mut self, tid: u32, pc: u64, taken: bool, tsc: u64) {
        if !self.enabled {
            return;
        }
        if let Some(enc) = self.threads.get_mut(&tid) {
            enc.branch(pc, taken, tsc);
        }
    }

    /// Records an indirect transfer (indirect call or return) to
    /// `target`.
    pub fn on_indirect(&mut self, tid: u32, pc: u64, target: u64, tsc: u64) {
        if !self.enabled {
            return;
        }
        if let Some(enc) = self.threads.get_mut(&tid) {
            enc.indirect(pc, target, tsc);
        }
    }

    /// Advances a thread's timing stream without a control event.
    pub fn on_tick(&mut self, tid: u32, tsc: u64) {
        if !self.enabled {
            return;
        }
        if let Some(enc) = self.threads.get_mut(&tid) {
            enc.tick(tsc);
        }
    }

    /// Total bytes written across all threads (the execution substrate
    /// charges the modelled hardware cost from deltas of this value).
    pub fn total_bytes(&self) -> u64 {
        self.threads.values().map(Encoder::total_bytes).sum()
    }

    /// Total spill flushes across all threads (spill mode); the
    /// execution substrate charges storage-I/O time per flush.
    pub fn total_spill_flushes(&self) -> u64 {
        self.threads.values().map(Encoder::spill_flushes).sum()
    }

    /// Takes a snapshot of every thread's buffer.
    ///
    /// `positions` carries each live thread's current PC and local clock;
    /// every listed thread gets an async `FUP` so the decoder can walk
    /// its trace precisely to where the thread was at snapshot time
    /// (without this, a thread blocked on a lock would never have its
    /// blocking lock-acquisition instruction decoded — that instruction
    /// generates no control packet of its own).
    pub fn snapshot(
        &mut self,
        trigger_tid: u32,
        trigger_pc: u64,
        positions: &[(u32, u64, u64)],
        tsc: u64,
        trigger: SnapshotTrigger,
    ) -> TraceSnapshot {
        for (tid, pc, thread_tsc) in positions {
            if let Some(enc) = self.threads.get_mut(tid) {
                enc.async_fup(*pc, *thread_tsc);
            }
        }
        let threads = self
            .threads
            .iter_mut()
            .map(|(tid, enc)| ThreadTrace {
                tid: *tid,
                bytes: enc.snapshot(),
                stats: *enc.stats(),
                wrapped: enc.wrapped(),
            })
            .collect();
        TraceSnapshot {
            threads,
            taken_at: tsc,
            trigger_tid,
            trigger_pc,
            trigger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakpoints_arm_and_clear() {
        let mut d = TraceDriver::new(TraceConfig::default());
        assert!(!d.is_breakpoint(0x40_0000));
        d.add_breakpoint(0x40_0000);
        assert!(d.is_breakpoint(0x40_0000));
        assert!(!d.is_breakpoint(0x40_0004));
        d.clear_breakpoints();
        assert!(!d.is_breakpoint(0x40_0000));
    }

    #[test]
    fn disabled_driver_records_nothing() {
        let mut d = TraceDriver::new(TraceConfig::default());
        d.set_enabled(false);
        d.thread_start(1, 0x40_0000, 0);
        d.on_branch(1, 0x40_0004, true, 10);
        assert_eq!(d.total_bytes(), 0);
        let snap = d.snapshot(
            1,
            0x40_0004,
            &[(1, 0x40_0004, 20)],
            20,
            SnapshotTrigger::Failure,
        );
        assert!(snap.threads.is_empty());
    }

    #[test]
    fn snapshot_collects_all_threads() {
        let mut d = TraceDriver::new(TraceConfig::default());
        d.thread_start(1, 0x40_0000, 0);
        d.thread_start(2, 0x41_0000, 5);
        d.on_branch(1, 0x40_0004, true, 10);
        d.on_branch(2, 0x41_0004, false, 12);
        let snap = d.snapshot(
            1,
            0x40_0008,
            &[(1, 0x40_0008, 20), (2, 0x41_0004, 15)],
            20,
            SnapshotTrigger::Failure,
        );
        assert_eq!(snap.threads.len(), 2);
        assert_eq!(snap.trigger_tid, 1);
        assert_eq!(snap.trigger, SnapshotTrigger::Failure);
        assert!(snap.total_stats().bytes > 0);
        // Both threads have nonempty buffers.
        assert!(snap.threads.iter().all(|t| !t.bytes.is_empty()));
    }

    #[test]
    fn per_thread_stats_are_isolated() {
        let mut d = TraceDriver::new(TraceConfig::default());
        d.thread_start(1, 0x40_0000, 0);
        d.thread_start(2, 0x41_0000, 0);
        for i in 0..10 {
            d.on_branch(1, 0x40_0004, true, i * 100);
        }
        let snap = d.snapshot(2, 0x41_0000, &[], 2000, SnapshotTrigger::OnDemand);
        let t1 = snap.threads.iter().find(|t| t.tid == 1).unwrap();
        let t2 = snap.threads.iter().find(|t| t.tid == 2).unwrap();
        assert_eq!(t1.stats.control_events, 10);
        assert_eq!(t2.stats.control_events, 0);
    }
}
