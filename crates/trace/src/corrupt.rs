//! Fault-injection machinery for wire-encoded snapshots.
//!
//! Snorlax ingests traces from live, failing deployments, so malformed
//! and adversarially corrupt snapshots are expected input, not an edge
//! case. This module produces them deliberately: a [`Corruptor`] takes
//! a *valid* encoded snapshot and applies one [`CorruptionOp`] —
//! truncation, bit flips, zeroed or inflated length fields, splices
//! across `PSB` sync boundaries, or a dropped checksum word.
//!
//! Two layers of defense get exercised, controlled by
//! [`Corruptor::fix_checksum`]:
//!
//! * **Transport validation** (checksum off): any byte damage should be
//!   caught by the fnv1a32 word before the structural parser runs.
//! * **Structural validation** (checksum re-fixed): the corruption is
//!   laundered past the checksum, so the parser's own guards — length
//!   clamps, field validation, packet-level resync — must hold alone.
//!   This models a corruption that happened *before* encoding (a torn
//!   ring buffer, a buggy client) rather than in transit.
//!
//! The harnesses in `tests/faults.rs` and `lazy-bench --bin faults`
//! drive these operators over every decode path and assert the only
//! outcomes are `Ok` or a typed `Err` — never a panic, never an
//! OOM-scale allocation.

use crate::wire::fnv1a32;

/// Byte offset of the `thread_count` field in the wire header:
/// magic (4) + version (2) + trigger (1) + trigger_tid (4)
/// + trigger_pc (8) + taken_at (8).
const THREAD_COUNT_OFFSET: usize = 4 + 2 + 1 + 4 + 8 + 8;

/// Byte offset of the first thread record (header + thread count).
const FIRST_THREAD_OFFSET: usize = THREAD_COUNT_OFFSET + 4;

/// Offset of a thread record's payload-length word from the record
/// start: tid (4) + wrapped (1) + 7 stats `u64`s (56).
const LEN_FIELD_OFFSET: usize = 4 + 1 + 56;

/// The encoded `PSB` sync marker (`OP_EXT EXT_PSB` twice).
const PSB_MARKER: [u8; 4] = [0x02, 0x82, 0x02, 0x82];

/// One corruption to apply to an encoded snapshot.
///
/// Positional parameters are interpreted modulo whatever the buffer
/// actually offers (byte length, number of length fields, number of
/// `PSB` markers), so any values — e.g. from a proptest strategy — name
/// a valid operation and the operator set stays total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorruptionOp {
    /// Keep only the first `keep % (len + 1)` bytes.
    Truncate {
        /// Prefix length to keep (reduced modulo `len + 1`).
        keep: usize,
    },
    /// Flip bit `bit % 8` of byte `offset % len`.
    BitFlip {
        /// Byte position (reduced modulo the buffer length).
        offset: usize,
        /// Bit index within the byte (reduced modulo 8).
        bit: u8,
    },
    /// Overwrite the `field`-th length word (thread count or a payload
    /// length) with zero.
    ZeroLength {
        /// Index into [`Corruptor::length_field_offsets`] (modulo its
        /// length).
        field: usize,
    },
    /// Overwrite the `field`-th length word with an arbitrary value
    /// (typically huge, to probe pre-allocation guards).
    InflateLength {
        /// Index into [`Corruptor::length_field_offsets`] (modulo its
        /// length).
        field: usize,
        /// Replacement little-endian value.
        value: u32,
    },
    /// Remove the bytes between two `PSB` markers, splicing packet
    /// stream regions together across a sync boundary.
    SplicePsb {
        /// Index of the splice start marker (modulo the marker count).
        from: usize,
        /// Index of the splice end marker (modulo the marker count).
        to: usize,
    },
    /// Drop the trailing fnv1a32 checksum word entirely.
    DropChecksum,
}

/// Applies [`CorruptionOp`]s to valid encoded snapshots.
#[derive(Clone, Copy, Debug, Default)]
pub struct Corruptor {
    /// When set, the trailing checksum word is recomputed after the
    /// corruption, so the damage survives transport validation and
    /// reaches the structural parser. Never applied after
    /// [`CorruptionOp::DropChecksum`] or a truncation that removes the
    /// checksum word (those ops exist to damage the trailer itself).
    pub fix_checksum: bool,
}

impl Corruptor {
    /// A corruptor whose output should be caught by the checksum.
    pub fn new() -> Self {
        Self {
            fix_checksum: false,
        }
    }

    /// A corruptor that launders damage past the checksum, exercising
    /// the structural validators behind it.
    pub fn laundering() -> Self {
        Self { fix_checksum: true }
    }

    /// Returns `wire` with `op` applied.
    ///
    /// Total over arbitrary (even already-corrupt) input: positional
    /// parameters wrap, and ops whose target does not exist in this
    /// buffer (no length fields, fewer than two `PSB` markers) return
    /// the input unchanged.
    pub fn apply(&self, wire: &[u8], op: &CorruptionOp) -> Vec<u8> {
        let mut out = wire.to_vec();
        let mut refix = self.fix_checksum;
        match *op {
            CorruptionOp::Truncate { keep } => {
                let keep = keep % (out.len() + 1);
                out.truncate(keep);
                // A truncation that removes the trailer is *about* the
                // missing trailer; re-fixing would graft a new one on.
                refix = refix && keep == wire.len();
            }
            CorruptionOp::BitFlip { offset, bit } => {
                if !out.is_empty() {
                    let at = offset % out.len();
                    out[at] ^= 1 << (bit % 8);
                }
            }
            CorruptionOp::ZeroLength { field } => {
                self.patch_length(&mut out, field, 0);
            }
            CorruptionOp::InflateLength { field, value } => {
                self.patch_length(&mut out, field, value);
            }
            CorruptionOp::SplicePsb { from, to } => {
                let marks = Self::psb_offsets(&out);
                if marks.len() >= 2 {
                    let a = marks[from % marks.len()];
                    let b = marks[to % marks.len()];
                    let (a, b) = (a.min(b), a.max(b));
                    out.drain(a..b);
                }
            }
            CorruptionOp::DropChecksum => {
                let keep = out.len().saturating_sub(4);
                out.truncate(keep);
                refix = false;
            }
        }
        if refix && out.len() >= 8 {
            let body = out.len() - 4;
            let sum = fnv1a32(&out[..body]);
            out[body..].copy_from_slice(&sum.to_le_bytes());
        }
        out
    }

    /// Byte offsets of every length word in `wire`: the header's thread
    /// count, then each thread record's payload-length field.
    ///
    /// Walks the declared structure defensively — if a declared length
    /// runs past the buffer (the input may itself be corrupt), the walk
    /// stops at the last offset that fits.
    pub fn length_field_offsets(wire: &[u8]) -> Vec<usize> {
        let mut offs = Vec::new();
        if wire.len() < FIRST_THREAD_OFFSET {
            return offs;
        }
        offs.push(THREAD_COUNT_OFFSET);
        let nthreads = read_u32(wire, THREAD_COUNT_OFFSET) as usize;
        let mut pos = FIRST_THREAD_OFFSET;
        for _ in 0..nthreads {
            let len_at = match pos.checked_add(LEN_FIELD_OFFSET) {
                Some(v) if v + 4 <= wire.len() => v,
                _ => break,
            };
            offs.push(len_at);
            let payload = read_u32(wire, len_at) as usize;
            pos = match (len_at + 4).checked_add(payload) {
                Some(v) if v <= wire.len() => v,
                _ => break,
            };
        }
        offs
    }

    /// Byte offsets of every `PSB` marker in `wire`.
    pub fn psb_offsets(wire: &[u8]) -> Vec<usize> {
        let mut offs = Vec::new();
        let mut pos = 0;
        while pos + PSB_MARKER.len() <= wire.len() {
            if wire[pos..pos + PSB_MARKER.len()] == PSB_MARKER {
                offs.push(pos);
                pos += PSB_MARKER.len();
            } else {
                pos += 1;
            }
        }
        offs
    }

    fn patch_length(&self, out: &mut [u8], field: usize, value: u32) {
        let offs = Self::length_field_offsets(out);
        if offs.is_empty() {
            return;
        }
        let at = offs[field % offs.len()];
        out[at..at + 4].copy_from_slice(&value.to_le_bytes());
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{SnapshotTrigger, ThreadTrace, TraceSnapshot};
    use crate::stats::TraceStats;
    use crate::wire::{decode_snapshot, encode_snapshot, WireError};

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            threads: vec![
                ThreadTrace {
                    tid: 1,
                    // Payload with two PSB markers and filler between.
                    bytes: [
                        &PSB_MARKER[..],
                        &[0x19, 1, 2, 3, 4, 5, 6, 7, 8],
                        &PSB_MARKER[..],
                        &[0x19, 9, 9, 9, 9, 9, 9, 9, 9],
                    ]
                    .concat(),
                    stats: TraceStats::default(),
                    wrapped: false,
                },
                ThreadTrace {
                    tid: 2,
                    bytes: vec![0xaa; 16],
                    stats: TraceStats::default(),
                    wrapped: true,
                },
            ],
            taken_at: 7,
            trigger_tid: 1,
            trigger_pc: 0x1000,
            trigger: SnapshotTrigger::Failure,
        }
    }

    #[test]
    fn length_field_offsets_match_layout() {
        let snap = sample();
        let wire = encode_snapshot(&snap);
        let offs = Corruptor::length_field_offsets(&wire);
        // Thread count + one length word per thread.
        assert_eq!(offs.len(), 1 + snap.threads.len());
        assert_eq!(offs[0], THREAD_COUNT_OFFSET);
        assert_eq!(
            read_u32(&wire, offs[0]) as usize,
            snap.threads.len(),
            "first offset is the thread count"
        );
        for (i, t) in snap.threads.iter().enumerate() {
            assert_eq!(
                read_u32(&wire, offs[1 + i]) as usize,
                t.bytes.len(),
                "thread {i} length word"
            );
        }
    }

    #[test]
    fn psb_offsets_find_payload_markers() {
        let wire = encode_snapshot(&sample());
        // The first thread embeds two PSB markers.
        assert!(Corruptor::psb_offsets(&wire).len() >= 2);
    }

    #[test]
    fn unfixed_corruption_is_caught_by_checksum() {
        let wire = encode_snapshot(&sample());
        let c = Corruptor::new();
        let flipped = c.apply(
            &wire,
            &CorruptionOp::BitFlip {
                offset: wire.len() / 2,
                bit: 3,
            },
        );
        assert_eq!(decode_snapshot(&flipped), Err(WireError::BadChecksum));
    }

    #[test]
    fn laundered_inflation_reaches_structural_guard() {
        let wire = encode_snapshot(&sample());
        let c = Corruptor::laundering();
        let bad = c.apply(
            &wire,
            &CorruptionOp::InflateLength {
                field: 1,
                value: u32::MAX,
            },
        );
        // Checksum passes; the length clamp must reject it.
        assert_eq!(decode_snapshot(&bad), Err(WireError::Truncated));
    }

    #[test]
    fn drop_checksum_never_refixes() {
        let wire = encode_snapshot(&sample());
        let c = Corruptor::laundering();
        let bad = c.apply(&wire, &CorruptionOp::DropChecksum);
        assert_eq!(bad.len(), wire.len() - 4);
        assert!(decode_snapshot(&bad).is_err());
    }

    #[test]
    fn splice_produces_decodable_length() {
        let wire = encode_snapshot(&sample());
        let c = Corruptor::new();
        let spliced = c.apply(&wire, &CorruptionOp::SplicePsb { from: 0, to: 1 });
        assert!(spliced.len() < wire.len());
        // Still fails cleanly (checksum now stale).
        assert!(decode_snapshot(&spliced).is_err());
    }

    #[test]
    fn ops_are_total_on_tiny_buffers() {
        let c = Corruptor::laundering();
        for buf in [&[][..], &[0x02][..], &[0x02, 0x82, 0x02][..]] {
            for op in [
                CorruptionOp::Truncate { keep: 100 },
                CorruptionOp::BitFlip {
                    offset: 9,
                    bit: 200,
                },
                CorruptionOp::ZeroLength { field: 5 },
                CorruptionOp::InflateLength {
                    field: 5,
                    value: u32::MAX,
                },
                CorruptionOp::SplicePsb { from: 3, to: 9 },
                CorruptionOp::DropChecksum,
            ] {
                let out = c.apply(buf, &op);
                assert!(out.len() <= buf.len().max(1));
                let _ = decode_snapshot(&out);
            }
        }
    }
}
