//! Trace-driver configuration.

/// Configuration of the tracing "hardware" and driver.
///
/// Defaults follow the paper's prototype: 64 KB per-thread ring buffers
/// (§5, configurable up to 128 MB) and timing packets injected at the
/// highest available frequency — the paper reports that timing packets
/// then occupy ~49% of the buffer and that the longest gap between timing
/// packets observed was 65 µs, comfortably below the shortest inter-event
/// distance of 91 µs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Per-thread ring-buffer capacity in bytes.
    pub buffer_size: usize,
    /// Period of the coarse time counter driving `MTC` packets, in
    /// virtual nanoseconds. An `MTC` packet is emitted whenever the
    /// virtual TSC crosses a period boundary.
    pub ctc_period_ns: u64,
    /// Quantization shift for `CYC` packets: cycle deltas are recorded as
    /// `delta_ns >> cyc_shift`, so decoded timestamps carry an
    /// uncertainty of `1 << cyc_shift` nanoseconds.
    pub cyc_shift: u32,
    /// Emit a `PSB` sync sequence after roughly this many payload bytes.
    pub psb_period_bytes: usize,
    /// Master switch for timing packets (`TSC`/`MTC`/`CYC`). Disabling
    /// them models PT with timing off: control flow still decodes, but no
    /// cross-thread order can be recovered (the §7 fallback).
    pub timing_enabled: bool,
    /// Minimum thread-stream size, in bytes, at which the decode
    /// pipeline switches from the fused sequential decoder to
    /// PSB-sharded parallel decode. Below this, shard stitching costs
    /// more than it saves.
    pub decode_shard_min_bytes: usize,
    /// Target bytes per shard for the adaptive router
    /// (`decode_thread_trace_adaptive`): the shard count is capped at
    /// `len / decode_shard_target_bytes` so each worker gets enough
    /// bytes to amortize the skim + stitch overhead. Together with the
    /// worker budget this routes small inputs (and 1-core boxes) to the
    /// fused pass with zero sharding overhead.
    pub decode_shard_target_bytes: usize,
    /// Spill the ring buffer to persistent storage whenever it fills,
    /// keeping the *entire* trace instead of the most recent window.
    /// This is the §7 mitigation for bugs that violate the
    /// short-distance hypothesis — at the cost of I/O during operation
    /// (the execution substrate charges I/O time per flush).
    pub spill_to_storage: bool,
}

impl TraceConfig {
    /// The paper's default 64 KB ring buffer.
    pub const DEFAULT_BUFFER: usize = 64 * 1024;
    /// The largest buffer the paper's driver supports (128 MB).
    pub const MAX_BUFFER: usize = 128 * 1024 * 1024;

    /// Returns the timestamp uncertainty introduced by `CYC`
    /// quantization, in nanoseconds.
    pub fn time_quantum_ns(&self) -> u64 {
        1u64 << self.cyc_shift
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            buffer_size: Self::DEFAULT_BUFFER,
            // ~4.1 µs coarse counter, matching MTC at its highest
            // frequency on the paper's Skylake client.
            ctc_period_ns: 4096,
            // 256 ns quantization of cycle-accurate deltas.
            cyc_shift: 8,
            psb_period_bytes: 4096,
            decode_shard_min_bytes: 32 * 1024,
            // ~256 KB per worker: below this, per-shard skim + stitch
            // overhead eats the parallel win (measured in EXPERIMENTS.md).
            decode_shard_target_bytes: 256 * 1024,
            timing_enabled: true,
            spill_to_storage: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TraceConfig::default();
        assert_eq!(c.buffer_size, 64 * 1024);
        assert!(c.timing_enabled);
        assert_eq!(c.time_quantum_ns(), 256);
    }
}
