#![warn(missing_docs)]
// Panic-freedom policy: pipeline code must surface typed errors, never
// unwrap its way past them. Tests keep the ergonomic forms.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lazy-trace — hardware-style control-flow tracing
//!
//! This crate models the Intel Processor Trace (PT) capability that
//! Snorlax's client side depends on (§5 of the paper), at the level of
//! fidelity the diagnosis server actually observes:
//!
//! * **Packets** ([`packet`]): a byte-level packet protocol mirroring PT's
//!   — `PSB` sync points, `TNT` packed taken/not-taken conditional-branch
//!   bits, `TIP` indirect-target packets with last-IP compression, `FUP`
//!   flow updates, and the timing packets `TSC`, `MTC`, and `CYC`. Timing
//!   packets are *coarse and quantized*; this is the crate-level
//!   embodiment of the coarse interleaving hypothesis: the decoder can
//!   recover only a partial order of instructions.
//! * **Ring buffers** ([`ring`]): per-thread fixed-size buffers with
//!   overwrite-oldest semantics (the paper's 64 KB default), so a
//!   snapshot may begin mid-packet and the decoder must re-synchronize at
//!   the first `PSB`.
//! * **Encoder/decoder** ([`encoder`], [`decoder`]): the encoder is fed by
//!   the execution substrate (branch outcomes, indirect targets, virtual
//!   TSC); the decoder replays the module CFG against the packet stream
//!   and produces a [`DecodedTrace`] of executed instructions with
//!   [`TimeBounds`] windows between timing packets.
//! * **Driver** ([`driver`]): the kernel-driver facade — per-thread
//!   buffers, snapshot-on-failure, and breakpoint-PC-triggered snapshots
//!   (the paper's ioctl interface used to collect traces from *successful*
//!   executions at a previous failure's location).

pub mod config;
pub mod corrupt;
pub mod decoder;
pub mod driver;
pub mod encoder;
pub mod packet;
pub mod ring;
pub mod stats;
pub mod wire;

pub use config::TraceConfig;
pub use corrupt::{CorruptionOp, Corruptor};
pub use decoder::{
    decode_thread_trace, decode_thread_trace_adaptive, decode_thread_trace_compiled,
    decode_thread_trace_legacy, decode_thread_trace_sharded, drain_event_pool, recycle_events,
    DecodeError, DecodedEvent, DecodedTrace, ExecIndex, TimeBounds, WalkTable, EXIT_TARGET,
};
pub use driver::{
    SnapshotTrigger, SnapshotView, ThreadTrace, ThreadTraceView, TraceDriver, TraceSnapshot,
};
pub use encoder::Encoder;
pub use packet::{find_psb, find_psb_scalar, Packet, PacketDecoder, PacketEncoder, PSB_MARKER};
pub use ring::RingBuffer;
pub use stats::TraceStats;
pub use wire::{
    decode_snapshot, decode_snapshot_view, encode_snapshot, fnv1a32, WireError, WIRE_VERSION,
};
