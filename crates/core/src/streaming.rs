//! Streaming diagnosis with sequential early-exit confidence.
//!
//! The paper's workflow is batch-shaped: collect every report, then
//! diagnose. Its own data shows the cost — MySQL bug 3596 needed 470
//! reports before the root-cause pattern won (§5). This module is the
//! production shape of that workflow: reports stream in one at a time,
//! fold into the mergeable [`PatternStats`](crate::statistics::PatternStats)
//! machinery (streaming is `merge` of singleton collects), and after
//! each fold a *sequential hypothesis test* decides whether the top
//! pattern's F1 lead is already statistically safe to emit.
//!
//! ## The stopping rule
//!
//! After every folded report (failing or successful), the accumulated
//! corpus is rescored exactly as batch diagnosis would score it. Let
//! `top` be the best-ranked pattern and `lead` the gap between its F1
//! and the first score *not* tied with it (ties per
//! [`top_pattern_count`] — measuring the lead against a tied twin would
//! be measuring the lead against itself). The stream converges when,
//! simultaneously:
//!
//! 1. the same `top` pattern has won `stability_window` consecutive
//!    rescoring rounds,
//! 2. `lead > 0`, and
//! 3. `lead >= sqrt(ln(1/(1-confidence)) / (2n))` — a Hoeffding-style
//!    bound with `n` the traces actually scored — so early exits get
//!    rarer exactly when the evidence is thin.
//!
//! An F1 lead can sit at *exactly* zero forever: a runner-up with the
//! same F1 but a different type rank or specificity is not a full-key
//! tie, so it is the measured runner, yet `lead > 0` can never hold.
//! For that case the rule carries a secondary tie-break statistic —
//! the normalized *event-time margin* between the top pattern and the
//! runner in the first failing trace: how much *narrower* the top
//! pattern's tightest inter-event window is than the runner's. The
//! racing window of a real root cause is tight by construction (the
//! interloper squeezed between the coupled accesses), so among
//! F1-tied leaders the tightly-coupled one is the credible root
//! cause. When the lead is exactly zero, a positive tie margin
//! clearing the same Hoeffding bound substitutes for it, so
//! exactly-tied F1 leaders can still converge.
//!
//! Both knobs live in [`ServerConfig`]
//! (`stability_window`, `confidence`). The rule itself is exposed as
//! [`SequentialRule`] so the law "early exit never fires before
//! `stability_window` observations" can be property-tested without
//! building trace corpora.
//!
//! ## Memory bound
//!
//! Long-running streams see unbounded success runs. A seeded
//! reservoir sampler ([`Reservoir`], Algorithm R over a fixed
//! [`XorShift64`]) bounds the retained success corpus at
//! `ServerConfig::stream_reservoir` traces. While the stream fits the
//! reservoir the retained set is the exact arrival-order prefix, so
//! streaming diagnosis is *byte-identical* to batch diagnosis over the
//! consumed reports (`tests/streaming.rs` pins this on the corpus);
//! past the capacity it degrades gracefully into uniform sampling.
//!
//! ## Three front doors
//!
//! * In-process: [`DiagnosisServer::diagnose_streaming`] /
//!   [`StreamingDiagnoser`].
//! * Daemon: the [`StreamSubmit`](crate::daemon::FrameKind::StreamSubmit)
//!   / [`StreamStatus`](crate::daemon::FrameKind::StreamStatus) /
//!   [`StreamFinish`](crate::daemon::FrameKind::StreamFinish) frames,
//!   served by a [`StreamHub`] whose sessions accumulate reports
//!   across connections.
//! * CLI: `snorlax stream submit/status/finish`.

use crate::candidates::select_candidates;
use crate::daemon::{
    decode_failure, decode_snapshots_view, encode_failure, encode_snapshots, Cursor, FrameError,
};
use crate::error::DiagnosisError;
use crate::patterns::{crash_patterns, deadlock_patterns, BugPattern, PatternContext};
use crate::processing::ProcessedTrace;
use crate::server::{Diagnosis, DiagnosisServer, ServerConfig, StageTimes};
use crate::statistics::{score_patterns, top_pattern_count, PatternScore};
use lazy_analysis::PointsTo;
use lazy_ir::{Module, Pc};
use lazy_trace::{SnapshotView, TraceSnapshot};
use lazy_vm::{Failure, FailureKind};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Cap on concurrently open [`StreamHub`] sessions; a client that
/// abandons sessions mid-stream cannot leak unbounded decoded traces.
const MAX_STREAM_SESSIONS: usize = 64;

// ---------------------------------------------------------------------
// Seeded PRNG + reservoir sampler.

/// A tiny deterministic xorshift* PRNG. Not cryptographic — it only has
/// to make the reservoir's replacement choices uniform and replayable.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed` (zero is mapped away — an
    /// all-zero xorshift state is a fixed point).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed | 1 }
    }

    /// Next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A seeded reservoir sampler (Algorithm R): holds at most `capacity`
/// items drawn uniformly from everything ever offered, with a fully
/// deterministic replacement sequence for a given seed.
///
/// Until the reservoir first overflows, the retained items are the
/// exact arrival-order prefix — the property the byte-identity tests
/// lean on.
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
    rng: XorShift64,
}

impl<T> Reservoir<T> {
    /// An empty reservoir of `capacity` slots seeded with `seed`. A
    /// zero capacity is clamped to one slot — a reservoir that can
    /// never hold anything would silently discard the whole corpus.
    pub fn new(capacity: usize, seed: u64) -> Reservoir<T> {
        Reservoir {
            items: Vec::new(),
            capacity: capacity.max(1),
            seen: 0,
            rng: XorShift64::new(seed),
        }
    }

    /// Offers one item; returns whether it was retained. The first
    /// `capacity` offers always retain (in arrival order); offer `i`
    /// past that retains with probability `capacity / i`, evicting a
    /// uniformly chosen incumbent.
    pub fn offer(&mut self, item: T) -> bool {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return true;
        }
        // Uniform j in [0, seen): retain iff j lands in the reservoir.
        let j = self.rng.next_u64() % self.seen;
        if (j as usize) < self.capacity {
            self.items[j as usize] = item;
            true
        } else {
            false
        }
    }

    /// The retained items (arrival order until the first eviction).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Items currently retained.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The slot bound this reservoir was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items ever offered (retained or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

// ---------------------------------------------------------------------
// The sequential stopping rule.

/// The Hoeffding-style bound the lead must clear before an early exit:
/// `sqrt(ln(1/(1-confidence)) / (2n))` for `n` scored traces. Infinite
/// when `n == 0` (no evidence admits no exit); `confidence` is clamped
/// below 1 so the bound stays finite and positive.
pub fn hoeffding_lead_bound(confidence: f64, n: usize) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let c = confidence.clamp(0.0, 1.0 - 1e-12);
    ((1.0 / (1.0 - c)).ln() / (2.0 * n as f64)).sqrt()
}

/// The sequential early-exit test, factored out of the streaming fold
/// so its laws can be property-tested in isolation: convergence
/// requires the *same* top pattern to hold a positive lead for
/// `window` consecutive observations, with the lead clearing
/// [`hoeffding_lead_bound`] at the current sample count.
#[derive(Clone, Debug)]
pub struct SequentialRule {
    window: usize,
    confidence: f64,
    streak: usize,
    observations: usize,
    last_top: Option<BugPattern>,
}

impl SequentialRule {
    /// A rule requiring `window` consecutive stable rounds (clamped to
    /// at least one — a zero window would permit an exit with no
    /// evidence at all) at `confidence`.
    pub fn new(window: usize, confidence: f64) -> SequentialRule {
        SequentialRule {
            window: window.max(1),
            confidence,
            streak: 0,
            observations: 0,
            last_top: None,
        }
    }

    /// Feeds one rescoring round: the current top pattern (`None` when
    /// nothing scored above zero), its lead over the first non-tied
    /// runner-up, the normalized event-time tie margin (only consulted
    /// when the lead is exactly zero), and the number of traces
    /// scored. Returns `true` when the stream may exit early.
    pub fn observe(
        &mut self,
        top: Option<&BugPattern>,
        lead: f64,
        tie_margin: f64,
        n: usize,
    ) -> bool {
        self.observations += 1;
        match top {
            Some(t) if self.last_top.as_ref() == Some(t) => self.streak += 1,
            Some(t) => {
                self.last_top = Some(t.clone());
                self.streak = 1;
            }
            None => {
                self.last_top = None;
                self.streak = 0;
            }
        }
        if self.streak < self.window {
            return false;
        }
        let bound = hoeffding_lead_bound(self.confidence, n);
        if lead > 0.0 {
            return lead >= bound;
        }
        // Exact F1 tie with the runner: the lead is pinned at zero and
        // the primary test can never fire. Fall back to the secondary
        // statistic — a positive event-time margin clearing the same
        // bound means the top pattern's events are measurably more
        // separated in time than the runner's, which the F1 tie alone
        // could not distinguish.
        lead == 0.0 && tie_margin > 0.0 && tie_margin >= bound
    }

    /// Rounds observed so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Consecutive rounds the current top pattern has held.
    pub fn streak(&self) -> usize {
        self.streak
    }

    /// The configured stability window (post-clamp).
    pub fn window(&self) -> usize {
        self.window
    }
}

// ---------------------------------------------------------------------
// Stream reports and outcomes.

/// One report in a diagnosis stream.
#[derive(Clone, Debug)]
pub enum StreamReport {
    /// A snapshot captured at a failing execution.
    Failing(TraceSnapshot),
    /// A snapshot captured at a successful run past the breakpoint.
    Success(TraceSnapshot),
}

/// What a finished (or early-exited) streaming diagnosis produced.
#[derive(Clone, Debug)]
pub struct StreamingOutcome {
    /// The diagnosis — byte-identical (via
    /// [`Diagnosis::render`]) to batch diagnosis over the consumed
    /// reports while the success stream fits the reservoir.
    pub diagnosis: Diagnosis,
    /// Reports folded (including rejected ones).
    pub reports_consumed: usize,
    /// Reports that failed to decode and were rejected alone.
    pub reports_rejected: usize,
    /// Whether the sequential test fired before the stream ran dry.
    pub converged_early: bool,
    /// The lead after each scored fold — the convergence trajectory.
    pub lead_history: Vec<f64>,
}

/// A live snapshot of one stream's progress — the `StreamStatus` /
/// `StreamSubmitAck` wire payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamStatus {
    /// Reports folded so far (including rejected ones).
    pub reports_consumed: u64,
    /// Reports rejected as undecodable.
    pub reports_rejected: u64,
    /// Whether the sequential test has fired.
    pub converged: bool,
    /// The most recent lead (0 before the first scored fold).
    pub lead: f64,
    /// Failing traces retained.
    pub failing: u32,
    /// Successful traces currently retained in the reservoir.
    pub successes: u32,
}

// ---------------------------------------------------------------------
// The accumulating stream state (shared by diagnoser and hub).

/// Everything one stream accumulates: decoded traces, counters, and
/// the sequential rule's state. Fold methods borrow the server they
/// score against so the in-process diagnoser and the daemon hub share
/// one implementation.
struct StreamState {
    failure: Option<Failure>,
    failing: Vec<Arc<ProcessedTrace>>,
    successes: Reservoir<Arc<ProcessedTrace>>,
    reports_consumed: usize,
    reports_rejected: usize,
    lead_history: Vec<f64>,
    rule: SequentialRule,
    converged: bool,
}

impl StreamState {
    fn new(cfg: &ServerConfig) -> StreamState {
        StreamState {
            failure: None,
            failing: Vec::new(),
            successes: Reservoir::new(cfg.stream_reservoir, cfg.stream_seed),
            reports_consumed: 0,
            reports_rejected: 0,
            lead_history: Vec::new(),
            rule: SequentialRule::new(cfg.stability_window, cfg.confidence),
            converged: false,
        }
    }

    fn status(&self) -> StreamStatus {
        StreamStatus {
            reports_consumed: self.reports_consumed as u64,
            reports_rejected: self.reports_rejected as u64,
            converged: self.converged,
            lead: self.lead_history.last().copied().unwrap_or(0.0),
            failing: self.failing.len() as u32,
            successes: self.successes.len() as u32,
        }
    }

    /// Folds one failing snapshot. A snapshot that does not decode is
    /// counted consumed *and* rejected, fails alone, and leaves the
    /// accumulated state untouched.
    fn fold_failing(
        &mut self,
        server: &DiagnosisServer<'_>,
        failure: &Failure,
        view: &SnapshotView<'_>,
    ) -> Result<(), DiagnosisError> {
        let _span = lazy_obs::span!("stream.fold");
        let started = Instant::now();
        self.reports_consumed += 1;
        lazy_obs::counter!("stream.reports_total", 1u64);
        let workers = server.config().resolved_decode_workers();
        let (mut failing, _, _) =
            match server.prepare_shard(std::slice::from_ref(view), &[], workers) {
                Ok(p) => p,
                Err(e) => {
                    self.reports_rejected += 1;
                    lazy_obs::counter!("stream.rejected_total", 1u64);
                    return Err(e);
                }
            };
        if self.failure.is_none() {
            self.failure = Some(failure.clone());
        }
        self.failing.append(&mut failing);
        self.rescore(server);
        lazy_obs::histogram!("stream.fold_us", started.elapsed().as_micros());
        Ok(())
    }

    /// Folds one success snapshot. Mirroring batch `prepare` (which
    /// drops undecodable success traces rather than holding up the
    /// diagnosis), a corrupt success is counted rejected but is not an
    /// error.
    fn fold_success(&mut self, server: &DiagnosisServer<'_>, view: &SnapshotView<'_>) {
        let _span = lazy_obs::span!("stream.fold");
        let started = Instant::now();
        self.reports_consumed += 1;
        lazy_obs::counter!("stream.reports_total", 1u64);
        let workers = server.config().resolved_decode_workers();
        let retained = match server.prepare_shard(&[], std::slice::from_ref(view), workers) {
            Ok((_, mut successes, _)) => successes.pop(),
            Err(_) => None,
        };
        match retained {
            Some(t) => {
                let _ = self.successes.offer(t);
            }
            None => {
                self.reports_rejected += 1;
                lazy_obs::counter!("stream.rejected_total", 1u64);
            }
        }
        self.rescore(server);
        lazy_obs::histogram!("stream.fold_us", started.elapsed().as_micros());
    }

    /// The capped success corpus in retention order — the streaming
    /// analogue of batch `prepare_with`'s `success_factor` cap.
    fn capped_successes(&self, cfg: &ServerConfig) -> Vec<Arc<ProcessedTrace>> {
        let cap = cfg.success_factor * self.failing.len().max(1);
        self.successes.items().iter().take(cap).cloned().collect()
    }

    /// Rescores the accumulated corpus exactly as batch steps 4–7
    /// would, then feeds the sequential rule. No-op until the first
    /// failing trace arrives (there is nothing to diagnose yet).
    fn rescore(&mut self, server: &DiagnosisServer<'_>) {
        let Some(failure) = self.failure.clone() else {
            return;
        };
        if self.failing.is_empty() {
            return;
        }
        let successes = self.capped_successes(server.config());
        let scores = score_stream(server, &failure, &self.failing, &successes);
        let n = self.failing.len() + successes.len();
        let tied = top_pattern_count(&scores);
        let (top, lead, tie_margin) = match scores.first().filter(|s| s.f1 > 0.0) {
            Some(t) => {
                // The runner-up is the first score NOT tied with the
                // top (same F1 + type rank + specificity): an exact
                // multi-pattern tie must not be measured against
                // itself, or tied corpora could never converge.
                let runner = scores.get(tied);
                let lead = t.f1 - runner.map_or(0.0, |s| s.f1);
                // Only an exact F1 tie needs the secondary statistic.
                let tie_margin = match runner {
                    Some(r) if lead == 0.0 => self
                        .failing
                        .first()
                        .map_or(0.0, |t0| tie_break_margin(t0, &t.pattern, &r.pattern)),
                    _ => 0.0,
                };
                (Some(&t.pattern), lead, tie_margin)
            }
            None => (None, 0.0, 0.0),
        };
        self.lead_history.push(lead);
        if self.rule.observe(top, lead, tie_margin, n) && !self.converged {
            self.converged = true;
            lazy_obs::counter!("stream.converged_total", 1u64);
        }
    }

    /// Renders the final diagnosis over the accumulated (capped)
    /// corpus — the same `finish_diagnosis` the batch path runs, so
    /// the render is byte-identical to batch over the consumed
    /// reports.
    fn finish(&self, server: &DiagnosisServer<'_>) -> Result<StreamingOutcome, DiagnosisError> {
        let Some(failure) = self.failure.clone() else {
            return Err(DiagnosisError::EmptyReport);
        };
        if self.failing.is_empty() {
            return Err(DiagnosisError::EmptyReport);
        }
        let started = Instant::now();
        let successes = self.capped_successes(server.config());
        let mut executed: HashSet<Pc> = HashSet::new();
        for t in self.failing.iter().chain(successes.iter()) {
            executed.extend(t.executed.iter().copied());
        }
        let pts_started = Instant::now();
        let pts = PointsTo::analyze_scoped(server.module(), &executed);
        let points_to_micros = pts_started.elapsed().as_micros();
        let diagnosis = server.finish_diagnosis(
            &failure,
            &self.failing,
            &successes,
            &executed,
            &pts,
            StageTimes {
                started,
                decode_micros: 0,
                points_to_micros,
            },
        );
        Ok(StreamingOutcome {
            diagnosis,
            reports_consumed: self.reports_consumed,
            reports_rejected: self.reports_rejected,
            converged_early: self.converged,
            lead_history: self.lead_history.clone(),
        })
    }
}

/// A pattern's event-time margin in one trace: the smallest gap
/// between the last-observed times (`time.lo` of the latest dynamic
/// instance) of the pattern's pcs. Patterns whose events are widely
/// separated in time carry a large margin; fewer than two of the
/// pattern's pcs present in the trace yields zero (no temporal
/// evidence at all).
pub fn event_time_margin(trace: &ProcessedTrace, pattern: &BugPattern) -> f64 {
    let mut times: Vec<u64> = pattern
        .pcs()
        .iter()
        .filter_map(|pc| trace.instances_of(*pc).iter().map(|i| i.time.lo).max())
        .collect();
    if times.len() < 2 {
        return 0.0;
    }
    times.sort_unstable();
    times.windows(2).map(|w| w[1] - w[0]).min().unwrap_or(0) as f64
}

/// The normalized tie-break statistic fed to [`SequentialRule`] when
/// the F1 lead is exactly zero: how much *smaller* the top pattern's
/// [`event_time_margin`] is than the runner's, scaled into `[-1, 1]`
/// so it is comparable to an F1 lead and to the Hoeffding bound.
/// Positive means the top pattern's events are the more tightly
/// coupled in time — the coarse-interleaving signature of a real
/// racing window, where the interloper squeezed between the coupled
/// accesses. Zero when neither pattern has temporal evidence in the
/// trace.
fn tie_break_margin(trace: &ProcessedTrace, top: &BugPattern, runner: &BugPattern) -> f64 {
    let m_top = event_time_margin(trace, top);
    let m_runner = event_time_margin(trace, runner);
    let denom = m_top.max(m_runner);
    if denom <= 0.0 {
        return 0.0;
    }
    (m_runner - m_top) / denom
}

/// Batch steps 4–7 over an accumulated streaming corpus, returning the
/// sorted scores. This mirrors `finish_diagnosis` stage for stage
/// (same points-to scope, candidate truncation, per-trace pattern
/// generation, sort + dedup, type ranks) so the per-fold lead is
/// measured on exactly the scores the final diagnosis will report.
fn score_stream(
    server: &DiagnosisServer<'_>,
    failure: &Failure,
    failing: &[Arc<ProcessedTrace>],
    successes: &[Arc<ProcessedTrace>],
) -> Vec<PatternScore> {
    let module = server.module();
    let cfg = server.config();
    let mut executed: HashSet<Pc> = HashSet::new();
    for t in failing.iter().chain(successes.iter()) {
        executed.extend(t.executed.iter().copied());
    }
    let is_deadlock = matches!(
        failure.kind,
        FailureKind::Deadlock { .. } | FailureKind::Hang
    );
    let pts = PointsTo::analyze_scoped(module, &executed);
    let mut cands = select_candidates(module, &pts, &executed, failure.pc, is_deadlock);
    if cands.ranked.len() > cfg.max_candidates {
        cands.ranked.truncate(cfg.max_candidates);
    }
    let ctx = PatternContext::new(module, &pts, &cands);
    let mut patterns: Vec<BugPattern> = Vec::new();
    for t in failing {
        let mut p = if is_deadlock {
            deadlock_patterns(&ctx, &cands, t)
        } else {
            let mut p = crash_patterns(&ctx, &cands, t);
            p.extend(crate::multivar::multivar_patterns(
                module, &pts, &executed, failure.pc, t, &cands,
            ));
            p
        };
        patterns.append(&mut p);
    }
    patterns.sort();
    patterns.dedup();
    let rank_of: HashMap<Pc, u32> = cands.ranked.iter().map(|r| (r.pc, r.rank)).collect();
    score_patterns(&patterns, failing, successes, &rank_of)
}

// ---------------------------------------------------------------------
// The in-process streaming diagnoser.

/// Ingests one report at a time and exits the moment the sequential
/// test is satisfied — the in-process face of streaming diagnosis.
pub struct StreamingDiagnoser<'s, 'm> {
    server: &'s DiagnosisServer<'m>,
    state: StreamState,
}

impl<'s, 'm> StreamingDiagnoser<'s, 'm> {
    /// A fresh stream for `failure`, scoring against `server`.
    pub fn new(server: &'s DiagnosisServer<'m>, failure: &Failure) -> StreamingDiagnoser<'s, 'm> {
        let mut state = StreamState::new(server.config());
        state.failure = Some(failure.clone());
        StreamingDiagnoser { server, state }
    }

    /// Folds one report and reports whether the stream has converged.
    ///
    /// # Errors
    ///
    /// A failing report that does not decode is rejected alone: the
    /// error describes that report, the accumulated state is untouched,
    /// and the stream continues to accept reports.
    pub fn fold(&mut self, report: &StreamReport) -> Result<bool, DiagnosisError> {
        match report {
            StreamReport::Failing(snap) => {
                let failure = self
                    .state
                    .failure
                    .clone()
                    .ok_or(DiagnosisError::EmptyReport)?;
                self.state
                    .fold_failing(self.server, &failure, &snap.view())?;
            }
            StreamReport::Success(snap) => {
                self.state.fold_success(self.server, &snap.view());
            }
        }
        Ok(self.state.converged)
    }

    /// Whether the sequential test has fired.
    pub fn converged(&self) -> bool {
        self.state.converged
    }

    /// A live progress snapshot.
    pub fn status(&self) -> StreamStatus {
        self.state.status()
    }

    /// Finalizes the stream into a diagnosis.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::EmptyReport`] when no failing report decoded.
    pub fn finish(self) -> Result<StreamingOutcome, DiagnosisError> {
        self.state.finish(self.server)
    }
}

impl<'m> DiagnosisServer<'m> {
    /// Streams `reports` through a [`StreamingDiagnoser`], stopping at
    /// the first report after which the sequential test is satisfied
    /// (the early exit: later reports are never consumed), and returns
    /// the finalized outcome. Corrupt failing reports are rejected
    /// alone and counted in
    /// [`StreamingOutcome::reports_rejected`]; the stream proceeds.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::EmptyReport`] when no failing report decoded
    /// by the time the stream ends.
    pub fn diagnose_streaming<I>(
        &self,
        failure: &Failure,
        reports: I,
    ) -> Result<StreamingOutcome, DiagnosisError>
    where
        I: IntoIterator<Item = StreamReport>,
    {
        let mut diag = StreamingDiagnoser::new(self, failure);
        for report in reports {
            // A rejected report fails alone; everything else streams on.
            if let Ok(true) = diag.fold(&report) {
                break;
            }
        }
        diag.finish()
    }
}

/// Deterministically interleaves failing and successful snapshots into
/// one stream: reports are merged by fractional position (cross-
/// multiplied, no floats) so the mix is even, and the first report is
/// always the first failing snapshot (a stream cannot score before its
/// first failure). Shared by the CLI, bench, and tests so "the same
/// report order" means one thing everywhere.
pub fn interleave_reports(
    failing: &[TraceSnapshot],
    successful: &[TraceSnapshot],
) -> Vec<StreamReport> {
    let (f, s) = (failing.len(), successful.len());
    let mut out = Vec::with_capacity(f + s);
    let (mut fi, mut si) = (0usize, 0usize);
    while fi < f || si < s {
        // Pick the side whose next report sits earlier in its own
        // stream, scaled to a common denominator; ties go failing-first.
        if fi < f && (si >= s || fi * s <= si * f) {
            out.push(StreamReport::Failing(failing[fi].clone()));
            fi += 1;
        } else {
            out.push(StreamReport::Success(successful[si].clone()));
            si += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------
// The daemon-side stream hub.

/// Session-id source for stream clients: unique within this process,
/// with the process id mixed in so concurrent client *processes*
/// sharing one daemon cannot collide.
static NEXT_STREAM_SESSION: AtomicU64 = AtomicU64::new(1);

/// A fresh client-chosen stream session id.
pub fn next_stream_session() -> u64 {
    let n = NEXT_STREAM_SESSION.fetch_add(1, Ordering::Relaxed);
    (u64::from(std::process::id()) << 32) ^ n
}

/// One hub session plus its idle-eviction bookkeeping.
struct StreamSlot {
    state: Arc<Mutex<StreamState>>,
    /// Last client activity (open, submit, or status probe). Sessions
    /// idle past the hub's TTL are evicted on the next admission or
    /// sweep, so an abandoned client cannot pin a capacity slot until
    /// daemon restart.
    touched: Instant,
}

/// The daemon side of streaming diagnosis: sessions keyed by a
/// client-chosen id accumulate reports *across connections* and answer
/// "converged yet?" probes. One hub lives per daemon (like the fleet
/// shard state), so a session survives its submitting connections.
pub struct StreamHub<'m> {
    server: DiagnosisServer<'m>,
    sessions: Mutex<HashMap<u64, StreamSlot>>,
    session_ttl: std::time::Duration,
    evicted: AtomicU64,
}

impl<'m> StreamHub<'m> {
    /// Creates a hub for `module`, pre-warming the walk table so the
    /// first submit does not pay the one-time build cost.
    pub fn new(module: &'m Module, cfg: ServerConfig) -> StreamHub<'m> {
        let session_ttl = cfg.session_ttl;
        let hub = StreamHub {
            server: DiagnosisServer::new(module, cfg),
            sessions: Mutex::new(HashMap::new()),
            session_ttl,
            evicted: AtomicU64::new(0),
        };
        let _ = hub.server.walk_table();
        hub
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, StreamSlot>> {
        self.sessions.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drops every session idle past the TTL, returning how many were
    /// evicted. A submit already in flight on an evicted session
    /// finishes against its own `Arc`; the *next* submit reopens a
    /// fresh session.
    fn sweep_locked(&self, sessions: &mut HashMap<u64, StreamSlot>) -> usize {
        let now = Instant::now();
        let before = sessions.len();
        sessions.retain(|_, slot| now.duration_since(slot.touched) < self.session_ttl);
        let evicted = before - sessions.len();
        if evicted > 0 {
            self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
            lazy_obs::counter!("stream.sessions_evicted_total", evicted as u64);
        }
        evicted
    }

    /// Evicts sessions idle past the configured TTL (the daemon calls
    /// this from its periodic sweep; admissions sweep on their own).
    /// Returns how many sessions were evicted.
    pub fn sweep_expired(&self) -> usize {
        let mut sessions = self.lock_sessions();
        self.sweep_locked(&mut sessions)
    }

    /// Total sessions ever evicted by the idle TTL.
    pub fn sessions_evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Fetches (or opens) `session`, refreshing its idle timestamp.
    /// The map lock is held only for the lookup; folds run under the
    /// per-session mutex so concurrent sessions proceed in parallel
    /// while same-session submits serialize. Admission of a *new*
    /// session first sweeps expired ones, so abandoned sessions never
    /// brick the hub.
    fn session(&self, session: u64, open: bool) -> Result<Arc<Mutex<StreamState>>, DiagnosisError> {
        let mut sessions = self.lock_sessions();
        if let Some(slot) = sessions.get_mut(&session) {
            slot.touched = Instant::now();
            return Ok(Arc::clone(&slot.state));
        }
        if !open {
            return Err(unknown_session(session));
        }
        self.sweep_locked(&mut sessions);
        if sessions.len() >= MAX_STREAM_SESSIONS {
            return Err(DiagnosisError::Remote {
                detail: format!("stream hub at capacity: {MAX_STREAM_SESSIONS} open sessions"),
            });
        }
        let state = Arc::new(Mutex::new(StreamState::new(self.server.config())));
        sessions.insert(
            session,
            StreamSlot {
                state: Arc::clone(&state),
                touched: Instant::now(),
            },
        );
        lazy_obs::counter!("stream.sessions_total", 1u64);
        Ok(state)
    }

    /// Submits one failing report to `session` (opening it on first
    /// use).
    ///
    /// # Errors
    ///
    /// The report's decode failure (the report is still counted as
    /// consumed + rejected — the stream continues), or capacity
    /// exhaustion for a brand-new session.
    pub fn submit_failing(
        &self,
        session: u64,
        failure: &Failure,
        snap: &SnapshotView<'_>,
    ) -> Result<StreamStatus, DiagnosisError> {
        let state = self.session(session, true)?;
        let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
        state.fold_failing(&self.server, failure, snap)?;
        Ok(state.status())
    }

    /// Submits one success report to `session` (opening it on first
    /// use). An undecodable success is counted rejected, never an
    /// error — mirroring batch `prepare`.
    ///
    /// # Errors
    ///
    /// Capacity exhaustion for a brand-new session.
    pub fn submit_success(
        &self,
        session: u64,
        snap: &SnapshotView<'_>,
    ) -> Result<StreamStatus, DiagnosisError> {
        let state = self.session(session, true)?;
        let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
        state.fold_success(&self.server, snap);
        Ok(state.status())
    }

    /// Answers a "converged yet?" probe for `session`.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] when the session was never opened.
    pub fn status(&self, session: u64) -> Result<StreamStatus, DiagnosisError> {
        let state = self.session(session, false)?;
        let state = state.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(state.status())
    }

    /// Finalizes and closes `session`, returning the outcome plus its
    /// rendered report.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] for an unknown session;
    /// [`DiagnosisError::EmptyReport`] when it never received a
    /// decodable failing report (the session closes either way).
    pub fn finish(&self, session: u64) -> Result<(StreamingOutcome, String), DiagnosisError> {
        let slot = self
            .lock_sessions()
            .remove(&session)
            .ok_or_else(|| unknown_session(session))?;
        let state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        let outcome = state.finish(&self.server)?;
        let report = outcome.diagnosis.render(self.server.module());
        Ok((outcome, report))
    }

    /// Sessions currently open (abandoned clients show up here).
    pub fn open_sessions(&self) -> usize {
        self.lock_sessions().len()
    }
}

fn unknown_session(session: u64) -> DiagnosisError {
    DiagnosisError::Remote {
        detail: format!("unknown stream session {session}"),
    }
}

// ---------------------------------------------------------------------
// Wire codecs for the stream frames.

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn cursor(payload: &[u8]) -> Cursor<'_> {
    Cursor {
        bytes: payload,
        pos: 0,
    }
}

fn done(c: &Cursor<'_>) -> Result<(), FrameError> {
    if c.remaining() != 0 {
        return Err(FrameError::BadPayload("trailing bytes"));
    }
    Ok(())
}

/// One decoded `StreamSubmit` payload, borrowing its trace bytes.
pub enum StreamSubmitView<'a> {
    /// A failing report: the observed failure plus its snapshot.
    Failing {
        /// The failure the client observed.
        failure: Failure,
        /// The failing execution's snapshot.
        snap: SnapshotView<'a>,
    },
    /// A success report: one snapshot from a successful run.
    Success {
        /// The successful execution's snapshot.
        snap: SnapshotView<'a>,
    },
}

/// Encodes a [`FrameKind::StreamSubmit`](crate::daemon::FrameKind::StreamSubmit)
/// payload carrying one failing report.
pub fn encode_stream_submit_failing(
    session: u64,
    failure: &Failure,
    snap: &TraceSnapshot,
) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, session);
    out.push(0);
    encode_failure(&mut out, failure);
    encode_snapshots(&mut out, std::slice::from_ref(snap));
    out
}

/// Encodes a [`FrameKind::StreamSubmit`](crate::daemon::FrameKind::StreamSubmit)
/// payload carrying one success report.
pub fn encode_stream_submit_success(session: u64, snap: &TraceSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, session);
    out.push(1);
    encode_snapshots(&mut out, std::slice::from_ref(snap));
    out
}

/// Decodes a `StreamSubmit` payload without copying trace bytes.
///
/// # Errors
///
/// Frame errors for structural corruption (including a report carrying
/// anything other than exactly one snapshot); wire errors when the
/// embedded snapshot fails its own checksum.
pub fn decode_stream_submit_view(
    payload: &[u8],
) -> Result<(u64, StreamSubmitView<'_>), DiagnosisError> {
    let mut c = cursor(payload);
    let session = c.u64().map_err(DiagnosisError::Frame)?;
    let tag = c.u8().map_err(DiagnosisError::Frame)?;
    let view = match tag {
        0 => {
            let failure = decode_failure(&mut c).map_err(DiagnosisError::Frame)?;
            let snap = one_snapshot(&mut c)?;
            StreamSubmitView::Failing { failure, snap }
        }
        1 => StreamSubmitView::Success {
            snap: one_snapshot(&mut c)?,
        },
        _ => {
            return Err(DiagnosisError::Frame(FrameError::BadPayload(
                "stream submit tag",
            )))
        }
    };
    done(&c).map_err(DiagnosisError::Frame)?;
    Ok((session, view))
}

fn one_snapshot<'a>(c: &mut Cursor<'a>) -> Result<SnapshotView<'a>, DiagnosisError> {
    let mut snaps = decode_snapshots_view(c)?;
    if snaps.len() != 1 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "stream submit snapshot count",
        )));
    }
    // len() == 1 was just checked; pop cannot fail.
    snaps
        .pop()
        .ok_or(DiagnosisError::Frame(FrameError::BadPayload(
            "stream submit snapshot count",
        )))
}

/// Encodes a `StreamStatus` / `StreamFinish` request payload (just the
/// session id).
pub fn encode_stream_session(session: u64) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, session);
    out
}

/// Decodes a `StreamStatus` / `StreamFinish` request payload.
///
/// # Errors
///
/// Frame errors on structural corruption.
pub fn decode_stream_session(payload: &[u8]) -> Result<u64, FrameError> {
    let mut c = cursor(payload);
    let session = c.u64()?;
    done(&c)?;
    Ok(session)
}

/// Encodes a `StreamSubmitAck` / `StreamStatusReply` payload.
pub fn encode_stream_status(s: &StreamStatus) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, s.reports_consumed);
    push_u64(&mut out, s.reports_rejected);
    out.push(u8::from(s.converged));
    push_u64(&mut out, s.lead.to_bits());
    push_u32(&mut out, s.failing);
    push_u32(&mut out, s.successes);
    out
}

/// Decodes a `StreamSubmitAck` / `StreamStatusReply` payload.
///
/// # Errors
///
/// Frame errors on structural corruption.
pub fn decode_stream_status(payload: &[u8]) -> Result<StreamStatus, FrameError> {
    let mut c = cursor(payload);
    let s = StreamStatus {
        reports_consumed: c.u64()?,
        reports_rejected: c.u64()?,
        converged: match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(FrameError::BadPayload("converged flag")),
        },
        lead: f64::from_bits(c.u64()?),
        failing: c.u32()?,
        successes: c.u32()?,
    };
    done(&c)?;
    Ok(s)
}

/// A finished stream's wire-friendly summary — the `StreamFinishAck`
/// payload.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamFinishReply {
    /// Reports folded (including rejected ones).
    pub reports_consumed: u64,
    /// Reports rejected as undecodable.
    pub reports_rejected: u64,
    /// Whether the sequential test fired before the finish.
    pub converged_early: bool,
    /// The rendered diagnosis report.
    pub report: String,
    /// The lead after each scored fold.
    pub lead_history: Vec<f64>,
}

/// Encodes a `StreamFinishAck` payload.
pub fn encode_stream_finish_reply(r: &StreamFinishReply) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, r.reports_consumed);
    push_u64(&mut out, r.reports_rejected);
    out.push(u8::from(r.converged_early));
    push_u32(&mut out, r.report.len() as u32);
    out.extend_from_slice(r.report.as_bytes());
    push_u32(&mut out, r.lead_history.len() as u32);
    for lead in &r.lead_history {
        push_u64(&mut out, lead.to_bits());
    }
    out
}

/// Decodes a `StreamFinishAck` payload.
///
/// # Errors
///
/// Frame errors on structural corruption.
pub fn decode_stream_finish_reply(payload: &[u8]) -> Result<StreamFinishReply, FrameError> {
    let mut c = cursor(payload);
    let reports_consumed = c.u64()?;
    let reports_rejected = c.u64()?;
    let converged_early = match c.u8()? {
        0 => false,
        1 => true,
        _ => return Err(FrameError::BadPayload("converged flag")),
    };
    let len = c.u32()? as usize;
    let report = String::from_utf8(c.take(len)?.to_vec())
        .map_err(|_| FrameError::BadPayload("report utf-8"))?;
    let n = c.u32()? as usize;
    if n > c.remaining() / 8 {
        return Err(FrameError::BadPayload("lead history count"));
    }
    let mut lead_history = Vec::with_capacity(n);
    for _ in 0..n {
        lead_history.push(f64::from_bits(c.u64()?));
    }
    done(&c)?;
    Ok(StreamFinishReply {
        reports_consumed,
        reports_rejected,
        converged_early,
        report,
        lead_history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{AccessKind, PatternEvent};

    fn pattern(pc: u64) -> BugPattern {
        BugPattern::OrderViolation {
            first: PatternEvent {
                pc: Pc(pc),
                kind: AccessKind::Write,
            },
            second: PatternEvent {
                pc: Pc(pc + 1),
                kind: AccessKind::Read,
            },
        }
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0);
        }
        // Seed zero is mapped away from the all-zero fixed point.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn reservoir_prefix_is_arrival_order_until_overflow() {
        let mut r = Reservoir::new(4, 7);
        for i in 0..4 {
            assert!(r.offer(i));
        }
        assert_eq!(r.items(), &[0, 1, 2, 3]);
        for i in 4..100 {
            let _ = r.offer(i);
            assert_eq!(r.len(), 4);
        }
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn zero_capacity_reservoir_is_clamped() {
        let mut r: Reservoir<u32> = Reservoir::new(0, 1);
        assert_eq!(r.capacity(), 1);
        assert!(r.offer(9));
        assert_eq!(r.items(), &[9]);
    }

    #[test]
    fn hoeffding_bound_shrinks_with_evidence() {
        assert!(hoeffding_lead_bound(0.95, 0).is_infinite());
        let a = hoeffding_lead_bound(0.95, 5);
        let b = hoeffding_lead_bound(0.95, 50);
        assert!(a > b && b > 0.0);
        // Higher confidence demands a larger lead.
        assert!(hoeffding_lead_bound(0.99, 10) > hoeffding_lead_bound(0.9, 10));
        // A degenerate confidence of 1.0 stays finite via the clamp.
        assert!(hoeffding_lead_bound(1.0, 10).is_finite());
    }

    #[test]
    fn rule_requires_window_and_bound() {
        let mut rule = SequentialRule::new(3, 0.95);
        let p = pattern(0x10);
        // Huge lead, big n: still cannot fire before 3 observations.
        assert!(!rule.observe(Some(&p), 1.0, 0.0, 1000));
        assert!(!rule.observe(Some(&p), 1.0, 0.0, 1000));
        assert!(rule.observe(Some(&p), 1.0, 0.0, 1000));
        // A top switch resets the streak.
        let q = pattern(0x20);
        assert!(!rule.observe(Some(&q), 1.0, 0.0, 1000));
        assert!(!rule.observe(Some(&q), 1.0, 0.0, 1000));
        assert!(rule.observe(Some(&q), 1.0, 0.0, 1000));
        // A lead below the bound blocks the exit even on a long streak.
        let mut weak = SequentialRule::new(1, 0.95);
        assert!(!weak.observe(Some(&p), 0.01, 0.0, 3));
        // Zero lead with no tie margin never exits.
        let mut tied = SequentialRule::new(1, 0.95);
        assert!(!tied.observe(Some(&p), 0.0, 0.0, 1000));
    }

    #[test]
    fn rule_tie_margin_breaks_exact_f1_ties() {
        let p = pattern(0x10);
        // Exactly-tied F1 (lead 0) with a strong positive tie margin:
        // the secondary statistic converges once the streak holds.
        let mut rule = SequentialRule::new(2, 0.95);
        assert!(!rule.observe(Some(&p), 0.0, 0.9, 1000));
        assert!(rule.observe(Some(&p), 0.0, 0.9, 1000));
        // The margin obeys the same Hoeffding bound: thin evidence
        // blocks the tie path exactly as it blocks the lead path.
        let mut thin = SequentialRule::new(1, 0.95);
        assert!(!thin.observe(Some(&p), 0.0, 0.01, 3));
        // A runner with the *larger* margin (negative statistic) never
        // converges the tie.
        let mut neg = SequentialRule::new(1, 0.95);
        assert!(!neg.observe(Some(&p), 0.0, -0.9, 1000));
        // A genuinely positive lead ignores the margin entirely.
        let mut led = SequentialRule::new(1, 0.95);
        assert!(led.observe(Some(&p), 1.0, -0.9, 1000));
    }

    #[test]
    fn stream_status_codec_roundtrips() {
        let s = StreamStatus {
            reports_consumed: 12,
            reports_rejected: 1,
            converged: true,
            lead: 0.375,
            failing: 2,
            successes: 9,
        };
        let wire = encode_stream_status(&s);
        assert_eq!(decode_stream_status(&wire).unwrap(), s);
        for cut in 0..wire.len() {
            assert!(decode_stream_status(&wire[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = wire;
        trailing.push(0);
        assert_eq!(
            decode_stream_status(&trailing),
            Err(FrameError::BadPayload("trailing bytes"))
        );
    }

    #[test]
    fn stream_finish_reply_codec_roundtrips() {
        let r = StreamFinishReply {
            reports_consumed: 40,
            reports_rejected: 2,
            converged_early: true,
            report: "=== Lazy Diagnosis report ===\n".to_owned(),
            lead_history: vec![0.0, 0.25, 0.8125],
        };
        let wire = encode_stream_finish_reply(&r);
        assert_eq!(decode_stream_finish_reply(&wire).unwrap(), r);
        for cut in 0..wire.len() {
            assert!(
                decode_stream_finish_reply(&wire[..cut]).is_err(),
                "cut {cut}"
            );
        }
        // An inflated lead-history count is rejected before allocation.
        let mut inflated = encode_stream_finish_reply(&r);
        let at = inflated.len() - 3 * 8 - 4;
        inflated[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_stream_finish_reply(&inflated).is_err());
    }

    #[test]
    fn stream_session_ids_are_process_unique() {
        let a = next_stream_session();
        let b = next_stream_session();
        assert_ne!(a, b);
    }

    #[test]
    fn interleave_is_deterministic_and_failing_first() {
        let snap = |tag: u64| TraceSnapshot {
            taken_at: tag,
            trigger_tid: 0,
            trigger_pc: 0,
            trigger: lazy_trace::SnapshotTrigger::Failure,
            threads: Vec::new(),
        };
        let failing = vec![snap(1), snap(2)];
        let successful = vec![snap(10), snap(11), snap(12), snap(13)];
        let a = interleave_reports(&failing, &successful);
        let b = interleave_reports(&failing, &successful);
        assert_eq!(a.len(), 6);
        assert!(matches!(a[0], StreamReport::Failing(_)));
        let shape = |r: &[StreamReport]| -> Vec<(bool, u64)> {
            r.iter()
                .map(|x| match x {
                    StreamReport::Failing(s) => (true, s.taken_at),
                    StreamReport::Success(s) => (false, s.taken_at),
                })
                .collect()
        };
        assert_eq!(shape(&a), shape(&b));
        // Every input appears exactly once.
        let mut tags: Vec<u64> = shape(&a).iter().map(|(_, t)| *t).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 2, 10, 11, 12, 13]);
    }
}
