//! The collection client: plays the production fleet (steps 1 and 8).
//!
//! In the paper's deployment, client machines run the program with
//! always-on tracing; a failure triggers a snapshot that is sent to the
//! server, which then instructs clients to snapshot *successful*
//! executions at the failure PC (falling back to predecessor basic
//! blocks when the failure PC cannot be used). This module reproduces
//! that loop with VM runs over a seed sequence: each seed is "one
//! production execution".

use crate::server::DiagnosisServer;
use lazy_ir::Pc;
use lazy_trace::TraceSnapshot;
use lazy_vm::{Failure, RunOutcome, Vm, VmConfig};

/// What a collection campaign produced.
#[derive(Clone, Debug)]
pub struct CollectionOutcome {
    /// The first failure observed (the diagnosis subject).
    pub failure: Failure,
    /// Failure-triggered snapshots (≥ 1).
    pub failing: Vec<TraceSnapshot>,
    /// Breakpoint-triggered snapshots from successful executions.
    pub successful: Vec<TraceSnapshot>,
    /// Seeds that failed, in observation order.
    pub failing_seeds: Vec<u64>,
    /// Total executions performed.
    pub runs: usize,
    /// The breakpoint PC that ended up used for successful traces.
    pub breakpoint_used: Option<Pc>,
}

/// Runs workload executions and harvests failing + successful traces.
pub struct CollectionClient<'m> {
    server: &'m DiagnosisServer<'m>,
    template: VmConfig,
}

impl<'m> CollectionClient<'m> {
    /// Creates a client; `template` supplies the cost model and trace
    /// configuration (its seed, breakpoints, and watch set are
    /// overridden per run).
    pub fn new(server: &'m DiagnosisServer<'m>, template: VmConfig) -> CollectionClient<'m> {
        CollectionClient { server, template }
    }

    fn run_seed(&self, seed: u64, breakpoints: Vec<Pc>) -> RunOutcome {
        let cfg = VmConfig {
            seed,
            breakpoints,
            watch_pcs: Vec::new(),
            ..self.template.clone()
        };
        Vm::run(self.server.module(), cfg)
    }

    /// Phase 1: runs seeds from `first_seed` until a failure occurs
    /// (bounded by `max_runs`); phase 2: collects up to
    /// `success_target` successful snapshots at the failure PC (with
    /// predecessor fallback) and up to `extra_failures` additional
    /// failing snapshots encountered along the way.
    ///
    /// Returns `None` if no failure manifests within the budget.
    pub fn collect(
        &self,
        first_seed: u64,
        max_runs: usize,
        success_target: usize,
        extra_failures: usize,
    ) -> Option<CollectionOutcome> {
        let mut runs = 0usize;
        let mut seed = first_seed;
        // Phase 1: observe the first failure (always-on tracing: the
        // snapshot is captured by the failing run itself).
        let (failure, first_snap, failing_seed) = loop {
            if runs >= max_runs {
                return None;
            }
            let out = self.run_seed(seed, Vec::new());
            runs += 1;
            seed += 1;
            if let Some(f) = out.failure() {
                let f = f.clone();
                match out.snapshot {
                    Some(s) => break (f, s, seed - 1),
                    None => return None,
                }
            }
        };

        let mut outcome = CollectionOutcome {
            failure: failure.clone(),
            failing: vec![first_snap],
            successful: Vec::new(),
            failing_seeds: vec![failing_seed],
            runs,
            breakpoint_used: None,
        };

        // Phase 2: successful traces at the failure PC, with the
        // predecessor-block fallback plan.
        let plan = self.server.breakpoint_plan(failure.pc);
        let mut plan_idx = 0usize;
        while outcome.successful.len() < success_target && runs < max_runs {
            let bp = plan[plan_idx.min(plan.len() - 1)];
            let out = self.run_seed(seed, vec![bp]);
            runs += 1;
            seed += 1;
            if out.is_failure() {
                if outcome.failing.len() < 1 + extra_failures {
                    if let Some(s) = out.snapshot {
                        outcome.failing.push(s);
                        outcome.failing_seeds.push(seed - 1);
                    }
                }
                continue;
            }
            match out.snapshot {
                Some(s) => {
                    outcome.breakpoint_used = Some(bp);
                    outcome.successful.push(s);
                }
                None => {
                    // This successful run never reached the breakpoint:
                    // fall back to the next predecessor block (§4.1).
                    if plan_idx + 1 < plan.len() {
                        plan_idx += 1;
                    }
                }
            }
        }
        outcome.runs = runs;
        Some(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use lazy_ir::{ModuleBuilder, Operand, Type};
    use lazy_vm::FailureKind;

    /// A module that crashes only for some schedules: worker frees a
    /// buffer after a short delay; main reads it after a jittered delay
    /// of similar magnitude — some seeds read-after-free, some don't.
    fn racy_module() -> lazy_ir::Module {
        let mut mb = ModuleBuilder::new("racy");
        let gptr = mb.global("buf", Type::I64.ptr_to(), vec![]);
        let worker = mb.declare("worker", vec![Type::I64], Type::Void);
        {
            let mut f = mb.define(worker);
            let e = f.entry();
            f.switch_to(e);
            f.io("compress", 400_000);
            let p = f.load(gptr.clone(), Type::I64.ptr_to());
            f.free(p);
            f.ret(None);
            f.finish();
        }
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        let buf = f.heap_alloc(Type::I64, Operand::const_int(4));
        f.store(gptr.clone(), buf.clone(), Type::I64.ptr_to());
        let t = f.spawn(worker, Operand::const_int(0));
        f.io("serve", 395_000);
        let p = f.load(gptr.clone(), Type::I64.ptr_to());
        f.load(p, Type::I64);
        f.join(t);
        f.halt();
        f.finish();
        mb.finish().unwrap()
    }

    #[test]
    fn collect_gathers_failing_and_successful_traces() {
        let m = racy_module();
        let server = DiagnosisServer::new(&m, ServerConfig::default());
        let client = CollectionClient::new(&server, VmConfig::default());
        let out = client
            .collect(0, 200, 10, 0)
            .expect("race should fire within 200 seeds");
        assert!(matches!(out.failure.kind, FailureKind::UseAfterFree { .. }));
        assert_eq!(out.failing.len(), 1);
        assert!(!out.successful.is_empty(), "some seeds succeed");
        assert!(out.successful.len() <= 10);
        assert!(out.breakpoint_used.is_some());
        // Successful snapshots were taken at the failure PC (no
        // fallback needed: the load executes in successful runs too).
        assert_eq!(out.breakpoint_used.unwrap(), out.failure.pc);
    }
}
