#![warn(missing_docs)]
// Panic-freedom policy: pipeline code must surface typed errors, never
// unwrap its way past them. Tests keep the ergonomic forms.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lazy-snorlax — Lazy Diagnosis of in-production concurrency bugs
//!
//! The paper's primary contribution (SOSP 2017): a hybrid dynamic-static
//! root-cause diagnosis pipeline that binds cheap, coarse control-flow +
//! timing traces (collected continuously in production by Intel-PT-style
//! hardware) to an interprocedural points-to and type analysis run
//! lazily on a server. The pipeline follows Figure 2 of the paper:
//!
//! 1. a failure (crash/deadlock/assert) triggers a trace snapshot on the
//!    client ([`lazy_vm`] + [`lazy_trace`] in this reproduction);
//! 2. **trace processing** ([`processing`]) identifies executed
//!    instructions and builds a partially-ordered dynamic instruction
//!    trace from the coarse timing packets;
//! 3. **hybrid points-to analysis** ([`lazy_analysis::andersen`] scoped
//!    to executed code) maps the failing operand to candidate
//!    instructions ([`candidates`]);
//! 4. **type-based ranking** ([`lazy_analysis::ranking`]) prioritizes
//!    candidates whose operand types match the failing operand;
//! 5. **bug-pattern computation** ([`patterns`]) generates deadlock,
//!    order-violation, and single-variable atomicity-violation patterns
//!    with partial flow sensitivity (executes-before from timing);
//! 6. **statistical diagnosis** ([`statistics`]) scores each pattern's
//!    F1 over the failing trace plus up to 10× successful traces
//!    collected at the failure PC (with predecessor-block fallback), and
//!    the top-scoring pattern is reported as the root cause.
//!
//! The [`server::DiagnosisServer`] orchestrates steps 2–7 (and
//! [`batch`] fans many failure reports across worker threads behind a
//! shared incremental points-to cache);
//! [`client::CollectionClient`] plays the production fleet, re-running
//! the workload to harvest failing and successful snapshots; and
//! [`accuracy`] computes the paper's ordering-accuracy metric A_O
//! (normalized Kendall tau) against VM ground truth.
//!
//! When the coarse interleaving hypothesis does not hold for a bug (the
//! target events' time windows overlap), the pipeline does not guess:
//! it reports the target events *without* ordering (§7), which is
//! surfaced as [`patterns::BugPattern::UnorderedTargets`].

pub mod accuracy;
pub mod batch;
pub mod candidates;
pub mod client;
pub mod daemon;
pub mod error;
pub mod fleet;
pub mod multivar;
pub mod patterns;
pub mod processing;
pub mod reactor;
pub mod remote;
pub mod server;
pub mod statistics;
pub mod streaming;

pub use accuracy::{kendall_tau_distance, ordering_accuracy};
pub use batch::{BatchConfig, BatchJob, BatchJobView, BatchOutcome, BatchStats};
pub use candidates::{select_candidates, CandidateSet};
pub use client::{CollectionClient, CollectionOutcome};
pub use daemon::{serve, DaemonConfig, DaemonStats, FrameError, FrameKind};
pub use error::DiagnosisError;
pub use fleet::{
    module_fingerprint, BugKey, FleetCoordinator, FleetOutcome, FleetReport, FleetRouter,
    FleetShard, ShardConn, ShardReport, ShardStats,
};
pub use multivar::multivar_patterns;
pub use patterns::{AtomKind, BugPattern, DeadlockEdge, PatternEvent};
pub use processing::{process_snapshot, DynInstance, ProcessedTrace};
pub use remote::RemoteClient;
pub use server::{Diagnosis, DiagnosisServer, PipelineStats, ServerConfig};
pub use statistics::{score_patterns, PatternScore, PatternStats, DEFAULT_TYPE_RANK};
pub use streaming::{
    event_time_margin, hoeffding_lead_bound, interleave_reports, next_stream_session, Reservoir,
    SequentialRule, StreamHub, StreamReport, StreamStatus, StreamingDiagnoser, StreamingOutcome,
};
