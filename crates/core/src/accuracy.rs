//! Ordering accuracy (the paper's A_O metric, §6.1).
//!
//! A_O compares the order of target instructions a tool diagnosed
//! against the manually-verified ground-truth order, using the
//! normalized Kendall tau distance K (the number of pairwise
//! disagreements):
//!
//! `A_O = 100 * (1 - K(O_S, O_M) / #pairs(O_S ∪ O_M))`
//!
//! The reproduction's ground truth comes from the VM's exact event
//! recorder rather than manual verification — strictly stronger.

use lazy_ir::Pc;
use std::collections::{HashMap, HashSet};

/// Counts pairwise order disagreements between two ordered lists over
/// the elements they share (the Kendall tau distance restricted to
/// common elements).
pub fn kendall_tau_distance(a: &[Pc], b: &[Pc]) -> usize {
    let pos_a: HashMap<Pc, usize> = a.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let pos_b: HashMap<Pc, usize> = b.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let common: Vec<Pc> = a
        .iter()
        .filter(|p| pos_b.contains_key(p))
        .copied()
        .collect();
    let mut k = 0;
    for i in 0..common.len() {
        for j in (i + 1)..common.len() {
            let (x, y) = (common[i], common[j]);
            let ord_a = pos_a[&x] < pos_a[&y];
            let ord_b = pos_b[&x] < pos_b[&y];
            if ord_a != ord_b {
                k += 1;
            }
        }
    }
    k
}

/// Computes A_O (percent) between the diagnosed order and the ground
/// truth.
///
/// # Examples
///
/// ```
/// use lazy_ir::Pc;
/// use lazy_snorlax::ordering_accuracy;
///
/// let truth = [Pc(1), Pc(2), Pc(3)];
/// assert_eq!(ordering_accuracy(&truth, &truth), 100.0);
/// // One swapped pair out of three: the paper's worked example.
/// let swapped = [Pc(1), Pc(3), Pc(2)];
/// assert!((ordering_accuracy(&swapped, &truth) - 66.6).abs() < 1.0);
/// ```
///
/// Returns 100 when both lists are empty or share no pairs and agree on
/// membership; elements present in only one list contribute pairs to
/// the denominator (disagreement about membership costs accuracy in the
/// paper's definition, since `#pairs` is over the union).
pub fn ordering_accuracy(diagnosed: &[Pc], truth: &[Pc]) -> f64 {
    let union: HashSet<Pc> = diagnosed.iter().chain(truth.iter()).copied().collect();
    let n = union.len();
    if n < 2 {
        return 100.0;
    }
    let pairs = n * (n - 1) / 2;
    let k = kendall_tau_distance(diagnosed, truth);
    100.0 * (1.0 - k as f64 / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcs(v: &[u64]) -> Vec<Pc> {
        v.iter().map(|&x| Pc(x)).collect()
    }

    #[test]
    fn identical_lists_are_perfect() {
        let a = pcs(&[1, 2, 3]);
        assert_eq!(kendall_tau_distance(&a, &a), 0);
        assert_eq!(ordering_accuracy(&a, &a), 100.0);
    }

    #[test]
    fn paper_example_single_swap() {
        // [I1, I2, I3] vs [I1, I3, I2]: K = 1 (the paper's example).
        let a = pcs(&[1, 2, 3]);
        let b = pcs(&[1, 3, 2]);
        assert_eq!(kendall_tau_distance(&a, &b), 1);
        // 3 elements → 3 pairs → A_O = 100 * (1 - 1/3).
        let acc = ordering_accuracy(&a, &b);
        assert!((acc - 100.0 * (1.0 - 1.0 / 3.0)).abs() < 1e-9, "{acc}");
    }

    #[test]
    fn full_reversal_is_worst() {
        let a = pcs(&[1, 2, 3, 4]);
        let b = pcs(&[4, 3, 2, 1]);
        assert_eq!(kendall_tau_distance(&a, &b), 6);
        assert_eq!(ordering_accuracy(&a, &b), 0.0);
    }

    #[test]
    fn disjoint_membership_costs_accuracy() {
        let a = pcs(&[1, 2]);
        let b = pcs(&[1, 2, 3]);
        // Common pairs agree (K = 0) but the union has 3 pairs.
        assert_eq!(kendall_tau_distance(&a, &b), 0);
        assert_eq!(ordering_accuracy(&a, &b), 100.0);
    }

    #[test]
    fn empty_lists_are_trivially_accurate() {
        assert_eq!(ordering_accuracy(&[], &[]), 100.0);
    }

    #[test]
    fn symmetric() {
        let a = pcs(&[5, 1, 9, 2]);
        let b = pcs(&[1, 5, 2, 9]);
        assert_eq!(kendall_tau_distance(&a, &b), kendall_tau_distance(&b, &a));
    }
}
