//! Batched multi-snapshot diagnosis.
//!
//! A production fleet does not report failures one at a time: when a
//! concurrency bug ships, the server receives *many* snapshots of the
//! same failure (plus their success corpora) in bursts. This module
//! adds a batch front end to [`DiagnosisServer`] that
//!
//! 1. fans the per-job pipeline — snapshot decode + trace processing,
//!    scoped points-to, pattern computation and scoring — across a
//!    scoped worker pool (`std::thread::scope`; the VM stays
//!    single-threaded, only the server parallelizes), and
//! 2. shares one [`PointsToCache`] across all jobs, so snapshots with
//!    identical executed sets hit a solved fixpoint outright and
//!    superset scopes are solved by replaying only their delta.
//!
//! **Determinism**: results come back indexed by job, each job's
//! pipeline is self-contained, and cached points-to returns the same
//! unique least fixpoint a from-scratch solve produces — so a batch
//! diagnosis renders byte-identical to running [`DiagnosisServer::
//! diagnose`] sequentially on each job (the corpus regression test in
//! `tests/batch.rs` asserts exactly this). Only the timing fields of
//! [`PipelineStats`](crate::PipelineStats) differ.

use crate::error::DiagnosisError;
use crate::server::{DiagnosisServer, SnapshotMemo, StageTimes};
use crate::Diagnosis;
use lazy_analysis::{CacheStats, PointsTo, PointsToCache};
use lazy_trace::{SnapshotView, TraceSnapshot};
use lazy_vm::Failure;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// One diagnosis request: a failure with its collected snapshots.
#[derive(Clone, Copy)]
pub struct BatchJob<'a> {
    /// The failure the client observed.
    pub failure: &'a Failure,
    /// Snapshots from failing executions (at least one must decode).
    pub failing: &'a [TraceSnapshot],
    /// Snapshots from successful executions at the failure breakpoint.
    pub successful: &'a [TraceSnapshot],
}

/// [`BatchJob`] over borrowed snapshot views — the zero-copy ingest
/// shape. The daemon builds these directly over a request payload
/// still sitting in the connection's read buffer; per-thread trace
/// bytes are never copied. The `Failure` is owned because the view
/// path decodes it from the wire (it is a few words, not trace bytes).
#[derive(Clone)]
pub struct BatchJobView<'a> {
    /// The failure the client observed.
    pub failure: Failure,
    /// Snapshot views from failing executions.
    pub failing: Vec<SnapshotView<'a>>,
    /// Snapshot views from successful executions.
    pub successful: Vec<SnapshotView<'a>>,
}

/// Batch execution knobs.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Share an incremental points-to cache across jobs. Off, every
    /// job solves its scope from scratch (still in parallel).
    pub use_cache: bool,
    /// Solved-scope retention of the shared cache.
    pub cache_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            workers: 0,
            use_cache: true,
            cache_capacity: PointsToCache::DEFAULT_CAPACITY,
        }
    }
}

impl BatchConfig {
    fn resolved_workers(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let w = if self.workers == 0 { hw } else { self.workers };
        w.clamp(1, jobs.max(1))
    }
}

/// What one [`DiagnosisServer::diagnose_batch`] call did.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Jobs in the batch.
    pub jobs: usize,
    /// Worker threads actually spawned.
    pub workers: usize,
    /// Batch wall time, microseconds.
    pub wall_micros: u128,
    /// Shared points-to cache counters (zeroes when the cache is off).
    pub cache: CacheStats,
    /// Snapshots served from the cross-job memo instead of being
    /// decoded again (identical success-corpus snapshots attached to
    /// several jobs are processed once and `Arc`-shared).
    pub snapshot_dedup_hits: usize,
    /// Jobs that returned an error (corrupt snapshot, decode failure,
    /// worker panic — any [`DiagnosisError`]). The rest of the batch is
    /// unaffected.
    pub failed_jobs: usize,
    /// The subset of `failed_jobs` that failed because a pipeline
    /// worker panicked (rather than a typed input rejection).
    pub panicked_jobs: usize,
    /// Jobs that found the shared points-to cache poisoned and solved
    /// their scope from scratch instead. The fixpoint is identical, so
    /// only the job's points-to timing degrades.
    pub cache_poison_fallbacks: usize,
}

/// The diagnoses of one batch, in job order.
pub struct BatchOutcome {
    /// Per-job results, index-aligned with the submitted jobs. A failed
    /// job carries its [`DiagnosisError`]; it never fails the batch.
    pub diagnoses: Vec<Result<Diagnosis, DiagnosisError>>,
    /// Execution counters.
    pub stats: BatchStats,
    /// Telemetry delta covering this batch: every counter, histogram
    /// and span the pipeline recorded between batch start and batch
    /// end. Empty (but well-formed) when the `telemetry` feature is
    /// off, so consumers need no `cfg`.
    pub telemetry: lazy_obs::TelemetryReport,
}

impl<'m> DiagnosisServer<'m> {
    /// Diagnoses a batch of failure reports against this server's
    /// module, fanning jobs across worker threads and (optionally)
    /// sharing an incremental points-to cache between them.
    ///
    /// Each returned diagnosis is identical — up to timing counters —
    /// to what [`DiagnosisServer::diagnose`] returns for the same job.
    pub fn diagnose_batch<'a>(&self, jobs: &[BatchJob<'a>], cfg: &BatchConfig) -> BatchOutcome {
        let views: Vec<BatchJobView<'a>> = jobs
            .iter()
            .map(|j| BatchJobView {
                failure: j.failure.clone(),
                failing: j.failing.iter().map(TraceSnapshot::view).collect(),
                successful: j.successful.iter().map(TraceSnapshot::view).collect(),
            })
            .collect();
        self.diagnose_batch_views(&views, cfg)
    }

    /// [`DiagnosisServer::diagnose_batch`] over [`BatchJobView`]s — the
    /// zero-copy ingest path the daemon feeds from its connection read
    /// buffers. Semantics (fan-out, shared cache, memo, degradation)
    /// are identical to the owned entry point.
    pub fn diagnose_batch_views<'a>(
        &self,
        jobs: &[BatchJobView<'a>],
        cfg: &BatchConfig,
    ) -> BatchOutcome {
        let started = Instant::now();
        let telemetry_baseline = lazy_obs::snapshot();
        let batch_span = lazy_obs::span!("batch.run");
        lazy_obs::counter!("batch.jobs_total", jobs.len());
        let workers = cfg.resolved_workers(jobs.len());
        let cache = cfg
            .use_cache
            .then(|| Mutex::new(PointsToCache::with_capacity(cfg.cache_capacity)));
        // Jobs of one batch typically share success corpora; the memo
        // processes each distinct snapshot once across the whole batch.
        let memo = SnapshotMemo::new();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Diagnosis, DiagnosisError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let degradation = Degradation::default();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    // catch_unwind per job is what makes degradation
                    // *graceful*: a panicking job records a typed error
                    // in its own slot instead of unwinding through the
                    // scope and aborting every other job in the batch.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        self.run_job(job, cache.as_ref(), &memo, &degradation)
                    }))
                    .unwrap_or_else(|p| Err(DiagnosisError::from_panic("diagnose", p)));
                    // A poisoned slot still holds a well-formed Option;
                    // recover the guard rather than abandoning the job.
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                });
            }
        });

        let diagnoses: Vec<Result<Diagnosis, DiagnosisError>> = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| Err(DiagnosisError::worker_lost("diagnose")))
            })
            .collect();
        let cache_stats = cache.map_or(CacheStats::default(), |c| {
            c.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .stats()
        });
        let failed_jobs = diagnoses.iter().filter(|d| d.is_err()).count();
        let panicked_jobs = diagnoses
            .iter()
            .filter(|d| matches!(d, Err(DiagnosisError::WorkerPanic { .. })))
            .count();
        let cache_poison_fallbacks = degradation.cache_poison_fallbacks.load(Ordering::Relaxed);
        lazy_obs::counter!("batch.jobs_failed", failed_jobs);
        lazy_obs::counter!("batch.jobs_panicked", panicked_jobs);
        lazy_obs::counter!("batch.cache_poison_fallbacks", cache_poison_fallbacks);
        // Close the batch span before the delta snapshot so the report
        // covers the fan-out span itself.
        drop(batch_span);
        BatchOutcome {
            diagnoses,
            stats: BatchStats {
                jobs: jobs.len(),
                workers,
                wall_micros: started.elapsed().as_micros(),
                cache: cache_stats,
                snapshot_dedup_hits: memo.hits(),
                failed_jobs,
                panicked_jobs,
                cache_poison_fallbacks,
            },
            telemetry: lazy_obs::snapshot().since(&telemetry_baseline),
        }
    }

    fn run_job<'a>(
        &self,
        job: &BatchJobView<'a>,
        cache: Option<&Mutex<PointsToCache>>,
        memo: &SnapshotMemo<'a>,
        degradation: &Degradation,
    ) -> Result<Diagnosis, DiagnosisError> {
        let _span = lazy_obs::span!("batch.job");
        let started = Instant::now();
        // Decode budget 1 per job: batch-level parallelism already
        // saturates the pool, so per-thread sharding would only add
        // stitch overhead.
        let (failing_traces, success_traces, executed) =
            self.prepare_with(&job.failing, &job.successful, Some(memo), 1)?;
        let decode_micros = started.elapsed().as_micros();

        let pts_started = Instant::now();
        let pts = match cache {
            // A poisoned cache means a job panicked mid-solve and may
            // have left a partial fixpoint behind; do NOT recover the
            // guard. Solving from scratch instead yields the same
            // unique least fixpoint — the determinism contract holds,
            // this job just pays full points-to cost.
            Some(c) => match c.lock() {
                Ok(mut guard) => guard.analyze_scoped(self.module(), &executed),
                Err(_) => {
                    degradation
                        .cache_poison_fallbacks
                        .fetch_add(1, Ordering::Relaxed);
                    PointsTo::analyze_scoped(self.module(), &executed)
                }
            },
            None => PointsTo::analyze_scoped(self.module(), &executed),
        };
        let points_to_micros = pts_started.elapsed().as_micros();

        Ok(self.finish_diagnosis(
            &job.failure,
            &failing_traces,
            &success_traces,
            &executed,
            &pts,
            StageTimes {
                started,
                decode_micros,
                points_to_micros,
            },
        ))
    }
}

/// Cross-worker degradation counters, accumulated lock-free while the
/// batch runs and reported once in [`BatchStats`].
#[derive(Default)]
struct Degradation {
    cache_poison_fallbacks: AtomicUsize,
}
