//! The diagnosis server: orchestrates pipeline steps 2–7.
//!
//! The server receives trace snapshots from clients — one (or more) from
//! failing executions, plus up to 10× as many from successful
//! executions collected at the failure PC — and runs the full Lazy
//! Diagnosis pipeline. The paper's headline properties hold by
//! construction here: the analysis is a function of the *trace* size,
//! not the program size (hybrid points-to is scoped to executed code),
//! and a single failure is enough to produce a diagnosis (no sampling).

use crate::candidates::select_candidates;
use crate::patterns::{crash_patterns, deadlock_patterns, BugPattern, PatternContext};
use crate::processing::{process_snapshot, ProcessedTrace};
use crate::statistics::{score_patterns, PatternScore};
use lazy_analysis::PointsTo;
use lazy_ir::{Cfg, Module, Pc};
use lazy_trace::{DecodeError, ExecIndex, TraceConfig, TraceSnapshot};
use lazy_vm::{Failure, FailureKind};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Instant;

/// Server-side configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Trace decode configuration (must match the clients').
    pub trace: TraceConfig,
    /// Cap on successful traces used, as a multiple of failing traces
    /// (the paper empirically fixes 10×, §5).
    pub success_factor: usize,
    /// Cap on ranked candidates carried into pattern computation.
    pub max_candidates: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            trace: TraceConfig::default(),
            success_factor: 10,
            max_candidates: 128,
        }
    }
}

/// Per-stage instruction counts, the measure behind the paper's
/// Figure 7 (each stage's contribution to accuracy is its reduction of
/// the instruction population the next stage must consider) and
/// Table 4 (analysis time).
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    /// Static instructions in the module.
    pub static_insts: usize,
    /// Distinct instructions executed per the traces (after step 2).
    pub executed_insts: usize,
    /// Executed instructions with pointer operands (points-to
    /// population).
    pub pointer_insts: usize,
    /// Candidates after hybrid points-to aliasing (step 4).
    pub candidates: usize,
    /// Candidates with rank 1 after type ranking (step 5).
    pub rank1_candidates: usize,
    /// Patterns generated (step 6).
    pub patterns: usize,
    /// Patterns with the top F1 (step 7).
    pub top_patterns: usize,
    /// Server-side analysis wall time, microseconds (total; the
    /// per-stage fields below sum to roughly this).
    pub analysis_micros: u128,
    /// Snapshot decode + trace processing time (steps 2–3).
    pub decode_micros: u128,
    /// Scoped points-to analysis time (step 4). For batch jobs served
    /// from the incremental cache this includes lock wait.
    pub points_to_micros: u128,
    /// Candidate/pattern/scoring time (steps 4–7 after points-to).
    pub pattern_micros: u128,
}

/// The server's verdict for one failure.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// All scored patterns, best first.
    pub scores: Vec<PatternScore>,
    /// Stage statistics.
    pub stats: PipelineStats,
    /// The effective failing access the pipeline keyed on.
    pub failing_pc: Pc,
    /// Whether the deadlock path was taken.
    pub is_deadlock: bool,
    /// The root-cause pattern's instructions ordered by their observed
    /// execution time in the failing trace (events the failure
    /// pre-empted come last). This is `O_S` for the A_O metric.
    pub ordered_events: Vec<Pc>,
}

impl Diagnosis {
    /// The top-scoring pattern, if any pattern scored above zero.
    pub fn root_cause(&self) -> Option<&PatternScore> {
        self.scores.first().filter(|s| s.f1 > 0.0)
    }

    /// The diagnosed target instructions in observed execution order
    /// (for the A_O accuracy metric).
    pub fn diagnosed_order(&self) -> Vec<Pc> {
        self.ordered_events.clone()
    }

    /// Returns `true` if the diagnosis fell back to unordered target
    /// reporting (the coarse interleaving hypothesis did not hold).
    pub fn is_unordered_fallback(&self) -> bool {
        matches!(
            self.root_cause().map(|s| &s.pattern),
            Some(BugPattern::UnorderedTargets { .. })
        )
    }

    /// Renders a human-readable report.
    pub fn render(&self, module: &Module) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== Lazy Diagnosis report ===");
        let _ = writeln!(
            out,
            "failing access: {}",
            module.describe_pc(self.failing_pc)
        );
        let _ = writeln!(
            out,
            "pipeline: {} static -> {} executed -> {} candidates -> {} rank-1 -> {} patterns",
            self.stats.static_insts,
            self.stats.executed_insts,
            self.stats.candidates,
            self.stats.rank1_candidates,
            self.stats.patterns
        );
        match self.root_cause() {
            Some(top) => {
                let _ = writeln!(
                    out,
                    "root cause [{}] F1={:.3} (precision {:.3}, recall {:.3}):",
                    top.pattern.signature(),
                    top.f1,
                    top.precision,
                    top.recall
                );
                match &top.pattern {
                    BugPattern::Deadlock { edges } => {
                        for (i, e) in edges.iter().enumerate() {
                            let _ = writeln!(out, "  thread {}:", (b'A' + i as u8) as char);
                            let _ = writeln!(out, "    holds  {}", module.describe_pc(e.hold_pc));
                            let _ = writeln!(out, "    wants  {}", module.describe_pc(e.want_pc));
                        }
                    }
                    _ => {
                        for pc in top.pattern.pcs() {
                            let _ = writeln!(out, "  {}", module.describe_pc(pc));
                        }
                    }
                }
                // Runner-up patterns, for the developer's context.
                let runners: Vec<&PatternScore> = self
                    .scores
                    .iter()
                    .skip(1)
                    .take(3)
                    .filter(|s| s.f1 > 0.0)
                    .collect();
                if !runners.is_empty() {
                    let _ = writeln!(out, "runners-up:");
                    for r in runners {
                        let _ = writeln!(
                            out,
                            "  [{}] F1={:.3} over {:?}",
                            r.pattern.signature(),
                            r.f1,
                            r.pattern.pcs()
                        );
                    }
                }
            }
            None => {
                let _ = writeln!(out, "no pattern correlated with the failure");
            }
        }
        out
    }
}

/// The diagnosis server for one module.
pub struct DiagnosisServer<'m> {
    module: &'m Module,
    index: ExecIndex,
    cfg: ServerConfig,
}

impl<'m> DiagnosisServer<'m> {
    /// Creates a server for `module` ("the bitcode file used by the
    /// server-side analysis", §5).
    pub fn new(module: &'m Module, cfg: ServerConfig) -> DiagnosisServer<'m> {
        DiagnosisServer {
            module,
            index: ExecIndex::build(module),
            cfg,
        }
    }

    /// The module this server diagnoses.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Decodes and processes one snapshot (steps 2–3).
    ///
    /// # Errors
    ///
    /// Propagates decode failures.
    pub fn process(&self, snapshot: &TraceSnapshot) -> Result<ProcessedTrace, DecodeError> {
        process_snapshot(self.module, &self.index, &self.cfg.trace, snapshot)
    }

    /// The breakpoint PCs a client should try, in order, to capture
    /// successful traces for a failure at `failing_pc`: the failure PC
    /// itself, then the first instruction of each predecessor basic
    /// block by increasing distance (§4.1's fallback).
    pub fn breakpoint_plan(&self, failing_pc: Pc) -> Vec<Pc> {
        let mut plan = vec![failing_pc];
        if let Some(loc) = self.module.loc_of_pc(failing_pc) {
            let func = self.module.func(loc.func);
            let cfg = Cfg::build(func);
            for b in cfg.predecessor_walk(loc.block) {
                plan.push(func.block(b).insts[0].pc);
            }
        }
        plan
    }

    /// Runs the full pipeline (steps 2–7) over already-collected
    /// snapshots.
    ///
    /// # Errors
    ///
    /// Fails if no failing snapshot decodes.
    pub fn diagnose(
        &self,
        failure: &Failure,
        failing: &[TraceSnapshot],
        successful: &[TraceSnapshot],
    ) -> Result<Diagnosis, DecodeError> {
        let started = Instant::now();
        let (failing_traces, success_traces, executed) = self.prepare(failing, successful)?;
        let decode_micros = started.elapsed().as_micros();

        // Step 4: hybrid (scope-restricted) points-to analysis.
        let pts_started = Instant::now();
        let pts = PointsTo::analyze_scoped(self.module, &executed);
        let points_to_micros = pts_started.elapsed().as_micros();

        Ok(self.finish_diagnosis(
            failure,
            &failing_traces,
            &success_traces,
            &executed,
            &pts,
            StageTimes {
                started,
                decode_micros,
                points_to_micros,
            },
        ))
    }

    /// Steps 2–3 for a set of snapshots: decode + trace processing,
    /// plus the executed-instruction union.
    ///
    /// # Errors
    ///
    /// Fails if no failing snapshot decodes (success-side decode
    /// failures are skipped, mirroring a production server that cannot
    /// hold up a diagnosis for one corrupt success trace).
    pub(crate) fn prepare(
        &self,
        failing: &[TraceSnapshot],
        successful: &[TraceSnapshot],
    ) -> Result<Prepared, DecodeError> {
        let mut failing_traces = Vec::new();
        for s in failing {
            failing_traces.push(self.process(s)?);
        }
        if failing_traces.is_empty() {
            return Err(DecodeError::NoSync);
        }
        let success_cap = self.cfg.success_factor * failing_traces.len().max(1);
        let mut success_traces = Vec::new();
        for s in successful.iter().take(success_cap) {
            if let Ok(t) = self.process(s) {
                success_traces.push(t);
            }
        }

        // Step 2: executed set (union over received traces).
        let mut executed: HashSet<Pc> = HashSet::new();
        for t in failing_traces.iter().chain(success_traces.iter()) {
            executed.extend(t.executed.iter().copied());
        }
        Ok((failing_traces, success_traces, executed))
    }

    /// Steps 4–7 given an already-computed points-to result. The
    /// diagnosis depends on `pts` only through its points-to *sets*, so
    /// any analysis returning the scoped fixpoint (from scratch or via
    /// the incremental cache) yields an identical diagnosis.
    pub(crate) fn finish_diagnosis(
        &self,
        failure: &Failure,
        failing_traces: &[ProcessedTrace],
        success_traces: &[ProcessedTrace],
        executed: &HashSet<Pc>,
        pts: &PointsTo,
        times: StageTimes,
    ) -> Diagnosis {
        let pattern_started = Instant::now();
        // Steps 4–5: candidate selection + type ranking.
        let is_deadlock = matches!(
            failure.kind,
            FailureKind::Deadlock { .. } | FailureKind::Hang
        );
        let mut cands = select_candidates(self.module, pts, executed, failure.pc, is_deadlock);
        if cands.ranked.len() > self.cfg.max_candidates {
            cands.ranked.truncate(self.cfg.max_candidates);
        }

        // Step 6: bug-pattern computation on each failing trace (plus
        // the multi-variable extension for crashes feeding from a
        // variable pair — the paper's §7 future work).
        let ctx = PatternContext::new(self.module, pts, &cands);
        let mut patterns: Vec<BugPattern> = Vec::new();
        for t in failing_traces {
            let mut p = if is_deadlock {
                deadlock_patterns(&ctx, &cands, t)
            } else {
                let mut p = crash_patterns(&ctx, &cands, t);
                p.extend(crate::multivar::multivar_patterns(
                    self.module,
                    pts,
                    executed,
                    failure.pc,
                    t,
                    &cands,
                ));
                p
            };
            patterns.append(&mut p);
        }
        patterns.sort();
        patterns.dedup();

        // Step 7: statistical diagnosis (with the §4.3 type ranks as
        // the tie-break).
        let rank_of: std::collections::HashMap<Pc, u32> =
            cands.ranked.iter().map(|r| (r.pc, r.rank)).collect();
        let scores = score_patterns(&patterns, failing_traces, success_traces, &rank_of);
        let top_patterns = match scores.first() {
            Some(t) => scores
                .iter()
                .filter(|s| {
                    (s.f1 - t.f1).abs() < 1e-12
                        && s.type_rank == t.type_rank
                        && s.pattern.pcs().len() == t.pattern.pcs().len()
                })
                .count(),
            None => 0,
        };

        // Order the root cause's events by observed time in the first
        // failing trace (never-executed late events sort last).
        let ordered_events = match scores.first().filter(|s| s.f1 > 0.0) {
            Some(top) => {
                let t0 = &failing_traces[0];
                let mut pcs: Vec<Pc> = top.pattern.pcs();
                pcs.dedup();
                let mut keyed: Vec<(u64, usize, Pc)> = pcs
                    .into_iter()
                    .enumerate()
                    .map(|(i, pc)| {
                        let t = t0
                            .instances_of(pc)
                            .iter()
                            .map(|inst| inst.time.lo)
                            .max()
                            .unwrap_or(u64::MAX);
                        (t, i, pc)
                    })
                    .collect();
                keyed.sort();
                keyed.into_iter().map(|(_, _, pc)| pc).collect()
            }
            None => Vec::new(),
        };

        let stats = PipelineStats {
            static_insts: self.module.inst_count(),
            executed_insts: executed.len(),
            pointer_insts: cands.pointer_insts_executed,
            candidates: cands.ranked.len(),
            rank1_candidates: cands.rank1_count(),
            patterns: patterns.len(),
            top_patterns: if patterns.is_empty() { 0 } else { top_patterns },
            analysis_micros: times.started.elapsed().as_micros(),
            decode_micros: times.decode_micros,
            points_to_micros: times.points_to_micros,
            pattern_micros: pattern_started.elapsed().as_micros(),
        };
        Diagnosis {
            scores,
            stats,
            failing_pc: cands.failing_pc,
            is_deadlock,
            ordered_events,
        }
    }
}

/// Decoded failing traces, decoded successful traces, and the executed
/// instruction union — the output of [`DiagnosisServer::prepare`].
pub(crate) type Prepared = (Vec<ProcessedTrace>, Vec<ProcessedTrace>, HashSet<Pc>);

/// Wall-clock bookkeeping threaded from the pipeline's front half into
/// [`DiagnosisServer::finish_diagnosis`].
pub(crate) struct StageTimes {
    /// When the whole job started (total time measured from here).
    pub(crate) started: Instant,
    /// Microseconds spent in steps 2–3.
    pub(crate) decode_micros: u128,
    /// Microseconds spent in step 4 (points-to).
    pub(crate) points_to_micros: u128,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazy_ir::{ModuleBuilder, Operand, Type};

    #[test]
    fn breakpoint_plan_walks_predecessors() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        let mid = f.block("mid");
        let tail = f.block("tail");
        f.switch_to(e);
        f.br(mid);
        f.switch_to(mid);
        f.br(tail);
        f.switch_to(tail);
        let g = f.copy(Operand::const_int(0));
        let _ = g;
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let server = DiagnosisServer::new(&m, ServerConfig::default());
        let halt_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, lazy_ir::InstKind::Halt))
            .map(|(i, _)| i.pc)
            .unwrap();
        let plan = server.breakpoint_plan(halt_pc);
        assert_eq!(plan[0], halt_pc);
        assert!(plan.len() >= 3, "predecessor blocks included: {plan:?}");
    }
}
