//! The diagnosis server: orchestrates pipeline steps 2–7.
//!
//! The server receives trace snapshots from clients — one (or more) from
//! failing executions, plus up to 10× as many from successful
//! executions collected at the failure PC — and runs the full Lazy
//! Diagnosis pipeline. The paper's headline properties hold by
//! construction here: the analysis is a function of the *trace* size,
//! not the program size (hybrid points-to is scoped to executed code),
//! and a single failure is enough to produce a diagnosis (no sampling).

use crate::candidates::select_candidates;
use crate::error::DiagnosisError;
use crate::patterns::{crash_patterns, deadlock_patterns, BugPattern, PatternContext};
use crate::processing::{process_snapshot_view, ProcessedTrace};
use crate::statistics::{score_patterns, top_pattern_count, PatternScore};
use lazy_analysis::PointsTo;
use lazy_ir::{Cfg, Module, Pc};
use lazy_trace::{ExecIndex, SnapshotView, TraceConfig, TraceSnapshot, WalkTable};
use lazy_vm::{Failure, FailureKind};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Server-side configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Trace decode configuration (must match the clients').
    pub trace: TraceConfig,
    /// Cap on successful traces used, as a multiple of failing traces
    /// (the paper empirically fixes 10×, §5).
    pub success_factor: usize,
    /// Cap on ranked candidates carried into pattern computation.
    pub max_candidates: usize,
    /// Worker threads for snapshot decode (steps 2–3): snapshots of one
    /// report decode concurrently, and large thread streams additionally
    /// use PSB-sharded decode. `0` means one per available core. The
    /// result is bit-identical regardless of the setting.
    pub decode_workers: usize,
    /// Streaming mode: consecutive scored folds the same top pattern
    /// must lead before the sequential test may declare convergence
    /// (clamped to at least 1).
    pub stability_window: usize,
    /// Streaming mode: fixed confidence for the early-exit bound. The
    /// top pattern's F1 lead over the runner-up must exceed the
    /// Hoeffding-style threshold `sqrt(ln(1/(1-confidence)) / (2n))`
    /// at sample size `n` before convergence is declared.
    pub confidence: f64,
    /// Streaming mode: capacity of the seeded reservoir sampler that
    /// bounds the retained success corpus (clamped to at least 1).
    pub stream_reservoir: usize,
    /// Streaming mode: seed for the reservoir sampler, so replaying the
    /// same report order reproduces the same retained corpus bit for
    /// bit.
    pub stream_seed: u64,
    /// Daemon session stores (`StreamHub`, `FleetShard`): sessions idle
    /// longer than this are evicted on the next admission or sweep, so
    /// an abandoned client cannot permanently occupy a capacity slot.
    pub session_ttl: std::time::Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            trace: TraceConfig::default(),
            success_factor: 10,
            max_candidates: 128,
            decode_workers: 0,
            stability_window: 3,
            confidence: 0.95,
            stream_reservoir: 256,
            stream_seed: 0x5eed_5eed_5eed_5eed,
            session_ttl: std::time::Duration::from_secs(300),
        }
    }
}

impl ServerConfig {
    pub(crate) fn resolved_decode_workers(&self) -> usize {
        if self.decode_workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.decode_workers
        }
    }
}

/// Per-stage instruction counts, the measure behind the paper's
/// Figure 7 (each stage's contribution to accuracy is its reduction of
/// the instruction population the next stage must consider) and
/// Table 4 (analysis time).
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    /// Static instructions in the module.
    pub static_insts: usize,
    /// Distinct instructions executed per the traces (after step 2).
    pub executed_insts: usize,
    /// Executed instructions with pointer operands (points-to
    /// population).
    pub pointer_insts: usize,
    /// Candidates after hybrid points-to aliasing (step 4).
    pub candidates: usize,
    /// Candidates with rank 1 after type ranking (step 5).
    pub rank1_candidates: usize,
    /// Patterns generated (step 6).
    pub patterns: usize,
    /// Patterns with the top F1 (step 7).
    pub top_patterns: usize,
    /// Total decoded events across every trace this diagnosis used
    /// (failing + retained successful). Batch jobs sharing memoized
    /// snapshots each count the shared trace's events here, so summing
    /// across jobs can exceed the decoder's own per-snapshot totals by
    /// exactly the dedup hits.
    pub events_total: usize,
    /// Server-side analysis wall time, microseconds (total; the
    /// per-stage fields below sum to roughly this).
    pub analysis_micros: u128,
    /// Snapshot decode + trace processing time (steps 2–3).
    pub decode_micros: u128,
    /// Scoped points-to analysis time (step 4). For batch jobs served
    /// from the incremental cache this includes lock wait.
    pub points_to_micros: u128,
    /// Candidate/pattern/scoring time (steps 4–7 after points-to).
    pub pattern_micros: u128,
    /// Packet-level resynchronizations across every decoded snapshot
    /// (failing + successful) — nonzero when ring buffers wrapped
    /// mid-packet or packets were lost.
    pub decode_resyncs: u32,
    /// `CYC` timing deltas dropped for want of a time anchor across
    /// every decoded snapshot — time silently lost at wrapped-buffer
    /// heads.
    pub cyc_dropped: u64,
    /// Duplicated `MTC` coarse-counter bytes ignored across every
    /// decoded snapshot — repeated packets (after corruption or a PSB
    /// splice) that would otherwise have advanced virtual time by a
    /// spurious 256-tick wrap each.
    pub mtc_dups: u64,
}

/// The server's verdict for one failure.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// All scored patterns, best first.
    pub scores: Vec<PatternScore>,
    /// Stage statistics.
    pub stats: PipelineStats,
    /// The effective failing access the pipeline keyed on.
    pub failing_pc: Pc,
    /// Whether the deadlock path was taken.
    pub is_deadlock: bool,
    /// The root-cause pattern's instructions ordered by their observed
    /// execution time in the failing trace (events the failure
    /// pre-empted come last). This is `O_S` for the A_O metric.
    pub ordered_events: Vec<Pc>,
}

/// Human-readable label for the `i`-th party of a rendered pattern:
/// `A`..`Z` for the first 26, then `T26`, `T27`, … — deadlock cycles
/// are unbounded in party count, so the label must be too.
fn thread_label(i: usize) -> String {
    if i < 26 {
        char::from(b'A' + i as u8).to_string()
    } else {
        format!("T{i}")
    }
}

impl Diagnosis {
    /// The top-scoring pattern, if any pattern scored above zero.
    pub fn root_cause(&self) -> Option<&PatternScore> {
        self.scores.first().filter(|s| s.f1 > 0.0)
    }

    /// The diagnosed target instructions in observed execution order
    /// (for the A_O accuracy metric).
    pub fn diagnosed_order(&self) -> Vec<Pc> {
        self.ordered_events.clone()
    }

    /// Returns `true` if the diagnosis fell back to unordered target
    /// reporting (the coarse interleaving hypothesis did not hold).
    pub fn is_unordered_fallback(&self) -> bool {
        matches!(
            self.root_cause().map(|s| &s.pattern),
            Some(BugPattern::UnorderedTargets { .. })
        )
    }

    /// Renders a human-readable report.
    pub fn render(&self, module: &Module) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== Lazy Diagnosis report ===");
        let _ = writeln!(
            out,
            "failing access: {}",
            module.describe_pc(self.failing_pc)
        );
        let _ = writeln!(
            out,
            "pipeline: {} static -> {} executed -> {} candidates -> {} rank-1 -> {} patterns",
            self.stats.static_insts,
            self.stats.executed_insts,
            self.stats.candidates,
            self.stats.rank1_candidates,
            self.stats.patterns
        );
        match self.root_cause() {
            Some(top) => {
                let _ = writeln!(
                    out,
                    "root cause [{}] F1={:.3} (precision {:.3}, recall {:.3}):",
                    top.pattern.signature(),
                    top.f1,
                    top.precision,
                    top.recall
                );
                match &top.pattern {
                    BugPattern::Deadlock { edges } => {
                        for (i, e) in edges.iter().enumerate() {
                            let _ = writeln!(out, "  thread {}:", thread_label(i));
                            let _ = writeln!(out, "    holds  {}", module.describe_pc(e.hold_pc));
                            let _ = writeln!(out, "    wants  {}", module.describe_pc(e.want_pc));
                        }
                    }
                    _ => {
                        for pc in top.pattern.pcs() {
                            let _ = writeln!(out, "  {}", module.describe_pc(pc));
                        }
                    }
                }
                // Runner-up patterns, for the developer's context.
                let runners: Vec<&PatternScore> = self
                    .scores
                    .iter()
                    .skip(1)
                    .take(3)
                    .filter(|s| s.f1 > 0.0)
                    .collect();
                if !runners.is_empty() {
                    let _ = writeln!(out, "runners-up:");
                    for r in runners {
                        let _ = writeln!(
                            out,
                            "  [{}] F1={:.3} over {:?}",
                            r.pattern.signature(),
                            r.f1,
                            r.pattern.pcs()
                        );
                    }
                }
            }
            None => {
                let _ = writeln!(out, "no pattern correlated with the failure");
            }
        }
        out
    }
}

/// The diagnosis server for one module.
pub struct DiagnosisServer<'m> {
    module: &'m Module,
    index: ExecIndex,
    /// Cross-job compiled walk table: built lazily at the first decode
    /// this server performs, then shared read-only by every subsequent
    /// job, fan-out worker, and fleet round.
    walk_table: OnceLock<WalkTable>,
    cfg: ServerConfig,
}

impl<'m> DiagnosisServer<'m> {
    /// Creates a server for `module` ("the bitcode file used by the
    /// server-side analysis", §5).
    pub fn new(module: &'m Module, cfg: ServerConfig) -> DiagnosisServer<'m> {
        DiagnosisServer {
            module,
            index: ExecIndex::build(module),
            walk_table: OnceLock::new(),
            cfg,
        }
    }

    /// The module this server diagnoses.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The server's configuration (streaming folds read the sequential
    /// test and reservoir knobs from here).
    pub(crate) fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The server's compiled [`WalkTable`], building (and caching) it
    /// on first use. Fleet shards call this at construction to move the
    /// one-time build cost out of round-1 latency.
    pub(crate) fn walk_table(&self) -> &WalkTable {
        self.walk_table
            .get_or_init(|| WalkTable::build(self.module))
    }

    /// Decodes and processes one snapshot (steps 2–3).
    ///
    /// # Errors
    ///
    /// Propagates decode failures as [`DiagnosisError`].
    pub fn process(&self, snapshot: &TraceSnapshot) -> Result<ProcessedTrace, DiagnosisError> {
        process_snapshot_view(
            self.module,
            &self.index,
            Some(self.walk_table()),
            &self.cfg.trace,
            &snapshot.view(),
            self.cfg.resolved_decode_workers(),
        )
    }

    /// The breakpoint PCs a client should try, in order, to capture
    /// successful traces for a failure at `failing_pc`: the failure PC
    /// itself, then the first instruction of each predecessor basic
    /// block by increasing distance (§4.1's fallback).
    pub fn breakpoint_plan(&self, failing_pc: Pc) -> Vec<Pc> {
        let mut plan = vec![failing_pc];
        if let Some(loc) = self.module.loc_of_pc(failing_pc) {
            let func = self.module.func(loc.func);
            let cfg = Cfg::build(func);
            for b in cfg.predecessor_walk(loc.block) {
                // An empty predecessor block has no PC to break on.
                if let Some(first) = func.block(b).insts.first() {
                    plan.push(first.pc);
                }
            }
        }
        plan
    }

    /// Runs the full pipeline (steps 2–7) over already-collected
    /// snapshots.
    ///
    /// # Errors
    ///
    /// Fails if no failing snapshot decodes, or with
    /// [`DiagnosisError::EmptyReport`] when `failing` is empty.
    pub fn diagnose(
        &self,
        failure: &Failure,
        failing: &[TraceSnapshot],
        successful: &[TraceSnapshot],
    ) -> Result<Diagnosis, DiagnosisError> {
        let failing: Vec<SnapshotView<'_>> = failing.iter().map(TraceSnapshot::view).collect();
        let successful: Vec<SnapshotView<'_>> =
            successful.iter().map(TraceSnapshot::view).collect();
        self.diagnose_views(failure, &failing, &successful)
    }

    /// [`DiagnosisServer::diagnose`] over borrowed [`SnapshotView`]s —
    /// the zero-copy ingest path. The daemon hands request payloads
    /// straight from its connection read buffers through here; trace
    /// bytes are never copied between the socket and the decoder.
    ///
    /// # Errors
    ///
    /// Same contract as [`DiagnosisServer::diagnose`].
    pub fn diagnose_views(
        &self,
        failure: &Failure,
        failing: &[SnapshotView<'_>],
        successful: &[SnapshotView<'_>],
    ) -> Result<Diagnosis, DiagnosisError> {
        let _span = lazy_obs::span!("diagnose.job");
        let started = Instant::now();
        let (failing_traces, success_traces, executed) = self.prepare_with(
            failing,
            successful,
            None,
            self.cfg.resolved_decode_workers(),
        )?;
        let decode_micros = started.elapsed().as_micros();

        // Step 4: hybrid (scope-restricted) points-to analysis.
        let pts_started = Instant::now();
        let pts = PointsTo::analyze_scoped(self.module, &executed);
        let points_to_micros = pts_started.elapsed().as_micros();

        Ok(self.finish_diagnosis(
            failure,
            &failing_traces,
            &success_traces,
            &executed,
            &pts,
            StageTimes {
                started,
                decode_micros,
                points_to_micros,
            },
        ))
    }

    /// Steps 2–3 with an explicit decode-worker budget and an optional
    /// cross-job snapshot memo (batch mode: the same success corpus is
    /// typically attached to many jobs, so its snapshots are processed
    /// once and shared by `Arc`).
    ///
    /// All snapshots of the report are processed concurrently under the
    /// worker budget, and each snapshot's threads decode concurrently
    /// too ([`process_snapshot_view`]); aggregation order is fixed, so
    /// the result is bit-identical to sequential processing.
    ///
    /// # Errors
    ///
    /// Fails if no failing snapshot decodes (success-side decode
    /// failures are skipped, mirroring a production server that cannot
    /// hold up a diagnosis for one corrupt success trace), or with
    /// [`DiagnosisError::EmptyReport`] when `failing` is empty.
    pub(crate) fn prepare_with<'a>(
        &self,
        failing: &[SnapshotView<'a>],
        successful: &[SnapshotView<'a>],
        memo: Option<&SnapshotMemo<'a>>,
        workers: usize,
    ) -> Result<Prepared, DiagnosisError> {
        if failing.is_empty() {
            return Err(DiagnosisError::EmptyReport);
        }
        let success_cap = self.cfg.success_factor * failing.len().max(1);
        let successful = &successful[..successful.len().min(success_cap)];
        self.prepare_traces(failing, successful, memo, workers)
    }

    /// [`DiagnosisServer::prepare_with`] for one fleet shard's
    /// partition. The coordinator applies the global success cap
    /// *before* routing (a per-shard cap would depend on the shard
    /// count and break byte-identity with single-node), and a shard may
    /// legitimately hold zero failing traces when there are fewer
    /// failing reports than shards — so neither the cap nor the
    /// `EmptyReport` check applies here.
    pub(crate) fn prepare_shard(
        &self,
        failing: &[SnapshotView<'_>],
        successful: &[SnapshotView<'_>],
        workers: usize,
    ) -> Result<Prepared, DiagnosisError> {
        self.prepare_traces(failing, successful, None, workers)
    }

    /// Shared decode body: `successful` is already capped by the caller.
    fn prepare_traces<'a>(
        &self,
        failing: &[SnapshotView<'a>],
        successful: &[SnapshotView<'a>],
        memo: Option<&SnapshotMemo<'a>>,
        workers: usize,
    ) -> Result<Prepared, DiagnosisError> {
        let snapshots: Vec<&SnapshotView<'a>> = failing.iter().chain(successful.iter()).collect();

        let outer = workers.clamp(1, snapshots.len().max(1));
        let inner = (workers / outer).max(1);
        // Build the walk table before fanning out: get_or_init inside
        // the workers would serialize their first decodes on it.
        let table = Some(self.walk_table());
        let process_one = |s: &SnapshotView<'a>| -> Processed {
            if let Some(m) = memo {
                if let Some(hit) = m.lookup(s) {
                    return Ok(hit);
                }
                let t = Arc::new(process_snapshot_view(
                    self.module,
                    &self.index,
                    table,
                    &self.cfg.trace,
                    s,
                    inner,
                )?);
                m.insert(s.clone(), Arc::clone(&t));
                Ok(t)
            } else {
                Ok(Arc::new(process_snapshot_view(
                    self.module,
                    &self.index,
                    table,
                    &self.cfg.trace,
                    s,
                    inner,
                )?))
            }
        };
        let results: Vec<Processed> = if outer > 1 {
            let slots: Vec<Mutex<Option<Processed>>> =
                snapshots.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..outer {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(s) = snapshots.get(i) else { break };
                        // catch_unwind per snapshot: one panicking
                        // snapshot fails that snapshot only, and the
                        // panic must not unwind through the scope
                        // (which would abort every other snapshot).
                        let r = catch_unwind(AssertUnwindSafe(|| process_one(s)))
                            .unwrap_or_else(|p| Err(DiagnosisError::from_panic("process", p)));
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .unwrap_or_else(|| Err(DiagnosisError::worker_lost("process")))
                })
                .collect()
        } else {
            snapshots
                .iter()
                .map(|s| {
                    catch_unwind(AssertUnwindSafe(|| process_one(s)))
                        .unwrap_or_else(|p| Err(DiagnosisError::from_panic("process", p)))
                })
                .collect()
        };

        let mut results = results.into_iter();
        let mut failing_traces = Vec::with_capacity(failing.len());
        for r in results.by_ref().take(failing.len()) {
            failing_traces.push(r?);
        }
        // Success-side decode failures are skipped, mirroring a
        // production server that cannot hold up a diagnosis for one
        // corrupt success trace.
        let success_traces: Vec<Arc<ProcessedTrace>> = results.filter_map(Result::ok).collect();

        // Step 2: executed set (union over received traces).
        let mut executed: HashSet<Pc> = HashSet::new();
        for t in failing_traces.iter().chain(success_traces.iter()) {
            executed.extend(t.executed.iter().copied());
        }
        Ok((failing_traces, success_traces, executed))
    }

    /// Steps 4–7 given an already-computed points-to result. The
    /// diagnosis depends on `pts` only through its points-to *sets*, so
    /// any analysis returning the scoped fixpoint (from scratch or via
    /// the incremental cache) yields an identical diagnosis.
    pub(crate) fn finish_diagnosis(
        &self,
        failure: &Failure,
        failing_traces: &[Arc<ProcessedTrace>],
        success_traces: &[Arc<ProcessedTrace>],
        executed: &HashSet<Pc>,
        pts: &PointsTo,
        times: StageTimes,
    ) -> Diagnosis {
        let pattern_started = Instant::now();
        // Steps 4–5: candidate selection + type ranking.
        let is_deadlock = matches!(
            failure.kind,
            FailureKind::Deadlock { .. } | FailureKind::Hang
        );
        let rank_span = lazy_obs::span!("rank.candidates");
        let mut cands = select_candidates(self.module, pts, executed, failure.pc, is_deadlock);
        if cands.ranked.len() > self.cfg.max_candidates {
            cands.ranked.truncate(self.cfg.max_candidates);
        }
        drop(rank_span);
        lazy_obs::counter!("rank.candidates_total", cands.ranked.len());
        lazy_obs::counter!("rank.rank1_total", cands.rank1_count());

        // Step 6: bug-pattern computation on each failing trace (plus
        // the multi-variable extension for crashes feeding from a
        // variable pair — the paper's §7 future work).
        let patterns_span = lazy_obs::span!("patterns.compute");
        let ctx = PatternContext::new(self.module, pts, &cands);
        let mut patterns: Vec<BugPattern> = Vec::new();
        for t in failing_traces {
            let mut p = if is_deadlock {
                deadlock_patterns(&ctx, &cands, t)
            } else {
                let mut p = crash_patterns(&ctx, &cands, t);
                p.extend(crate::multivar::multivar_patterns(
                    self.module,
                    pts,
                    executed,
                    failure.pc,
                    t,
                    &cands,
                ));
                p
            };
            patterns.append(&mut p);
        }
        patterns.sort();
        patterns.dedup();
        drop(patterns_span);
        lazy_obs::counter!("patterns.generated_total", patterns.len());

        // Step 7: statistical diagnosis (with the §4.3 type ranks as
        // the tie-break).
        let stats_span = lazy_obs::span!("stats.score");
        let rank_of: std::collections::HashMap<Pc, u32> =
            cands.ranked.iter().map(|r| (r.pc, r.rank)).collect();
        let scores = score_patterns(&patterns, failing_traces, success_traces, &rank_of);
        let top_patterns = top_pattern_count(&scores);
        drop(stats_span);
        lazy_obs::counter!("stats.patterns_scored_total", scores.len());

        // Order the root cause's events by observed time in the first
        // failing trace (never-executed late events sort last).
        let ordered_events = match scores.first().filter(|s| s.f1 > 0.0) {
            Some(top) => {
                let t0 = &failing_traces[0];
                ordered_events_for(top, |pc| {
                    t0.instances_of(pc).iter().map(|inst| inst.time.lo).max()
                })
            }
            None => Vec::new(),
        };

        let all_traces = || failing_traces.iter().chain(success_traces.iter());
        let stats = PipelineStats {
            static_insts: self.module.inst_count(),
            executed_insts: executed.len(),
            pointer_insts: cands.pointer_insts_executed,
            candidates: cands.ranked.len(),
            rank1_candidates: cands.rank1_count(),
            patterns: patterns.len(),
            top_patterns: if patterns.is_empty() { 0 } else { top_patterns },
            events_total: all_traces().map(|t| t.event_count).sum(),
            analysis_micros: times.started.elapsed().as_micros(),
            decode_micros: times.decode_micros,
            points_to_micros: times.points_to_micros,
            pattern_micros: pattern_started.elapsed().as_micros(),
            decode_resyncs: all_traces().map(|t| t.resyncs).sum(),
            cyc_dropped: all_traces().map(|t| t.cyc_dropped).sum(),
            mtc_dups: all_traces().map(|t| t.mtc_dups).sum(),
        };
        lazy_obs::histogram!("diagnose.analysis_us", stats.analysis_micros);
        Diagnosis {
            scores,
            stats,
            failing_pc: cands.failing_pc,
            is_deadlock,
            ordered_events,
        }
    }
}

/// Orders the root-cause pattern's instructions by observed execution
/// time: `time_of` maps a PC to its last observed `time.lo` in the
/// reference failing trace (`None` when the failure pre-empted the
/// event, which sorts last). Consecutive duplicates collapse first so a
/// pattern revisiting a PC reports it once per visit site, and ties
/// keep pattern order. Shared verbatim by the in-process path and the
/// fleet coordinator (which receives `time_of` over the wire) — the
/// `O_S` ordering must not depend on where the trace lives.
pub(crate) fn ordered_events_for(
    top: &PatternScore,
    time_of: impl Fn(Pc) -> Option<u64>,
) -> Vec<Pc> {
    let mut pcs: Vec<Pc> = top.pattern.pcs();
    pcs.dedup();
    let mut keyed: Vec<(u64, usize, Pc)> = pcs
        .into_iter()
        .enumerate()
        .map(|(i, pc)| (time_of(pc).unwrap_or(u64::MAX), i, pc))
        .collect();
    keyed.sort();
    keyed.into_iter().map(|(_, _, pc)| pc).collect()
}

/// Decoded failing traces, decoded successful traces, and the executed
/// instruction union — the output of [`DiagnosisServer::prepare`].
/// Traces are `Arc`-shared so batch jobs can reuse identical
/// success-corpus snapshots without reprocessing (or copying) them.
pub(crate) type Prepared = (
    Vec<Arc<ProcessedTrace>>,
    Vec<Arc<ProcessedTrace>>,
    HashSet<Pc>,
);

/// One snapshot's decode+processing outcome, `Arc`-shared for reuse.
type Processed = Result<Arc<ProcessedTrace>, DiagnosisError>;

/// Memo bucket: the snapshots hashing to one content key, each with its
/// processed trace. Views are cheap (per-thread they hold a slice, not
/// the bytes), so the memo stores view clones rather than references.
type MemoBucket<'a> = Vec<(SnapshotView<'a>, Arc<ProcessedTrace>)>;

/// A cross-job memo of processed snapshots, keyed by snapshot content.
///
/// Batch jobs for the same failure PC typically attach the *same*
/// success corpus; processing each shared snapshot once and handing out
/// [`Arc`] clones removes the largest redundant cost in a batch. Lookup
/// hashes the snapshot content (FNV-1a) and confirms with full
/// equality, so a hash collision can never alias two distinct
/// snapshots.
pub(crate) struct SnapshotMemo<'a> {
    entries: Mutex<HashMap<u64, MemoBucket<'a>>>,
    hits: AtomicUsize,
}

impl<'a> SnapshotMemo<'a> {
    pub(crate) fn new() -> SnapshotMemo<'a> {
        SnapshotMemo {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
        }
    }

    /// Content hash over everything a snapshot's equality sees.
    fn key(s: &SnapshotView<'_>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&s.taken_at.to_le_bytes());
        eat(&s.trigger_tid.to_le_bytes());
        eat(&s.trigger_pc.to_le_bytes());
        for t in &s.threads {
            eat(&t.tid.to_le_bytes());
            eat(&[u8::from(t.wrapped)]);
            eat(t.bytes);
        }
        h
    }

    fn lookup(&self, s: &SnapshotView<'_>) -> Option<Arc<ProcessedTrace>> {
        // A poisoned memo only means some worker panicked mid-insert;
        // the map itself is never left mid-mutation (inserts are a
        // single `push`), so recovering the guard is safe.
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let found = entries
            .get(&Self::key(s))?
            .iter()
            .find(|(snap, _)| snap == s)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        lazy_obs::counter!("batch.snapshot_dedup_hits_total", 1u64);
        Some(Arc::clone(&found.1))
    }

    fn insert(&self, s: SnapshotView<'a>, t: Arc<ProcessedTrace>) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(Self::key(&s))
            .or_default()
            .push((s, t));
    }

    /// Snapshots served from the memo instead of being reprocessed.
    pub(crate) fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Wall-clock bookkeeping threaded from the pipeline's front half into
/// [`DiagnosisServer::finish_diagnosis`].
pub(crate) struct StageTimes {
    /// When the whole job started (total time measured from here).
    pub(crate) started: Instant,
    /// Microseconds spent in steps 2–3.
    pub(crate) decode_micros: u128,
    /// Microseconds spent in step 4 (points-to).
    pub(crate) points_to_micros: u128,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazy_ir::{ModuleBuilder, Operand, Type};

    #[test]
    fn breakpoint_plan_walks_predecessors() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        let mid = f.block("mid");
        let tail = f.block("tail");
        f.switch_to(e);
        f.br(mid);
        f.switch_to(mid);
        f.br(tail);
        f.switch_to(tail);
        let g = f.copy(Operand::const_int(0));
        let _ = g;
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let server = DiagnosisServer::new(&m, ServerConfig::default());
        let halt_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, lazy_ir::InstKind::Halt))
            .map(|(i, _)| i.pc)
            .unwrap();
        let plan = server.breakpoint_plan(halt_pc);
        assert_eq!(plan[0], halt_pc);
        assert!(plan.len() >= 3, "predecessor blocks included: {plan:?}");
    }

    /// Regression: deadlock rendering used `(b'A' + i) as char`, which
    /// prints punctuation past party 25 and overflows `u8` (a debug
    /// panic) past ~57 parties. Labels must stay readable and total:
    /// `A`..`Z`, then `T26`, `T27`, ….
    #[test]
    fn render_labels_more_than_26_deadlock_parties() {
        use crate::patterns::DeadlockEdge;

        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();

        let parties = 60usize;
        let edges: Vec<DeadlockEdge> = (0..parties)
            .map(|i| DeadlockEdge {
                hold_pc: Pc(0x1000 + i as u64),
                want_pc: Pc(0x2000 + i as u64),
            })
            .collect();
        let d = Diagnosis {
            scores: vec![PatternScore {
                pattern: BugPattern::Deadlock { edges },
                type_rank: 1,
                f1: 1.0,
                precision: 1.0,
                recall: 1.0,
                fail_support: 1,
                success_support: 0,
            }],
            stats: PipelineStats::default(),
            failing_pc: Pc(0x1000),
            is_deadlock: true,
            ordered_events: Vec::new(),
        };
        let report = d.render(&m);
        assert!(report.contains("  thread A:"), "first party keeps A");
        assert!(report.contains("  thread Z:"), "party 25 keeps Z");
        assert!(report.contains("  thread T26:"), "party 26 is T26");
        assert!(
            report.contains(&format!("  thread T{}:", parties - 1)),
            "last party labeled numerically"
        );
        // Nothing outside the ASCII printable range leaked in.
        assert!(report
            .chars()
            .all(|c| c == '\n' || (' '..='~').contains(&c)));
    }
}
