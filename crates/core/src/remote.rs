//! Client side of the `snorlaxd` protocol.
//!
//! A [`RemoteClient`] plays the production endpoint of the paper's
//! deployment model: it holds one TCP connection to a
//! [`serve`](crate::daemon::serve)-ing daemon and submits failure
//! reports — single or batched — receiving the server's rendered
//! diagnosis reports back. Framing, payload encoding and the typed
//! error mapping live in [`crate::daemon`]; this module owns only the
//! connection and the request/response choreography.
//!
//! Server-side rejections come back typed: an `Error` frame (or a
//! failed batch job) surfaces as [`DiagnosisError::Remote`] carrying
//! the server's error text, a `Busy` frame as a `Remote` error naming
//! the admission rejection, and transport failures as
//! [`DiagnosisError::Frame`].

use crate::batch::BatchJob;
use crate::daemon::{
    decode_batch_report, encode_batch_request, encode_diagnose_request, encode_frame, read_frame,
    FrameError, FrameKind,
};
use crate::error::DiagnosisError;
use crate::fleet::{
    decode_collect_reply, decode_finalize_reply, decode_patterns_reply, decode_shard_stats,
    encode_fleet_collect, encode_fleet_finalize, encode_fleet_patterns, encode_fleet_stats,
    CollectReply, FinalizeReply, PatternsReply, ShardStats,
};
use crate::patterns::BugPattern;
use crate::streaming::{
    decode_stream_finish_reply, decode_stream_status, encode_stream_session,
    encode_stream_submit_failing, encode_stream_submit_success, StreamFinishReply, StreamStatus,
};
use lazy_ir::Pc;
use lazy_trace::TraceSnapshot;
use lazy_vm::Failure;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

fn io_err(e: &std::io::Error) -> DiagnosisError {
    DiagnosisError::Frame(FrameError::Io(e.to_string()))
}

/// One connection to a running `snorlaxd`.
pub struct RemoteClient {
    stream: TcpStream,
}

impl RemoteClient {
    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DiagnosisError::Frame`] if the TCP connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<RemoteClient, DiagnosisError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err(&e))?;
        let _ = stream.set_nodelay(true);
        Ok(RemoteClient { stream })
    }

    /// Sends raw bytes down the connection and reads one response
    /// frame. This is the fault-injection door: integration tests mangle
    /// an encoded frame and prove the daemon answers a typed error
    /// while the connection survives.
    ///
    /// # Errors
    ///
    /// Returns [`DiagnosisError::Frame`] on transport failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(FrameKind, Vec<u8>), DiagnosisError> {
        self.stream.write_all(bytes).map_err(|e| io_err(&e))?;
        read_frame(&mut self.stream).map_err(DiagnosisError::Frame)
    }

    fn roundtrip(
        &mut self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(FrameKind, Vec<u8>), DiagnosisError> {
        self.send_raw(&encode_frame(kind, payload))
    }

    fn reject((kind, payload): (FrameKind, Vec<u8>)) -> DiagnosisError {
        match kind {
            FrameKind::Error => DiagnosisError::Remote {
                detail: String::from_utf8_lossy(&payload).into_owned(),
            },
            FrameKind::Busy => DiagnosisError::Remote {
                detail: "server busy: admission queue full, retry later".to_string(),
            },
            other => DiagnosisError::Remote {
                detail: format!("unexpected response frame {other:?}"),
            },
        }
    }

    fn text(payload: Vec<u8>) -> Result<String, DiagnosisError> {
        String::from_utf8(payload)
            .map_err(|_| DiagnosisError::Frame(FrameError::BadPayload("report utf-8")))
    }

    /// Submits one failure report; returns the server's rendered
    /// diagnosis report.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] when the server rejects or fails the
    /// request, [`DiagnosisError::Frame`] on transport failure.
    pub fn diagnose(
        &mut self,
        failure: &Failure,
        failing: &[TraceSnapshot],
        successful: &[TraceSnapshot],
    ) -> Result<String, DiagnosisError> {
        let payload = encode_diagnose_request(failure, failing, successful);
        match self.roundtrip(FrameKind::Diagnose, &payload)? {
            (FrameKind::Report, p) => Self::text(p),
            other => Err(Self::reject(other)),
        }
    }

    /// [`RemoteClient::diagnose`] with admission-rejection retries: a
    /// `Busy` reply backs off (linearly: `backoff`, 2×`backoff`, …) and
    /// resubmits, up to `attempts` total tries. Every other outcome —
    /// success, typed server error, transport failure — passes straight
    /// through. Returns the retries spent alongside the report so
    /// callers (the contention bench) can account for them.
    ///
    /// # Errors
    ///
    /// The final [`DiagnosisError::Remote`] busy rejection once
    /// `attempts` is exhausted; otherwise as [`RemoteClient::diagnose`].
    pub fn diagnose_retrying(
        &mut self,
        failure: &Failure,
        failing: &[TraceSnapshot],
        successful: &[TraceSnapshot],
        attempts: usize,
        backoff: std::time::Duration,
    ) -> Result<(String, usize), DiagnosisError> {
        let mut retries = 0usize;
        loop {
            match self.diagnose(failure, failing, successful) {
                Ok(report) => return Ok((report, retries)),
                Err(DiagnosisError::Remote { detail })
                    if detail.contains("busy") && retries + 1 < attempts.max(1) =>
                {
                    retries += 1;
                    std::thread::sleep(backoff.saturating_mul(retries as u32));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Submits a batch of failure reports; returns per-job results in
    /// job order — the rendered report, or the job's server-side error
    /// as [`DiagnosisError::Remote`].
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] when the whole batch is rejected,
    /// [`DiagnosisError::Frame`] on transport failure.
    pub fn diagnose_batch(
        &mut self,
        jobs: &[BatchJob<'_>],
    ) -> Result<Vec<Result<String, DiagnosisError>>, DiagnosisError> {
        let payload = encode_batch_request(jobs);
        match self.roundtrip(FrameKind::Batch, &payload)? {
            (FrameKind::BatchReport, p) => decode_batch_report(&p).map_err(DiagnosisError::Frame),
            other => Err(Self::reject(other)),
        }
    }

    /// Fleet round 1: opens shard session `session` on this daemon with
    /// the routed trace partition; returns the shard's executed set.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] when the shard rejects or fails the
    /// round, [`DiagnosisError::Frame`] on transport failure.
    pub fn fleet_collect(
        &mut self,
        session: u64,
        failure: &Failure,
        failing: &[TraceSnapshot],
        successful: &[TraceSnapshot],
    ) -> Result<CollectReply, DiagnosisError> {
        let payload = encode_fleet_collect(session, failure, failing, successful);
        match self.roundtrip(FrameKind::FleetCollect, &payload)? {
            (FrameKind::FleetCollectAck, p) => {
                decode_collect_reply(&p).map_err(DiagnosisError::Frame)
            }
            other => Err(Self::reject(other)),
        }
    }

    /// Fleet round 2: broadcasts the merged global executed set;
    /// returns the shard's locally generated pattern set.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] when the shard rejects or fails the
    /// round, [`DiagnosisError::Frame`] on transport failure.
    pub fn fleet_patterns(
        &mut self,
        session: u64,
        executed: &[Pc],
    ) -> Result<PatternsReply, DiagnosisError> {
        let payload = encode_fleet_patterns(session, executed);
        match self.roundtrip(FrameKind::FleetPatterns, &payload)? {
            (FrameKind::FleetPatternSet, p) => {
                decode_patterns_reply(&p).map_err(DiagnosisError::Frame)
            }
            other => Err(Self::reject(other)),
        }
    }

    /// Fleet round 3: broadcasts the merged global pattern set; returns
    /// the shard's partial statistics and closes the session.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] when the shard rejects or fails the
    /// round, [`DiagnosisError::Frame`] on transport failure.
    pub fn fleet_finalize(
        &mut self,
        session: u64,
        patterns: &[BugPattern],
    ) -> Result<FinalizeReply, DiagnosisError> {
        let payload = encode_fleet_finalize(session, patterns);
        match self.roundtrip(FrameKind::FleetFinalize, &payload)? {
            (FrameKind::PartialStats, p) => {
                decode_finalize_reply(&p).map_err(DiagnosisError::Frame)
            }
            other => Err(Self::reject(other)),
        }
    }

    /// Probes the shard's session-lifecycle and warm-cache counters.
    /// Side effect by protocol: the daemon runs its idle-session sweep
    /// before answering, so the reported numbers are post-eviction.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] when the daemon rejects the probe,
    /// [`DiagnosisError::Frame`] on transport failure.
    pub fn fleet_stats(&mut self) -> Result<ShardStats, DiagnosisError> {
        let payload = encode_fleet_stats();
        match self.roundtrip(FrameKind::FleetStats, &payload)? {
            (FrameKind::FleetStatsAck, p) => decode_shard_stats(&p).map_err(DiagnosisError::Frame),
            other => Err(Self::reject(other)),
        }
    }

    /// Streaming: folds one failing report into stream `session` on the
    /// daemon (opening the session on first use); returns the session's
    /// status after the fold.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] when the server rejects or fails the
    /// fold, [`DiagnosisError::Frame`] on transport failure.
    pub fn stream_submit_failing(
        &mut self,
        session: u64,
        failure: &Failure,
        snap: &TraceSnapshot,
    ) -> Result<StreamStatus, DiagnosisError> {
        let payload = encode_stream_submit_failing(session, failure, snap);
        match self.roundtrip(FrameKind::StreamSubmit, &payload)? {
            (FrameKind::StreamSubmitAck, p) => {
                decode_stream_status(&p).map_err(DiagnosisError::Frame)
            }
            other => Err(Self::reject(other)),
        }
    }

    /// Streaming: folds one success report into stream `session` on the
    /// daemon (opening the session on first use); returns the session's
    /// status after the fold.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] when the server rejects or fails the
    /// fold, [`DiagnosisError::Frame`] on transport failure.
    pub fn stream_submit_success(
        &mut self,
        session: u64,
        snap: &TraceSnapshot,
    ) -> Result<StreamStatus, DiagnosisError> {
        let payload = encode_stream_submit_success(session, snap);
        match self.roundtrip(FrameKind::StreamSubmit, &payload)? {
            (FrameKind::StreamSubmitAck, p) => {
                decode_stream_status(&p).map_err(DiagnosisError::Frame)
            }
            other => Err(Self::reject(other)),
        }
    }

    /// Streaming: asks stream `session` "converged yet?".
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] for an unknown session,
    /// [`DiagnosisError::Frame`] on transport failure.
    pub fn stream_status(&mut self, session: u64) -> Result<StreamStatus, DiagnosisError> {
        let payload = encode_stream_session(session);
        match self.roundtrip(FrameKind::StreamStatus, &payload)? {
            (FrameKind::StreamStatusReply, p) => {
                decode_stream_status(&p).map_err(DiagnosisError::Frame)
            }
            other => Err(Self::reject(other)),
        }
    }

    /// Streaming: finalizes and closes stream `session`, returning its
    /// outcome summary plus the rendered diagnosis report.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] for an unknown session or a session
    /// that never received a decodable failing report,
    /// [`DiagnosisError::Frame`] on transport failure.
    pub fn stream_finish(&mut self, session: u64) -> Result<StreamFinishReply, DiagnosisError> {
        let payload = encode_stream_session(session);
        match self.roundtrip(FrameKind::StreamFinish, &payload)? {
            (FrameKind::StreamFinishAck, p) => {
                decode_stream_finish_reply(&p).map_err(DiagnosisError::Frame)
            }
            other => Err(Self::reject(other)),
        }
    }

    /// Probes the daemon; returns its status line.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] on rejection, [`DiagnosisError::Frame`]
    /// on transport failure.
    pub fn health(&mut self) -> Result<String, DiagnosisError> {
        match self.roundtrip(FrameKind::Health, b"")? {
            (FrameKind::HealthOk, p) => Self::text(p),
            other => Err(Self::reject(other)),
        }
    }

    /// Asks the daemon to drain and stop. Blocks until the daemon acks
    /// — by protocol, only after every queued and in-flight job has
    /// completed.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Remote`] on rejection, [`DiagnosisError::Frame`]
    /// on transport failure.
    pub fn shutdown(&mut self) -> Result<(), DiagnosisError> {
        match self.roundtrip(FrameKind::Shutdown, b"")? {
            (FrameKind::ShutdownAck, _) => Ok(()),
            other => Err(Self::reject(other)),
        }
    }
}
