//! The diagnosis pipeline's typed error taxonomy.
//!
//! Snorlax ingests snapshots from live, failing deployments, so every
//! stage of decode → processing → diagnosis must turn malformed input
//! into a *typed* error rather than a panic. [`DiagnosisError`] is that
//! one enum, threaded from the wire layer through processing and the
//! server to the CLI, with a variant per stage so callers can tell a
//! corrupt transport buffer from an undecodable trace from an internal
//! worker failure.
//!
//! Degradation policy (see DESIGN.md): an error fails exactly the unit
//! it describes. A thread that fails to decode degrades its snapshot
//! (the remaining threads still process); a snapshot whose every thread
//! fails — or whose decode worker panics — fails its *job*; a failed
//! job never fails the batch, which reports per-job
//! `Ok`/`Err(DiagnosisError)` plus degradation counters.

use crate::daemon::FrameError;
use lazy_trace::decoder::DecodeError;
use lazy_trace::wire::WireError;
use std::fmt;

/// A typed failure from any stage of the diagnosis pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiagnosisError {
    /// The snapshot's wire encoding was rejected (bad magic/version,
    /// truncation, checksum mismatch, corrupt field).
    Wire(WireError),
    /// A single thread's packet stream could not be decoded.
    Decode(DecodeError),
    /// No thread in the snapshot produced a decodable trace; `source`
    /// is the last per-thread decode failure seen.
    Processing {
        /// How many threads the snapshot carried.
        threads: usize,
        /// The last per-thread decode error.
        source: DecodeError,
    },
    /// Diagnosis was asked to run with no failing snapshots at all.
    EmptyReport,
    /// The points-to stage failed (e.g. an unresolvable scope).
    PointsTo {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A pipeline worker panicked or its lock was poisoned; the job it
    /// was carrying is failed, the rest of the batch proceeds.
    WorkerPanic {
        /// Which stage's worker failed ("decode", "process", "diagnose").
        stage: &'static str,
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The daemon's framed transport rejected a frame or payload (bad
    /// magic, kind, length, checksum, truncation, or socket I/O).
    Frame(FrameError),
    /// The remote diagnosis daemon reported a failure for this request:
    /// a typed error response, an admission (`Busy`) rejection, or a
    /// deadline timeout. `detail` is the server's message.
    Remote {
        /// The server's error text.
        detail: String,
    },
    /// The fleet coordination layer failed as a whole: no shards were
    /// configured, every shard failed a protocol round, or a shard was
    /// asked to continue a session it never started. Single-shard
    /// failures do *not* raise this — the coordinator degrades and
    /// diagnoses from the survivors, reporting the casualties in
    /// [`crate::fleet::FleetOutcome::shard_reports`].
    Fleet {
        /// Human-readable description of the coordination failure.
        detail: String,
    },
}

impl fmt::Display for DiagnosisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnosisError::Wire(e) => write!(f, "wire decode failed: {e}"),
            DiagnosisError::Decode(e) => write!(f, "trace decode failed: {e}"),
            DiagnosisError::Processing { threads, source } => {
                write!(f, "no decodable thread among {threads}: {source}")
            }
            DiagnosisError::EmptyReport => {
                write!(f, "no failing snapshots to diagnose")
            }
            DiagnosisError::PointsTo { detail } => {
                write!(f, "points-to analysis failed: {detail}")
            }
            DiagnosisError::WorkerPanic { stage, detail } => {
                write!(f, "{stage} worker panicked: {detail}")
            }
            DiagnosisError::Frame(e) => write!(f, "frame transport failed: {e}"),
            DiagnosisError::Remote { detail } => {
                write!(f, "remote diagnosis failed: {detail}")
            }
            DiagnosisError::Fleet { detail } => {
                write!(f, "fleet coordination failed: {detail}")
            }
        }
    }
}

impl std::error::Error for DiagnosisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiagnosisError::Wire(e) => Some(e),
            DiagnosisError::Decode(e) | DiagnosisError::Processing { source: e, .. } => Some(e),
            DiagnosisError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for DiagnosisError {
    fn from(e: WireError) -> Self {
        DiagnosisError::Wire(e)
    }
}

impl From<DecodeError> for DiagnosisError {
    fn from(e: DecodeError) -> Self {
        DiagnosisError::Decode(e)
    }
}

impl From<FrameError> for DiagnosisError {
    fn from(e: FrameError) -> Self {
        DiagnosisError::Frame(e)
    }
}

impl DiagnosisError {
    /// Builds a [`DiagnosisError::WorkerPanic`] from a caught panic
    /// payload, extracting the message when the payload is a string
    /// (the overwhelmingly common case for `panic!`/`unwrap`).
    pub fn from_panic(stage: &'static str, payload: Box<dyn std::any::Any + Send>) -> Self {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        DiagnosisError::WorkerPanic { stage, detail }
    }

    /// A [`DiagnosisError::WorkerPanic`] for a worker that disappeared
    /// without reporting — a poisoned slot or a vanished result.
    pub fn worker_lost(stage: &'static str) -> Self {
        DiagnosisError::WorkerPanic {
            stage,
            detail: "worker produced no result".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_and_decode_errors_convert() {
        let e: DiagnosisError = WireError::Truncated.into();
        assert_eq!(e, DiagnosisError::Wire(WireError::Truncated));
        let e: DiagnosisError = DecodeError::NoSync.into();
        assert_eq!(e, DiagnosisError::Decode(DecodeError::NoSync));
    }

    #[test]
    fn from_panic_extracts_string_payloads() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        match DiagnosisError::from_panic("decode", p) {
            DiagnosisError::WorkerPanic { stage, detail } => {
                assert_eq!(stage, "decode");
                assert_eq!(detail, "boom 7");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn display_is_stage_prefixed() {
        let e = DiagnosisError::Processing {
            threads: 4,
            source: DecodeError::NoSync,
        };
        assert!(e.to_string().contains("no decodable thread among 4"));
        let e = DiagnosisError::from(WireError::BadChecksum);
        assert!(e.to_string().starts_with("wire decode failed"));
    }
}
