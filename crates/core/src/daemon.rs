//! `snorlaxd` — the diagnosis daemon.
//!
//! The paper's deployment model is client-server: production endpoints
//! ship trace snapshots to an offline diagnosis site (§3, §5). This
//! module is that site's front door — a std-only TCP daemon (threads +
//! [`TcpListener`], zero dependencies, like the rest of the repo) that
//! serves [`DiagnosisServer`] over a length-prefixed framed protocol
//! wrapping the existing checksummed snapshot wire format
//! (`lazy_trace::wire`).
//!
//! ## Frame layout
//!
//! Every message in either direction is one frame (integers
//! little-endian):
//!
//! ```text
//! magic "SNRF" | kind u8 | payload_len u32 | payload | fnv1a32
//! ```
//!
//! where the trailing checksum covers everything before it. The
//! declared length is clamped against [`MAX_FRAME_PAYLOAD`] *before*
//! any allocation — the same clamp-before-allocate hardening the
//! snapshot wire format applies to its attacker-controlled lengths.
//! Request payloads (`Diagnose`, `Batch`) embed snapshots in their
//! `LZTR` wire form, so a snapshot corrupted in transit is caught by
//! its own checksum even when the frame around it survives.
//!
//! ## Robustness contract
//!
//! * **Backpressure** — admission is a bounded queue
//!   ([`DaemonConfig::queue_depth`]); a request that would exceed it is
//!   rejected immediately with a typed [`FrameKind::Busy`] response,
//!   never queued unboundedly. The connection count is bounded the same
//!   way ([`DaemonConfig::max_connections`]).
//! * **Deadlines** — each admitted request has
//!   [`DaemonConfig::request_timeout`] to complete; past it the client
//!   gets a typed error response and the worker's eventual result is
//!   discarded.
//! * **Error isolation** — a frame whose checksum fails is consumed in
//!   full (the stream stays in sync), answered with an error response,
//!   and the connection *continues*; a request whose inner snapshot is
//!   corrupt fails with that request's typed error alone. Only frames
//!   that desynchronize the stream (bad magic, truncation, oversized
//!   length) close the connection — and only that connection.
//! * **Graceful drain** — a `Shutdown` frame stops admission, lets
//!   queued and in-flight jobs finish, and acks only once the daemon is
//!   idle; [`serve`] then returns.

use crate::batch::{BatchConfig, BatchJob, BatchJobView};
use crate::error::DiagnosisError;
use crate::fleet::{
    decode_fleet_collect_view, decode_fleet_finalize, decode_fleet_patterns, decode_fleet_stats,
    encode_collect_reply, encode_finalize_reply, encode_patterns_reply, encode_shard_stats,
    FleetShard,
};
use crate::reactor;
use crate::server::{DiagnosisServer, ServerConfig};
use crate::streaming::{
    decode_stream_session, decode_stream_submit_view, encode_stream_finish_reply,
    encode_stream_status, StreamFinishReply, StreamHub, StreamSubmitView,
};
use lazy_ir::{Module, Pc};
use lazy_trace::wire::{fnv1a32, fnv1a32_with};
use lazy_trace::{
    decode_snapshot, decode_snapshot_view, encode_snapshot, SnapshotView, TraceSnapshot,
};
use lazy_vm::{DeadlockParty, Failure, FailureKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Leading bytes of every frame.
pub const FRAME_MAGIC: &[u8; 4] = b"SNRF";

/// Hard cap on a frame's declared payload length; anything larger is
/// rejected before a single byte of it is allocated or read.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// magic + kind + payload_len.
const HEADER_LEN: usize = 4 + 1 + 4;

/// Frame discriminants. Requests are low, responses high, so a peer
/// echoing a request back is caught as a protocol error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Request: diagnose one failure report.
    Diagnose = 0,
    /// Request: diagnose a batch of failure reports.
    Batch = 1,
    /// Request: liveness / load probe.
    Health = 2,
    /// Request: drain in-flight work, then stop serving.
    Shutdown = 3,
    /// Request (fleet round 1): open a shard session — decode this
    /// shard's trace partition, report its executed set.
    FleetCollect = 4,
    /// Request (fleet round 2): the merged global executed set; the
    /// shard computes candidates against it and generates patterns from
    /// its local failing traces.
    FleetPatterns = 5,
    /// Request (fleet round 3): the merged global pattern set; the
    /// shard returns its partial sufficient statistics and closes the
    /// session.
    FleetFinalize = 6,
    /// Request (streaming): fold one report (failing or success) into a
    /// stream session's incremental statistics.
    StreamSubmit = 7,
    /// Request (streaming): probe a stream session — "converged yet?".
    StreamStatus = 8,
    /// Request (streaming): close a stream session and return its final
    /// diagnosis.
    StreamFinish = 9,
    /// Request (fleet): the shard's lifecycle and warm-cache counters —
    /// how `snorlax fleet route` proves remote shards stayed warm.
    FleetStats = 10,
    /// Response: the rendered diagnosis report (UTF-8).
    Report = 16,
    /// Response: per-job reports for a batch request.
    BatchReport = 17,
    /// Response: this request failed; payload is the error text.
    Error = 18,
    /// Response: rejected by admission control; retry later.
    Busy = 19,
    /// Response: health probe answer (UTF-8 status line).
    HealthOk = 20,
    /// Response: drain complete, the daemon is exiting.
    ShutdownAck = 21,
    /// Response to [`FrameKind::FleetCollect`]: the shard's executed
    /// set and decode-health sums.
    FleetCollectAck = 22,
    /// Response to [`FrameKind::FleetPatterns`]: the shard's locally
    /// generated pattern set plus candidate statistics.
    FleetPatternSet = 23,
    /// Response to [`FrameKind::FleetFinalize`]: the shard's serialized
    /// partial [`crate::statistics::PatternStats`] and event times.
    PartialStats = 24,
    /// Response to [`FrameKind::StreamSubmit`]: the session's status
    /// after the fold.
    StreamSubmitAck = 25,
    /// Response to [`FrameKind::StreamStatus`]: the session's current
    /// status.
    StreamStatusReply = 26,
    /// Response to [`FrameKind::StreamFinish`]: the session's final
    /// outcome and rendered report.
    StreamFinishAck = 27,
    /// Response to [`FrameKind::FleetStats`]: the serialized
    /// [`crate::fleet::ShardStats`].
    FleetStatsAck = 28,
}

impl FrameKind {
    fn from_u8(b: u8) -> Result<FrameKind, FrameError> {
        Ok(match b {
            0 => FrameKind::Diagnose,
            1 => FrameKind::Batch,
            2 => FrameKind::Health,
            3 => FrameKind::Shutdown,
            4 => FrameKind::FleetCollect,
            5 => FrameKind::FleetPatterns,
            6 => FrameKind::FleetFinalize,
            7 => FrameKind::StreamSubmit,
            8 => FrameKind::StreamStatus,
            9 => FrameKind::StreamFinish,
            10 => FrameKind::FleetStats,
            16 => FrameKind::Report,
            17 => FrameKind::BatchReport,
            18 => FrameKind::Error,
            19 => FrameKind::Busy,
            20 => FrameKind::HealthOk,
            21 => FrameKind::ShutdownAck,
            22 => FrameKind::FleetCollectAck,
            23 => FrameKind::FleetPatternSet,
            24 => FrameKind::PartialStats,
            25 => FrameKind::StreamSubmitAck,
            26 => FrameKind::StreamStatusReply,
            27 => FrameKind::StreamFinishAck,
            28 => FrameKind::FleetStatsAck,
            other => return Err(FrameError::BadKind(other)),
        })
    }
}

/// A failure of the framed transport layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not begin with the frame magic.
    BadMagic,
    /// The frame kind discriminant is unknown (frame fully consumed —
    /// the stream is still in sync).
    BadKind(u8),
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    TooLarge(u32),
    /// The stream ended mid-frame.
    Truncated,
    /// The frame checksum does not match (frame fully consumed — the
    /// stream is still in sync).
    BadChecksum,
    /// A request or response payload is structurally malformed.
    BadPayload(&'static str),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A read deadline elapsed at a frame boundary.
    TimedOut,
    /// Socket I/O failed.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a snorlaxd frame (bad magic)"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::Io(e) => write!(f, "socket i/o failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn io_error(e: &std::io::Error) -> FrameError {
    match e.kind() {
        ErrorKind::UnexpectedEof => FrameError::Truncated,
        ErrorKind::WouldBlock | ErrorKind::TimedOut => FrameError::TimedOut,
        _ => FrameError::Io(e.to_string()),
    }
}

/// Encodes one frame: header, payload, trailing checksum.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(FRAME_MAGIC);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a32(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Fills `buf` completely, treating a read timeout as a *wait* rather
/// than a failure: the caller is mid-frame, so bytes already consumed
/// stay consumed and the read simply resumes. Only a true EOF
/// ([`FrameError::Truncated`]) or a hard I/O error aborts.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            // Mid-frame, a timeout must not desynchronize the stream:
            // the header bytes read so far would be lost and the next
            // read_frame would land mid-frame and report BadMagic.
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(io_error(&e)),
        }
    }
    Ok(())
}

/// Reads one frame, validating checksum before interpreting the kind —
/// so recoverable rejections ([`FrameError::BadChecksum`],
/// [`FrameError::BadKind`]) always leave the stream positioned at the
/// next frame boundary.
///
/// A read timeout is only reported at a frame *boundary* (before the
/// first byte); once a frame has started, timeouts resume the read,
/// because a slow writer mid-frame is a wait, not a protocol error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(FrameKind, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // The first byte read distinguishes a clean close (EOF at a frame
    // boundary) and an idle-poll timeout from mid-frame truncation.
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) => return Err(io_error(&e)),
    }
    read_full(r, &mut header[1..])?;
    if &header[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let declared = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    let len = declared as usize;
    // Clamp before the payload Vec exists: a corrupt length field must
    // not drive a giant allocation.
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::TooLarge(declared));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload)?;
    let mut trailer = [0u8; 4];
    read_full(r, &mut trailer)?;
    let expect = u32::from_le_bytes(trailer);
    if fnv1a32_with(fnv1a32(&header), &payload) != expect {
        return Err(FrameError::BadChecksum);
    }
    let kind = FrameKind::from_u8(header[4])?;
    Ok((kind, payload))
}

/// Writes one frame.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, payload: &[u8]) -> Result<(), FrameError> {
    w.write_all(&encode_frame(kind, payload))
        .map_err(|e| io_error(&e))
}

// ---------------------------------------------------------------------
// Streaming frame assembly.

/// How many bytes one readiness event reads per `read(2)` call.
const READ_CHUNK: usize = 64 << 10;

/// Largest single read when a frame's total size is already known.
const READ_MAX: usize = 4 << 20;

/// An owned frame payload carved out of a connection's read buffer.
///
/// When a frame arrives alone (the common case), the assembler hands
/// its entire buffer over instead of copying the payload out — request
/// decoding then borrows [`SnapshotView`]s straight from these bytes,
/// so trace payloads are copied zero times between socket and decoder.
pub(crate) struct FrameBytes {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl FrameBytes {
    fn from_vec(buf: Vec<u8>) -> FrameBytes {
        FrameBytes {
            start: 0,
            end: buf.len(),
            buf,
        }
    }

    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

/// What [`FrameAssembler::next_frame`] found at the current parse
/// position.
enum FrameStatus {
    /// A partial frame: keep the bytes, wait for more. Explicitly *not*
    /// an error — a timeout mid-frame is a wait, never a desync.
    NeedMore,
    /// One whole, checksum-valid frame.
    Frame {
        kind: FrameKind,
        payload: FrameBytes,
    },
    /// The frame was consumed in full but rejected
    /// ([`FrameError::BadChecksum`] / [`FrameError::BadKind`]); the
    /// stream is still in sync at the next frame boundary.
    Recoverable(FrameError),
    /// The stream position is no longer trustworthy
    /// ([`FrameError::BadMagic`] / [`FrameError::TooLarge`]).
    Fatal(FrameError),
}

/// Incremental frame parser: feeds on whatever bytes the socket has,
/// retains partial frames across readiness events, and yields whole
/// frames without re-scanning consumed input.
struct FrameAssembler {
    /// Raw bytes; `pos..` is unconsumed.
    buf: Vec<u8>,
    /// Parse offset of the next frame boundary.
    pos: usize,
    /// Total size of the frame being assembled once its header is
    /// known; sizes the next read so big frames don't arrive in
    /// `READ_CHUNK` nibbles.
    want: usize,
}

impl FrameAssembler {
    fn new() -> FrameAssembler {
        FrameAssembler {
            buf: Vec::new(),
            pos: 0,
            want: 0,
        }
    }

    /// Bytes held beyond the last consumed frame boundary.
    fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when a frame is mid-assembly (or pipelined bytes wait).
    fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= READ_CHUNK {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Appends one `read(2)`'s worth of bytes from `r`. Returns the
    /// raw read result; `Ok(0)` is EOF.
    fn read_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        self.compact();
        let chunk = self
            .want
            .saturating_sub(self.pending_bytes())
            .clamp(READ_CHUNK, READ_MAX);
        let old = self.buf.len();
        self.buf.resize(old + chunk, 0);
        let res = r.read(&mut self.buf[old..]);
        let n = *res.as_ref().unwrap_or(&0);
        self.buf.truncate(old + n);
        res
    }

    /// Parses the next frame out of the buffered bytes.
    fn next_frame(&mut self) -> FrameStatus {
        self.want = 0;
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            // Garbage is detected from the very first byte; a true
            // magic prefix waits for the rest of the header.
            if !FRAME_MAGIC.starts_with(avail) {
                return FrameStatus::Fatal(FrameError::BadMagic);
            }
            return FrameStatus::NeedMore;
        }
        if &avail[..4] != FRAME_MAGIC {
            return FrameStatus::Fatal(FrameError::BadMagic);
        }
        if avail.len() < HEADER_LEN {
            return FrameStatus::NeedMore;
        }
        let declared = u32::from_le_bytes([avail[5], avail[6], avail[7], avail[8]]);
        let len = declared as usize;
        // Clamp before the buffer ever grows toward it: a corrupt
        // length field must not drive a giant allocation.
        if len > MAX_FRAME_PAYLOAD {
            return FrameStatus::Fatal(FrameError::TooLarge(declared));
        }
        let total = HEADER_LEN + len + 4;
        if avail.len() < total {
            self.want = total;
            return FrameStatus::NeedMore;
        }
        let expect = u32::from_le_bytes([
            avail[HEADER_LEN + len],
            avail[HEADER_LEN + len + 1],
            avail[HEADER_LEN + len + 2],
            avail[HEADER_LEN + len + 3],
        ]);
        // Checksum before kind: a recoverable rejection must consume
        // the whole frame either way, and corruption is the likelier
        // cause of a weird kind byte.
        if fnv1a32(&avail[..HEADER_LEN + len]) != expect {
            self.pos += total;
            return FrameStatus::Recoverable(FrameError::BadChecksum);
        }
        let kind = match FrameKind::from_u8(avail[4]) {
            Ok(kind) => kind,
            Err(e) => {
                self.pos += total;
                return FrameStatus::Recoverable(e);
            }
        };
        let payload = if self.pos == 0 && self.buf.len() == total {
            // The frame is alone in the buffer: hand the whole buffer
            // over (zero-copy) instead of copying the payload out.
            let buf = std::mem::take(&mut self.buf);
            FrameBytes {
                buf,
                start: HEADER_LEN,
                end: HEADER_LEN + len,
            }
        } else {
            // Pipelined frames share the buffer; this one is copied
            // out so the remainder keeps assembling in place.
            let start = self.pos + HEADER_LEN;
            let body = self.buf[start..start + len].to_vec();
            self.pos += total;
            FrameBytes::from_vec(body)
        };
        FrameStatus::Frame { kind, payload }
    }
}

// ---------------------------------------------------------------------
// Request/response payload codec.

/// One decoded diagnosis request: the failure plus its snapshots, owned
/// (they arrived over a socket).
#[derive(Clone, Debug)]
pub struct DiagnoseRequest {
    /// The failure the client observed.
    pub failure: Failure,
    /// Snapshots from failing executions.
    pub failing: Vec<TraceSnapshot>,
    /// Snapshots from successful executions at the failure breakpoint.
    pub successful: Vec<TraceSnapshot>,
}

pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        // Declared lengths are attacker-controlled: compare against the
        // remainder, never compute `pos + n`.
        if n > self.remaining() {
            return Err(FrameError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

fn kind_code(kind: &FailureKind) -> (u8, u64) {
    match kind {
        FailureKind::NullDeref { addr } => (0, *addr),
        FailureKind::UseAfterFree { addr } => (1, *addr),
        FailureKind::WildAccess { addr } => (2, *addr),
        FailureKind::BadFree { addr } => (3, *addr),
        FailureKind::DivByZero => (4, 0),
        FailureKind::StackOverflow => (5, 0),
        FailureKind::AssertFailed { .. } => (6, 0),
        FailureKind::BadUnlock { addr } => (7, *addr),
        FailureKind::BadIndirectCall { target } => (8, *target),
        FailureKind::Deadlock { .. } => (9, 0),
        FailureKind::Hang => (10, 0),
        FailureKind::Timeout => (11, 0),
    }
}

pub(crate) fn encode_failure(out: &mut Vec<u8>, failure: &Failure) {
    let (code, addr) = kind_code(&failure.kind);
    out.push(code);
    out.extend_from_slice(&failure.pc.0.to_le_bytes());
    out.extend_from_slice(&failure.tid.to_le_bytes());
    out.extend_from_slice(&failure.at_ns.to_le_bytes());
    out.extend_from_slice(&addr.to_le_bytes());
    match &failure.kind {
        FailureKind::AssertFailed { msg } => {
            out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            out.extend_from_slice(msg.as_bytes());
        }
        FailureKind::Deadlock { parties } => {
            out.extend_from_slice(&(parties.len() as u32).to_le_bytes());
            for p in parties {
                out.extend_from_slice(&p.tid.to_le_bytes());
                out.extend_from_slice(&p.pc.0.to_le_bytes());
                out.extend_from_slice(&p.mutex_addr.to_le_bytes());
            }
        }
        _ => {}
    }
}

/// One encoded deadlock party: tid + pc + mutex address.
const PARTY_BYTES: usize = 4 + 8 + 8;

pub(crate) fn decode_failure(c: &mut Cursor<'_>) -> Result<Failure, FrameError> {
    let code = c.u8()?;
    let pc = Pc(c.u64()?);
    let tid = c.u32()?;
    let at_ns = c.u64()?;
    let addr = c.u64()?;
    let kind = match code {
        0 => FailureKind::NullDeref { addr },
        1 => FailureKind::UseAfterFree { addr },
        2 => FailureKind::WildAccess { addr },
        3 => FailureKind::BadFree { addr },
        4 => FailureKind::DivByZero,
        5 => FailureKind::StackOverflow,
        6 => {
            let len = c.u32()? as usize;
            let msg = String::from_utf8(c.take(len)?.to_vec())
                .map_err(|_| FrameError::BadPayload("assert message utf-8"))?;
            FailureKind::AssertFailed { msg }
        }
        7 => FailureKind::BadUnlock { addr },
        8 => FailureKind::BadIndirectCall { target: addr },
        9 => {
            let n = c.u32()? as usize;
            if n > c.remaining() / PARTY_BYTES {
                return Err(FrameError::BadPayload("deadlock party count"));
            }
            let mut parties = Vec::with_capacity(n);
            for _ in 0..n {
                parties.push(DeadlockParty {
                    tid: c.u32()?,
                    pc: Pc(c.u64()?),
                    mutex_addr: c.u64()?,
                });
            }
            FailureKind::Deadlock { parties }
        }
        10 => FailureKind::Hang,
        11 => FailureKind::Timeout,
        _ => return Err(FrameError::BadPayload("failure kind")),
    };
    Ok(Failure {
        kind,
        pc,
        tid,
        at_ns,
    })
}

pub(crate) fn encode_snapshots(out: &mut Vec<u8>, snaps: &[TraceSnapshot]) {
    out.extend_from_slice(&(snaps.len() as u32).to_le_bytes());
    for s in snaps {
        let wire = encode_snapshot(s);
        out.extend_from_slice(&(wire.len() as u32).to_le_bytes());
        out.extend_from_slice(&wire);
    }
}

pub(crate) fn decode_snapshots(c: &mut Cursor<'_>) -> Result<Vec<TraceSnapshot>, DiagnosisError> {
    let n = c.u32().map_err(DiagnosisError::Frame)? as usize;
    // Each snapshot record carries at least its length word: clamp the
    // declared count before sizing anything by it.
    if n > c.remaining() / 4 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "snapshot count",
        )));
    }
    let mut snaps = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32().map_err(DiagnosisError::Frame)? as usize;
        let wire = c.take(len).map_err(DiagnosisError::Frame)?;
        // The embedded `LZTR` encoding is self-validating; corruption
        // that survived the frame checksum is caught here as a typed
        // wire error for *this* request alone.
        snaps.push(decode_snapshot(wire)?);
    }
    Ok(snaps)
}

/// Decodes a snapshot list into borrowed [`SnapshotView`]s — the
/// zero-copy twin of [`decode_snapshots`]. Thread trace bytes stay in
/// `c`'s underlying buffer; nothing is copied.
pub(crate) fn decode_snapshots_view<'a>(
    c: &mut Cursor<'a>,
) -> Result<Vec<SnapshotView<'a>>, DiagnosisError> {
    let n = c.u32().map_err(DiagnosisError::Frame)? as usize;
    if n > c.remaining() / 4 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "snapshot count",
        )));
    }
    let mut snaps = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32().map_err(DiagnosisError::Frame)? as usize;
        let wire = c.take(len).map_err(DiagnosisError::Frame)?;
        snaps.push(decode_snapshot_view(wire)?);
    }
    Ok(snaps)
}

/// [`DiagnoseRequest`] over borrowed snapshot views: the failure is
/// owned (a few words), the trace payloads borrow from the request
/// frame's bytes.
pub struct DiagnoseRequestView<'a> {
    /// The failure the client observed.
    pub failure: Failure,
    /// Snapshot views from failing executions.
    pub failing: Vec<SnapshotView<'a>>,
    /// Snapshot views from successful executions.
    pub successful: Vec<SnapshotView<'a>>,
}

pub(crate) fn decode_diagnose_view_cursor<'a>(
    c: &mut Cursor<'a>,
) -> Result<DiagnoseRequestView<'a>, DiagnosisError> {
    let failure = decode_failure(c).map_err(DiagnosisError::Frame)?;
    let failing = decode_snapshots_view(c)?;
    let successful = decode_snapshots_view(c)?;
    Ok(DiagnoseRequestView {
        failure,
        failing,
        successful,
    })
}

/// Decodes a [`FrameKind::Diagnose`] payload without copying trace
/// bytes: the returned views borrow from `payload`.
pub fn decode_diagnose_request_view(
    payload: &[u8],
) -> Result<DiagnoseRequestView<'_>, DiagnosisError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let req = decode_diagnose_view_cursor(&mut c)?;
    if c.remaining() != 0 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "trailing bytes",
        )));
    }
    Ok(req)
}

/// Decodes a [`FrameKind::Batch`] payload without copying trace bytes.
pub fn decode_batch_request_views(payload: &[u8]) -> Result<Vec<BatchJobView<'_>>, DiagnosisError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let n = c.u32().map_err(DiagnosisError::Frame)? as usize;
    if n > c.remaining() / 4 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload("job count")));
    }
    let mut jobs = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32().map_err(DiagnosisError::Frame)? as usize;
        let body = c.take(len).map_err(DiagnosisError::Frame)?;
        let req = decode_diagnose_request_view(body)?;
        jobs.push(BatchJobView {
            failure: req.failure,
            failing: req.failing,
            successful: req.successful,
        });
    }
    if c.remaining() != 0 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "trailing bytes",
        )));
    }
    Ok(jobs)
}

/// Encodes a [`FrameKind::Diagnose`] request payload.
pub fn encode_diagnose_request(
    failure: &Failure,
    failing: &[TraceSnapshot],
    successful: &[TraceSnapshot],
) -> Vec<u8> {
    let mut out = Vec::new();
    encode_failure(&mut out, failure);
    encode_snapshots(&mut out, failing);
    encode_snapshots(&mut out, successful);
    out
}

/// Decodes a [`FrameKind::Diagnose`] request payload.
pub fn decode_diagnose_request(payload: &[u8]) -> Result<DiagnoseRequest, DiagnosisError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let req = decode_diagnose_cursor(&mut c)?;
    if c.remaining() != 0 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "trailing bytes",
        )));
    }
    Ok(req)
}

fn decode_diagnose_cursor(c: &mut Cursor<'_>) -> Result<DiagnoseRequest, DiagnosisError> {
    let failure = decode_failure(c).map_err(DiagnosisError::Frame)?;
    let failing = decode_snapshots(c)?;
    let successful = decode_snapshots(c)?;
    Ok(DiagnoseRequest {
        failure,
        failing,
        successful,
    })
}

/// Encodes a [`FrameKind::Batch`] request payload from borrowed jobs.
pub fn encode_batch_request(jobs: &[BatchJob<'_>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(jobs.len() as u32).to_le_bytes());
    for j in jobs {
        let body = encode_diagnose_request(j.failure, j.failing, j.successful);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
    }
    out
}

/// Decodes a [`FrameKind::Batch`] request payload.
pub fn decode_batch_request(payload: &[u8]) -> Result<Vec<DiagnoseRequest>, DiagnosisError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let n = c.u32().map_err(DiagnosisError::Frame)? as usize;
    if n > c.remaining() / 4 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload("job count")));
    }
    let mut jobs = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32().map_err(DiagnosisError::Frame)? as usize;
        let body = c.take(len).map_err(DiagnosisError::Frame)?;
        jobs.push(decode_diagnose_request(body)?);
    }
    if c.remaining() != 0 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "trailing bytes",
        )));
    }
    Ok(jobs)
}

/// Encodes a [`FrameKind::BatchReport`] payload: per job, an ok flag
/// plus either the rendered report or the error text.
pub fn encode_batch_report(results: &[Result<String, String>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(results.len() as u32).to_le_bytes());
    for r in results {
        let (ok, text) = match r {
            Ok(t) => (1u8, t.as_str()),
            Err(t) => (0u8, t.as_str()),
        };
        out.push(ok);
        out.extend_from_slice(&(text.len() as u32).to_le_bytes());
        out.extend_from_slice(text.as_bytes());
    }
    out
}

/// Decodes a [`FrameKind::BatchReport`] payload into per-job results;
/// a failed job surfaces as [`DiagnosisError::Remote`] carrying the
/// server's error text.
pub fn decode_batch_report(
    payload: &[u8],
) -> Result<Vec<Result<String, DiagnosisError>>, FrameError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let n = c.u32()? as usize;
    // Each record is at least flag + length word.
    if n > c.remaining() / 5 {
        return Err(FrameError::BadPayload("batch report count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let ok = c.u8()?;
        let len = c.u32()? as usize;
        let text = String::from_utf8(c.take(len)?.to_vec())
            .map_err(|_| FrameError::BadPayload("report utf-8"))?;
        out.push(match ok {
            1 => Ok(text),
            0 => Err(DiagnosisError::Remote { detail: text }),
            _ => return Err(FrameError::BadPayload("ok flag")),
        });
    }
    if c.remaining() != 0 {
        return Err(FrameError::BadPayload("trailing bytes"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The daemon.

/// `snorlaxd` runtime knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Diagnosis worker threads; `0` means one per available core.
    pub workers: usize,
    /// Admission bound: maximum requests queued or in flight; a request
    /// beyond it gets [`FrameKind::Busy`] instead of queueing.
    pub queue_depth: usize,
    /// Maximum concurrently served connections; excess connections are
    /// answered [`FrameKind::Busy`] and closed at accept.
    pub max_connections: usize,
    /// Deadline for an admitted request to complete; past it the client
    /// receives a typed error and the result is discarded.
    pub request_timeout: Duration,
    /// Batch execution knobs for [`FrameKind::Batch`] requests.
    pub batch: BatchConfig,
    /// Per-worker diagnosis server configuration.
    pub server: ServerConfig,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            workers: 0,
            queue_depth: 64,
            max_connections: 64,
            request_timeout: Duration::from_secs(30),
            batch: BatchConfig::default(),
            server: ServerConfig::default(),
        }
    }
}

/// What one [`serve`] run did, returned once the daemon drains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Requests admitted past backpressure.
    pub requests: u64,
    /// Requests (or connections) rejected with `Busy`.
    pub rejected_busy: u64,
    /// Admitted requests that missed their deadline.
    pub timeouts: u64,
    /// Frames rejected by the transport layer (checksum, magic, kind,
    /// length, truncation).
    pub frames_corrupt: u64,
    /// Readiness events that resumed a partially assembled frame —
    /// each one is a slow or chunked writer the old blocking reader
    /// would have desynchronized on.
    pub partial_frame_resumes: u64,
}

/// One admitted request: the undecoded frame payload plus the routing
/// coordinates of the connection slot awaiting the reply. Decoding
/// happens in the worker, borrowing [`SnapshotView`]s from `payload` —
/// the event loop never does per-request parsing.
struct Job {
    token: usize,
    gen: u64,
    seq: u64,
    kind: FrameKind,
    payload: FrameBytes,
}

/// A finished job's reply, routed back to `(token, gen)` by the event
/// loop. A stale generation (the connection died and its slot was
/// reused) is discarded.
struct Completion {
    token: usize,
    gen: u64,
    seq: u64,
    kind: FrameKind,
    payload: Vec<u8>,
}

#[derive(Default)]
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    draining: AtomicBool,
    inflight: AtomicUsize,
    completions: Mutex<Vec<Completion>>,
    connections: AtomicU64,
    requests: AtomicU64,
    rejected_busy: AtomicU64,
    timeouts: AtomicU64,
    frames_corrupt: AtomicU64,
    partial_frame_resumes: AtomicU64,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Check-and-push in one critical section: the admission bound is
    /// hard. N connections racing an almost-full queue cannot overshoot
    /// `depth`, because the worker flips queued → in-flight under this
    /// same lock and the check and the push happen under one guard.
    fn try_admit(&self, job: Job, depth: usize) -> bool {
        let mut q = self.lock_queue();
        if q.len() + self.inflight.load(Ordering::Acquire) >= depth {
            return false;
        }
        q.push_back(job);
        true
    }

    fn idle(&self) -> bool {
        self.lock_queue().is_empty() && self.inflight.load(Ordering::Acquire) == 0
    }

    fn push_completion(&self, c: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(c);
    }

    fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(
            &mut self
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    fn reject_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::AcqRel);
        lazy_obs::counter!("daemon.rejected_busy_total", 1u64);
    }

    fn count_corrupt(&self) {
        self.frames_corrupt.fetch_add(1, Ordering::AcqRel);
        lazy_obs::counter!("daemon.frames_corrupt_total", 1u64);
    }

    fn stats(&self) -> DaemonStats {
        DaemonStats {
            connections: self.connections.load(Ordering::Acquire),
            requests: self.requests.load(Ordering::Acquire),
            rejected_busy: self.rejected_busy.load(Ordering::Acquire),
            timeouts: self.timeouts.load(Ordering::Acquire),
            frames_corrupt: self.frames_corrupt.load(Ordering::Acquire),
            partial_frame_resumes: self.partial_frame_resumes.load(Ordering::Acquire),
        }
    }
}

/// The health status line. The first token is the daemon's lifecycle
/// state — `ok` serving, `draining` once a shutdown began — so
/// monitoring can tell "up" from "up but refusing work" without
/// parsing counters.
fn status_line(draining: bool, queued: usize, inflight: usize, accepted: u64) -> String {
    let state = if draining { "draining" } else { "ok" };
    format!("{state} queued={queued} inflight={inflight} accepted={accepted}")
}

/// Serves diagnosis for `module` on `listener` until a `Shutdown`
/// frame drains it. Blocking: the caller's thread runs the readiness
/// event loop (`poll(2)` over every connection) while scoped worker
/// threads execute diagnoses.
///
/// # Errors
///
/// Returns [`DiagnosisError::Frame`] if the listener cannot be made
/// non-blocking or the self-wake channel cannot be created.
pub fn serve(
    listener: &TcpListener,
    module: &Module,
    cfg: &DaemonConfig,
) -> Result<DaemonStats, DiagnosisError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| DiagnosisError::Frame(FrameError::Io(e.to_string())))?;
    let (waker, wake_rx) =
        reactor::wake_pair().map_err(|e| DiagnosisError::Frame(FrameError::Io(e.to_string())))?;
    let shared = Shared::default();
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.workers
    };
    // One fleet-shard state for the whole daemon: a coordinator's
    // three protocol rounds may arrive on any worker, so the session
    // store must outlive any single request.
    let fleet = FleetShard::new(module, cfg.server.clone());
    // Likewise one stream hub: a streaming session accumulates reports
    // across connections, so its state must be daemon-wide too.
    let hub = StreamHub::new(module, cfg.server.clone());
    std::thread::scope(|scope| {
        let shared = &shared;
        let fleet = &fleet;
        let hub = &hub;
        let waker = &waker;
        for _ in 0..workers {
            scope.spawn(move || worker(shared, module, cfg, fleet, hub, waker));
        }
        event_loop(listener, &wake_rx, shared, cfg, fleet, hub);
        // The loop only returns fully drained; release any worker
        // still parked on the condvar so the scope can close.
        shared.draining.store(true, Ordering::Release);
        shared.available.notify_all();
    });
    Ok(shared.stats())
}

fn worker(
    shared: &Shared,
    module: &Module,
    cfg: &DaemonConfig,
    fleet: &FleetShard<'_>,
    hub: &StreamHub<'_>,
    waker: &reactor::Waker,
) {
    let server = DiagnosisServer::new(module, cfg.server.clone());
    loop {
        let job = {
            let mut q = shared.lock_queue();
            loop {
                if let Some(j) = q.pop_front() {
                    // Flip queued → in-flight while still holding the
                    // queue lock, so the drain check (`queue empty AND
                    // nothing in flight`) can never observe the job in
                    // neither state — and so the admission bound's
                    // `len + inflight` cannot double-count.
                    shared.inflight.fetch_add(1, Ordering::AcqRel);
                    break Some(j);
                }
                if shared.draining.load(Ordering::Acquire) {
                    break None;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { break };
        lazy_obs::histogram!("daemon.inflight", shared.inflight.load(Ordering::Acquire));
        let reply = {
            let _span = lazy_obs::span!("daemon.request");
            // The request decodes here, in the worker, as borrowed
            // views over the frame payload — the event loop stays free
            // to service other connections, and trace bytes go from
            // socket buffer to decoder with zero intervening copies.
            catch_unwind(AssertUnwindSafe(|| {
                process(
                    &server,
                    module,
                    cfg,
                    fleet,
                    hub,
                    job.kind,
                    job.payload.as_slice(),
                )
            }))
            .unwrap_or_else(|p| {
                let e = DiagnosisError::from_panic("daemon", p);
                (FrameKind::Error, e.to_string().into_bytes())
            })
        };
        // Leave in-flight before publishing the completion: once the
        // event loop routes the reply (emptying the slot's pending
        // list), the drain check must already see this job retired.
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        shared.push_completion(Completion {
            token: job.token,
            gen: job.gen,
            seq: job.seq,
            kind: reply.0,
            payload: reply.1,
        });
        waker.wake();
    }
}

fn process(
    server: &DiagnosisServer<'_>,
    module: &Module,
    cfg: &DaemonConfig,
    fleet: &FleetShard<'_>,
    hub: &StreamHub<'_>,
    kind: FrameKind,
    payload: &[u8],
) -> (FrameKind, Vec<u8>) {
    let error = |e: DiagnosisError| (FrameKind::Error, e.to_string().into_bytes());
    match kind {
        FrameKind::Diagnose => match decode_diagnose_request_view(payload) {
            Ok(req) => match server.diagnose_views(&req.failure, &req.failing, &req.successful) {
                Ok(d) => (FrameKind::Report, d.render(module).into_bytes()),
                Err(e) => error(e),
            },
            Err(e) => error(e),
        },
        FrameKind::Batch => match decode_batch_request_views(payload) {
            Ok(jobs) => {
                let out = server.diagnose_batch_views(&jobs, &cfg.batch);
                let results: Vec<Result<String, String>> = out
                    .diagnoses
                    .iter()
                    .map(|d| match d {
                        Ok(d) => Ok(d.render(module)),
                        Err(e) => Err(e.to_string()),
                    })
                    .collect();
                (FrameKind::BatchReport, encode_batch_report(&results))
            }
            Err(e) => error(e),
        },
        FrameKind::FleetCollect => match decode_fleet_collect_view(payload) {
            Ok((session, req)) => {
                match fleet.collect_views(session, &req.failure, &req.failing, &req.successful) {
                    Ok(r) => (FrameKind::FleetCollectAck, encode_collect_reply(&r)),
                    Err(e) => error(e),
                }
            }
            Err(e) => error(e),
        },
        FrameKind::FleetPatterns => match decode_fleet_patterns(payload) {
            Ok((session, executed)) => match fleet.patterns(session, &executed) {
                Ok(r) => (FrameKind::FleetPatternSet, encode_patterns_reply(&r)),
                Err(e) => error(e),
            },
            Err(e) => error(DiagnosisError::Frame(e)),
        },
        FrameKind::FleetFinalize => match decode_fleet_finalize(payload) {
            Ok((session, patterns)) => match fleet.finalize(session, &patterns) {
                Ok(r) => (FrameKind::PartialStats, encode_finalize_reply(&r)),
                Err(e) => error(e),
            },
            Err(e) => error(DiagnosisError::Frame(e)),
        },
        FrameKind::StreamSubmit => match decode_stream_submit_view(payload) {
            Ok((session, StreamSubmitView::Failing { failure, snap })) => {
                match hub.submit_failing(session, &failure, &snap) {
                    Ok(s) => (FrameKind::StreamSubmitAck, encode_stream_status(&s)),
                    Err(e) => error(e),
                }
            }
            Ok((session, StreamSubmitView::Success { snap })) => {
                match hub.submit_success(session, &snap) {
                    Ok(s) => (FrameKind::StreamSubmitAck, encode_stream_status(&s)),
                    Err(e) => error(e),
                }
            }
            Err(e) => error(e),
        },
        FrameKind::StreamStatus => match decode_stream_session(payload) {
            Ok(session) => match hub.status(session) {
                Ok(s) => (FrameKind::StreamStatusReply, encode_stream_status(&s)),
                Err(e) => error(e),
            },
            Err(e) => error(DiagnosisError::Frame(e)),
        },
        FrameKind::StreamFinish => match decode_stream_session(payload) {
            Ok(session) => match hub.finish(session) {
                Ok((outcome, report)) => {
                    let reply = StreamFinishReply {
                        reports_consumed: outcome.reports_consumed as u64,
                        reports_rejected: outcome.reports_rejected as u64,
                        converged_early: outcome.converged_early,
                        report,
                        lead_history: outcome.lead_history,
                    };
                    (
                        FrameKind::StreamFinishAck,
                        encode_stream_finish_reply(&reply),
                    )
                }
                Err(e) => error(e),
            },
            Err(e) => error(DiagnosisError::Frame(e)),
        },
        FrameKind::FleetStats => match decode_fleet_stats(payload) {
            Ok(()) => {
                // A stats probe doubles as the daemon's periodic
                // lifecycle sweep: abandoned fleet and stream sessions
                // are evicted here even if no new session ever tries
                // to admit.
                fleet.sweep_expired();
                hub.sweep_expired();
                (FrameKind::FleetStatsAck, encode_shard_stats(&fleet.stats()))
            }
            Err(e) => error(DiagnosisError::Frame(e)),
        },
        other => {
            let msg = format!("frame kind {other:?} is not a request");
            (FrameKind::Error, msg.into_bytes())
        }
    }
}

// ---------------------------------------------------------------------
// Connection state machine.

/// Write backlog above which a connection stops reading new requests —
/// backpressure propagates to the peer's TCP window instead of growing
/// an unbounded reply buffer.
const WRITE_HIGH_WATER: usize = 1 << 20;

/// Poll timeout ceiling: a lost wakeup costs at most this much latency.
const POLL_CAP: Duration = Duration::from_millis(200);

/// Reads drained per readiness event per connection, so one firehose
/// peer cannot starve the rest of the poll set.
const MAX_READS_PER_EVENT: usize = 4;

/// An in-order reply obligation: request `seq` was admitted (or
/// answered inline) and its reply must ship in sequence. `deadline` is
/// `None` for inline replies, which complete in the same dispatch.
struct PendingReply {
    seq: u64,
    deadline: Option<Instant>,
}

/// Per-connection state: streaming frame assembly in, buffered
/// non-blocking writes out, plus the in-order reply ledger.
struct Conn {
    stream: TcpStream,
    fd: i32,
    asm: FrameAssembler,
    out: WriteBuf,
    /// Replies owed, in request order.
    pending: VecDeque<PendingReply>,
    /// Completed replies that arrived out of order, keyed by seq.
    ready: HashMap<u64, (FrameKind, Vec<u8>)>,
    /// Seqs whose deadline fired; the worker's eventual completion is
    /// discarded instead of replied.
    abandoned: HashSet<u64>,
    next_seq: u64,
    /// This connection sent `Shutdown` and is owed the ack once the
    /// daemon is fully drained.
    wants_shutdown_ack: bool,
    /// No more reads; close once `out` and `pending` are empty.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32) -> Conn {
        Conn {
            stream,
            fd,
            asm: FrameAssembler::new(),
            out: WriteBuf::default(),
            pending: VecDeque::new(),
            ready: HashMap::new(),
            abandoned: HashSet::new(),
            next_seq: 0,
            wants_shutdown_ack: false,
            closing: false,
        }
    }

    fn queue_frame(&mut self, kind: FrameKind, payload: &[u8]) {
        self.out.queue(&encode_frame(kind, payload));
    }

    /// Answers a frame immediately, still honoring reply order behind
    /// any outstanding admitted requests.
    fn reply_now(&mut self, kind: FrameKind, payload: Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(PendingReply {
            seq,
            deadline: None,
        });
        self.complete(seq, kind, payload);
    }

    /// Routes a finished reply; ships it (and any now-unblocked
    /// successors) if it is next in order.
    fn complete(&mut self, seq: u64, kind: FrameKind, payload: Vec<u8>) {
        if self.abandoned.remove(&seq) {
            // Deadline already answered this seq; drop the late result.
            return;
        }
        self.ready.insert(seq, (kind, payload));
        self.drain_ready();
    }

    fn drain_ready(&mut self) {
        while let Some(front) = self.pending.front() {
            match self.ready.remove(&front.seq) {
                Some((kind, payload)) => {
                    self.pending.pop_front();
                    self.queue_frame(kind, &payload);
                }
                None => break,
            }
        }
    }

    /// Expires overdue requests. Deadlines are uniform and seqs are
    /// FIFO, so only the front can be overdue; each expiry answers
    /// with the typed deadline error and abandons the worker's result.
    fn sweep_deadlines(&mut self, now: Instant, cfg: &DaemonConfig, shared: &Shared) {
        while let Some(front) = self.pending.front() {
            let Some(deadline) = front.deadline else {
                break;
            };
            if now < deadline {
                break;
            }
            let seq = front.seq;
            self.pending.pop_front();
            self.abandoned.insert(seq);
            shared.timeouts.fetch_add(1, Ordering::AcqRel);
            lazy_obs::counter!("daemon.timeouts_total", 1u64);
            let msg = format!(
                "deadline exceeded ({} ms); request abandoned",
                cfg.request_timeout.as_millis()
            );
            self.queue_frame(FrameKind::Error, msg.as_bytes());
            self.drain_ready();
        }
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.pending.front().and_then(|p| p.deadline)
    }

    /// Drains readable bytes into the assembler and dispatches every
    /// whole frame found.
    fn handle_readable(&mut self, token: usize, gen: u64, shared: &Shared, cfg: &DaemonConfig) {
        if self.closing {
            return;
        }
        if self.asm.has_partial() {
            // A frame paused mid-assembly is resuming: under the old
            // blocking reader this readiness gap was a desync.
            shared.partial_frame_resumes.fetch_add(1, Ordering::AcqRel);
            lazy_obs::counter!("daemon.partial_frame_resumes_total", 1u64);
        }
        let mut reads = 0;
        loop {
            match self.asm.read_from(&mut self.stream) {
                Ok(0) => {
                    if self.asm.has_partial() {
                        // EOF mid-frame: genuine truncation.
                        shared.count_corrupt();
                        self.reply_now(
                            FrameKind::Error,
                            FrameError::Truncated.to_string().into_bytes(),
                        );
                    }
                    self.closing = true;
                    return;
                }
                Ok(_) => {
                    if !self.parse_frames(token, gen, shared, cfg) {
                        return;
                    }
                    reads += 1;
                    if reads >= MAX_READS_PER_EVENT {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    shared.count_corrupt();
                    self.reply_now(
                        FrameKind::Error,
                        FrameError::Io(e.to_string()).to_string().into_bytes(),
                    );
                    self.closing = true;
                    return;
                }
            }
        }
    }

    /// Dispatches every complete frame in the assembler. Returns false
    /// when the stream desynchronized and reading must stop.
    fn parse_frames(
        &mut self,
        token: usize,
        gen: u64,
        shared: &Shared,
        cfg: &DaemonConfig,
    ) -> bool {
        loop {
            match self.asm.next_frame() {
                FrameStatus::NeedMore => return true,
                FrameStatus::Frame { kind, payload } => {
                    self.on_frame(token, gen, kind, payload, shared, cfg);
                }
                FrameStatus::Recoverable(e) => {
                    // Frame consumed in full; the stream is still at a
                    // boundary. Fail this frame, keep the connection.
                    shared.count_corrupt();
                    self.reply_now(FrameKind::Error, e.to_string().into_bytes());
                }
                FrameStatus::Fatal(e) => {
                    // The stream position is no longer trustworthy:
                    // answer best-effort, then close after flushing.
                    shared.count_corrupt();
                    self.reply_now(FrameKind::Error, e.to_string().into_bytes());
                    self.closing = true;
                    return false;
                }
            }
        }
    }

    fn on_frame(
        &mut self,
        token: usize,
        gen: u64,
        kind: FrameKind,
        payload: FrameBytes,
        shared: &Shared,
        cfg: &DaemonConfig,
    ) {
        match kind {
            FrameKind::Health => {
                let status = status_line(
                    shared.draining.load(Ordering::Acquire),
                    shared.lock_queue().len(),
                    shared.inflight.load(Ordering::Acquire),
                    shared.connections.load(Ordering::Acquire),
                );
                self.reply_now(FrameKind::HealthOk, status.into_bytes());
            }
            FrameKind::Shutdown => {
                shared.draining.store(true, Ordering::Release);
                shared.available.notify_all();
                // The ack is deferred: the event loop sends it once the
                // queue is empty, nothing is in flight, and every
                // admitted reply has been routed.
                self.wants_shutdown_ack = true;
            }
            FrameKind::Diagnose
            | FrameKind::Batch
            | FrameKind::FleetCollect
            | FrameKind::FleetPatterns
            | FrameKind::FleetFinalize
            | FrameKind::FleetStats
            | FrameKind::StreamSubmit
            | FrameKind::StreamStatus
            | FrameKind::StreamFinish => {
                if shared.draining.load(Ordering::Acquire) {
                    shared.reject_busy();
                    self.reply_now(FrameKind::Busy, Vec::new());
                    return;
                }
                let seq = self.next_seq;
                let job = Job {
                    token,
                    gen,
                    seq,
                    kind,
                    payload,
                };
                if shared.try_admit(job, cfg.queue_depth) {
                    self.next_seq += 1;
                    self.pending.push_back(PendingReply {
                        seq,
                        deadline: Some(Instant::now() + cfg.request_timeout),
                    });
                    shared.requests.fetch_add(1, Ordering::AcqRel);
                    lazy_obs::counter!("daemon.requests_total", 1u64);
                    shared.available.notify_one();
                } else {
                    shared.reject_busy();
                    self.reply_now(FrameKind::Busy, Vec::new());
                }
            }
            other => {
                // A response kind arriving at the server: protocol
                // misuse, but the frame was whole — answer, carry on.
                let msg = format!("unexpected frame kind {other:?} in a request stream");
                self.reply_now(FrameKind::Error, msg.into_bytes());
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush(&mut self.stream)
    }

    fn finished(&self) -> bool {
        self.closing && self.out.is_empty() && self.pending.is_empty()
    }
}

/// A non-blocking write buffer: frames queue here and drain as the
/// socket accepts them; `WouldBlock` simply leaves the tail for the
/// next `POLLOUT`.
#[derive(Default)]
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    fn queue(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= READ_CHUNK {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn flush<W: Write>(&mut self, w: &mut W) -> std::io::Result<()> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The event loop.

/// A connection slot; the generation counter invalidates completions
/// addressed to a connection that died while its job was in flight.
struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

const TOKEN_LISTENER: usize = usize::MAX;
const TOKEN_WAKER: usize = usize::MAX - 1;

fn event_loop(
    listener: &TcpListener,
    wake_rx: &reactor::WakeReceiver,
    shared: &Shared,
    cfg: &DaemonConfig,
    fleet: &FleetShard<'_>,
    hub: &StreamHub<'_>,
) {
    let mut slots: Vec<Slot> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut open: usize = 0;
    let mut drain_acked = false;
    let mut fds: Vec<reactor::PollFd> = Vec::new();
    let mut tokens: Vec<usize> = Vec::new();
    loop {
        // Route worker completions to their connections.
        for c in shared.take_completions() {
            if let Some(slot) = slots.get_mut(c.token) {
                if slot.gen == c.gen {
                    if let Some(conn) = slot.conn.as_mut() {
                        conn.complete(c.seq, c.kind, c.payload);
                    }
                }
            }
        }
        // Expire overdue requests.
        let now = Instant::now();
        for slot in &mut slots {
            if let Some(conn) = slot.conn.as_mut() {
                conn.sweep_deadlines(now, cfg, shared);
            }
        }
        // Expire idle fleet/stream sessions alongside the request
        // deadlines: an abandoned client's capacity slots recover on
        // the daemon's own clock, not only when a new session tries to
        // admit. Both stores hold at most 64 entries, so the sweep is
        // cheap enough to run every loop turn.
        fleet.sweep_expired();
        hub.sweep_expired();
        // Drain convergence: queue empty, nothing in flight, every
        // admitted reply routed → ack the shutdown, close everything.
        let draining = shared.draining.load(Ordering::Acquire);
        if draining
            && !drain_acked
            && shared.idle()
            && slots
                .iter()
                .all(|s| s.conn.as_ref().is_none_or(|c| c.pending.is_empty()))
        {
            for slot in &mut slots {
                if let Some(conn) = slot.conn.as_mut() {
                    if conn.wants_shutdown_ack {
                        conn.queue_frame(FrameKind::ShutdownAck, b"");
                    }
                    conn.closing = true;
                }
            }
            drain_acked = true;
        }
        // Flush and reap.
        for (i, slot) in slots.iter_mut().enumerate() {
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            let dead = conn.flush().is_err();
            if dead || conn.finished() {
                slot.conn = None;
                slot.gen += 1;
                free.push(i);
                open -= 1;
                lazy_obs::counter!("daemon.conn.closed_total", 1u64);
                lazy_obs::histogram!("daemon.conn.open", open);
            }
        }
        if drain_acked && open == 0 {
            return;
        }
        if !draining {
            accept_ready(listener, &mut slots, &mut free, &mut open, shared, cfg);
        }
        // Build the poll set.
        fds.clear();
        tokens.clear();
        if !draining {
            fds.push(reactor::PollFd::new(listener.as_raw_fd(), reactor::POLLIN));
            tokens.push(TOKEN_LISTENER);
        }
        fds.push(reactor::PollFd::new(wake_rx.fd(), reactor::POLLIN));
        tokens.push(TOKEN_WAKER);
        let mut timeout = POLL_CAP;
        let now = Instant::now();
        for (i, slot) in slots.iter().enumerate() {
            let Some(conn) = slot.conn.as_ref() else {
                continue;
            };
            if let Some(deadline) = conn.next_deadline() {
                timeout = timeout.min(deadline.saturating_duration_since(now));
            }
            let mut events = 0i16;
            // Backpressure: past the high-water mark the connection
            // stops reading; the peer blocks on its own send buffer
            // instead of growing ours.
            if !conn.closing && conn.out.len() < WRITE_HIGH_WATER {
                events |= reactor::POLLIN;
            }
            if !conn.out.is_empty() {
                events |= reactor::POLLOUT;
            }
            if events != 0 {
                fds.push(reactor::PollFd::new(conn.fd, events));
                tokens.push(i);
            }
        }
        reactor::poll(&mut fds, timeout);
        // Dispatch readiness.
        for (fd, &token) in fds.iter().zip(tokens.iter()) {
            match token {
                TOKEN_WAKER => {
                    if fd.readable() {
                        wake_rx.drain();
                    }
                }
                TOKEN_LISTENER => {}
                i => {
                    let Some(slot) = slots.get_mut(i) else {
                        continue;
                    };
                    let gen = slot.gen;
                    let Some(conn) = slot.conn.as_mut() else {
                        continue;
                    };
                    if fd.readable() {
                        conn.handle_readable(i, gen, shared, cfg);
                    }
                    if fd.writable() {
                        // A hard write error is reaped by the next
                        // iteration's flush pass.
                        let _ = conn.flush();
                    }
                }
            }
        }
    }
}

fn accept_ready(
    listener: &TcpListener,
    slots: &mut Vec<Slot>,
    free: &mut Vec<usize>,
    open: &mut usize,
    shared: &Shared,
    cfg: &DaemonConfig,
) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        if *open >= cfg.max_connections {
            shared.reject_busy();
            lazy_obs::counter!("daemon.conn.rejected_total", 1u64);
            let mut stream = stream;
            let _ = write_frame(&mut stream, FrameKind::Busy, b"");
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        let conn = Conn::new(stream, fd);
        let i = free.pop().unwrap_or_else(|| {
            slots.push(Slot { gen: 0, conn: None });
            slots.len() - 1
        });
        slots[i].conn = Some(conn);
        *open += 1;
        shared.connections.fetch_add(1, Ordering::AcqRel);
        lazy_obs::counter!("daemon.accepted_total", 1u64);
        lazy_obs::counter!("daemon.conn.accepted_total", 1u64);
        lazy_obs::histogram!("daemon.conn.open", *open);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazy_trace::driver::{SnapshotTrigger, ThreadTrace};
    use lazy_trace::stats::TraceStats;

    fn sample_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 1,
                bytes: vec![1, 2, 3],
                stats: TraceStats::default(),
                wrapped: false,
            }],
            taken_at: 42,
            trigger_tid: 1,
            trigger_pc: 0x40_0000,
            trigger: SnapshotTrigger::Failure,
        }
    }

    fn sample_failure() -> Failure {
        Failure {
            kind: FailureKind::UseAfterFree { addr: 0x2000_0010 },
            pc: Pc(0x40_0004),
            tid: 3,
            at_ns: 12345,
        }
    }

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(FrameKind::Diagnose, b"hello");
        let (kind, payload) = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(kind, FrameKind::Diagnose);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn frame_checksum_flip_is_detected() {
        let mut frame = encode_frame(FrameKind::Batch, b"payload-bytes");
        let mid = HEADER_LEN + 4;
        frame[mid] ^= 0x20;
        assert_eq!(
            read_frame(&mut frame.as_slice()),
            Err(FrameError::BadChecksum)
        );
    }

    #[test]
    fn frame_bad_magic_and_truncation() {
        let mut frame = encode_frame(FrameKind::Health, b"");
        frame[0] = b'X';
        assert_eq!(read_frame(&mut frame.as_slice()), Err(FrameError::BadMagic));
        let frame = encode_frame(FrameKind::Health, b"abc");
        for cut in 1..frame.len() {
            let err = read_frame(&mut &frame[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated | FrameError::BadChecksum),
                "cut {cut}: {err}"
            );
        }
        assert_eq!(read_frame(&mut &frame[..0]), Err(FrameError::Closed));
    }

    #[test]
    fn frame_oversized_length_rejected_before_allocation() {
        let mut frame = encode_frame(FrameKind::Diagnose, b"x");
        frame[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut frame.as_slice()),
            Err(FrameError::TooLarge(u32::MAX))
        );
    }

    #[test]
    fn frame_unknown_kind_is_recoverable() {
        // Build a frame with kind 99 and a correct checksum: the reader
        // must consume it fully and report BadKind (stream in sync).
        let mut frame = encode_frame(FrameKind::Diagnose, b"zz");
        frame[4] = 99;
        let n = frame.len();
        let sum = fnv1a32(&frame[..n - 4]);
        frame[n - 4..].copy_from_slice(&sum.to_le_bytes());
        let mut stream = frame.clone();
        stream.extend_from_slice(&encode_frame(FrameKind::Health, b""));
        let mut r = stream.as_slice();
        assert_eq!(read_frame(&mut r), Err(FrameError::BadKind(99)));
        // The next frame parses cleanly from the same stream.
        assert_eq!(read_frame(&mut r).unwrap().0, FrameKind::Health);
    }

    #[test]
    fn diagnose_request_roundtrip() {
        let failure = sample_failure();
        let snaps = vec![sample_snapshot(), sample_snapshot()];
        let payload = encode_diagnose_request(&failure, &snaps, &snaps[..1]);
        let req = decode_diagnose_request(&payload).unwrap();
        assert_eq!(req.failure, failure);
        assert_eq!(req.failing.len(), 2);
        assert_eq!(req.successful.len(), 1);
        assert_eq!(req.failing[0].threads[0].bytes, vec![1, 2, 3]);
    }

    #[test]
    fn failure_kinds_roundtrip() {
        let kinds = [
            FailureKind::NullDeref { addr: 7 },
            FailureKind::DivByZero,
            FailureKind::StackOverflow,
            FailureKind::AssertFailed {
                msg: "x > 0".into(),
            },
            FailureKind::BadUnlock { addr: 0x99 },
            FailureKind::BadIndirectCall { target: 0xdead },
            FailureKind::Deadlock {
                parties: vec![
                    DeadlockParty {
                        tid: 1,
                        pc: Pc(10),
                        mutex_addr: 0x100,
                    },
                    DeadlockParty {
                        tid: 2,
                        pc: Pc(20),
                        mutex_addr: 0x200,
                    },
                ],
            },
            FailureKind::Hang,
            FailureKind::Timeout,
        ];
        for kind in kinds {
            let f = Failure {
                kind,
                pc: Pc(0x10),
                tid: 9,
                at_ns: 1,
            };
            let payload = encode_diagnose_request(&f, &[], &[]);
            let back = decode_diagnose_request(&payload).unwrap();
            assert_eq!(back.failure, f);
        }
    }

    #[test]
    fn batch_report_roundtrip() {
        let results = vec![
            Ok("report one".to_string()),
            Err("decode failed".to_string()),
        ];
        let payload = encode_batch_report(&results);
        let back = decode_batch_report(&payload).unwrap();
        assert_eq!(back[0], Ok("report one".to_string()));
        assert_eq!(
            back[1],
            Err(DiagnosisError::Remote {
                detail: "decode failed".to_string()
            })
        );
    }

    #[test]
    fn corrupt_inner_snapshot_is_a_typed_wire_error() {
        let failure = sample_failure();
        let snaps = vec![sample_snapshot()];
        let mut payload = encode_diagnose_request(&failure, &snaps, &[]);
        // Flip a byte inside the embedded LZTR body (past the failure
        // record and the two count/length words).
        let n = payload.len();
        payload[n - 10] ^= 0x40;
        match decode_diagnose_request(&payload) {
            Err(DiagnosisError::Wire(_)) => {}
            other => panic!("expected a wire error, got {other:?}"),
        }
    }

    /// A reader that serves the source in fixed-size chunks and, when
    /// `timeouts` is set, fails with `WouldBlock` between chunks — the
    /// socket-level shape of a slow writer under a read timeout.
    struct ChunkedReader {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        timeouts: bool,
        primed: bool,
    }

    impl ChunkedReader {
        fn new(data: Vec<u8>, chunk: usize, timeouts: bool) -> ChunkedReader {
            ChunkedReader {
                data,
                pos: 0,
                chunk,
                timeouts,
                primed: false,
            }
        }
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.timeouts && !self.primed {
                self.primed = true;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            self.primed = false;
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            if n == 0 {
                return Ok(0);
            }
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn read_frame_survives_mid_frame_timeouts() {
        // The regression this PR fixes: a frame arriving in several
        // chunks with read timeouts between them must parse — the old
        // reader lost the first header byte to the idle-poll read and
        // reported BadMagic, killing the (merely slow) client.
        let frame = encode_frame(FrameKind::Diagnose, b"slow but valid");
        let mut r = ChunkedReader::new(frame, 3, true);
        // The first byte arrives promptly; the rest dribbles in with a
        // timeout before every later chunk.
        r.primed = true;
        let (kind, payload) = read_frame(&mut r).unwrap();
        assert_eq!(kind, FrameKind::Diagnose);
        assert_eq!(payload, b"slow but valid");
    }

    #[test]
    fn read_frame_still_times_out_at_frame_boundary() {
        // Before the first byte, a timeout is a poll signal, not a
        // wait: idle connections must still surface TimedOut.
        let mut r = ChunkedReader::new(encode_frame(FrameKind::Health, b""), 4, true);
        assert_eq!(read_frame(&mut r), Err(FrameError::TimedOut));
        // The stream was not consumed; the retry reads the full frame.
        assert_eq!(read_frame(&mut r).unwrap().0, FrameKind::Health);
    }

    fn feed(asm: &mut FrameAssembler, bytes: &[u8], chunk: usize) -> Vec<FrameStatus> {
        let mut r = ChunkedReader::new(bytes.to_vec(), chunk, false);
        let mut out = Vec::new();
        loop {
            match asm.read_from(&mut r) {
                Ok(0) => break,
                Ok(_) => loop {
                    match asm.next_frame() {
                        FrameStatus::NeedMore => break,
                        status @ FrameStatus::Fatal(_) => {
                            out.push(status);
                            return out;
                        }
                        status => out.push(status),
                    }
                },
                Err(_) => break,
            }
        }
        out
    }

    #[test]
    fn assembler_reassembles_byte_at_a_time() {
        let frame = encode_frame(FrameKind::Diagnose, b"dribbled payload");
        let mut asm = FrameAssembler::new();
        let got = feed(&mut asm, &frame, 1);
        assert_eq!(got.len(), 1);
        match &got[0] {
            FrameStatus::Frame { kind, payload } => {
                assert_eq!(*kind, FrameKind::Diagnose);
                assert_eq!(payload.as_slice(), b"dribbled payload");
            }
            _ => panic!("expected a whole frame"),
        }
        assert!(!asm.has_partial());
    }

    #[test]
    fn assembler_parses_pipelined_frames_and_keeps_the_tail() {
        let mut bytes = encode_frame(FrameKind::Health, b"");
        bytes.extend_from_slice(&encode_frame(FrameKind::Diagnose, b"second"));
        let second = encode_frame(FrameKind::Batch, b"third");
        bytes.extend_from_slice(&second[..5]); // partial third frame
        let mut asm = FrameAssembler::new();
        let got = feed(&mut asm, &bytes, usize::MAX);
        assert_eq!(got.len(), 2);
        assert!(matches!(
            got[0],
            FrameStatus::Frame {
                kind: FrameKind::Health,
                ..
            }
        ));
        assert!(matches!(
            got[1],
            FrameStatus::Frame {
                kind: FrameKind::Diagnose,
                ..
            }
        ));
        // The partial third frame is retained, not an error.
        assert!(asm.has_partial());
        assert_eq!(asm.pending_bytes(), 5);
    }

    #[test]
    fn assembler_recovers_from_bad_checksum_and_bad_kind() {
        let mut flipped = encode_frame(FrameKind::Diagnose, b"payload-bytes");
        flipped[HEADER_LEN + 4] ^= 0x20;
        let mut unknown = encode_frame(FrameKind::Diagnose, b"zz");
        unknown[4] = 99;
        let n = unknown.len();
        let sum = fnv1a32(&unknown[..n - 4]);
        unknown[n - 4..].copy_from_slice(&sum.to_le_bytes());
        let mut bytes = flipped;
        bytes.extend_from_slice(&unknown);
        bytes.extend_from_slice(&encode_frame(FrameKind::Health, b""));
        let mut asm = FrameAssembler::new();
        let got = feed(&mut asm, &bytes, 7);
        assert_eq!(got.len(), 3);
        assert!(matches!(
            got[0],
            FrameStatus::Recoverable(FrameError::BadChecksum)
        ));
        assert!(matches!(
            got[1],
            FrameStatus::Recoverable(FrameError::BadKind(99))
        ));
        // Both bad frames were consumed in full: the stream stayed in
        // sync and the trailing good frame parses.
        assert!(matches!(
            got[2],
            FrameStatus::Frame {
                kind: FrameKind::Health,
                ..
            }
        ));
    }

    #[test]
    fn assembler_fatal_on_bad_magic_and_oversize() {
        let mut asm = FrameAssembler::new();
        let got = feed(&mut asm, b"GET / HTTP/1.1\r\n", usize::MAX);
        assert!(matches!(got[0], FrameStatus::Fatal(FrameError::BadMagic)));
        // Garbage is caught from the very first byte, before a full
        // header accumulates.
        let mut asm = FrameAssembler::new();
        let got = feed(&mut asm, b"X", usize::MAX);
        assert!(matches!(got[0], FrameStatus::Fatal(FrameError::BadMagic)));
        let mut oversized = encode_frame(FrameKind::Diagnose, b"x");
        oversized[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut asm = FrameAssembler::new();
        let got = feed(&mut asm, &oversized, usize::MAX);
        assert!(matches!(
            got[0],
            FrameStatus::Fatal(FrameError::TooLarge(u32::MAX))
        ));
    }

    #[test]
    fn assembler_detaches_lone_frames_without_copying() {
        // A frame alone in the buffer is handed over wholesale: the
        // assembler's buffer moves into the FrameBytes and the payload
        // is a window into it — the zero-copy ingest path.
        let frame = encode_frame(FrameKind::Diagnose, b"zero copy body");
        let mut asm = FrameAssembler::new();
        let mut r = ChunkedReader::new(frame, usize::MAX, false);
        asm.read_from(&mut r).unwrap();
        match asm.next_frame() {
            FrameStatus::Frame { payload, .. } => {
                assert_eq!(payload.as_slice(), b"zero copy body");
                assert_eq!(payload.start, HEADER_LEN);
            }
            _ => panic!("expected a frame"),
        }
        assert!(asm.buf.is_empty(), "buffer should have been detached");
    }

    #[test]
    fn admission_check_and_push_is_atomic_under_contention() {
        // 16 threads race one admission slot table with depth 4 and no
        // consumer: exactly 4 must win. The old check-then-push (bound
        // read under the lock, push after re-acquiring) let racing
        // connections overshoot the queue depth.
        let shared = Shared::default();
        let depth = 4;
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    for seq in 0..8 {
                        let job = Job {
                            token: 0,
                            gen: 0,
                            seq,
                            kind: FrameKind::Diagnose,
                            payload: FrameBytes::from_vec(Vec::new()),
                        };
                        if shared.try_admit(job, depth) {
                            admitted.fetch_add(1, Ordering::AcqRel);
                        }
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Acquire), depth);
        assert_eq!(shared.lock_queue().len(), depth);
    }

    #[test]
    fn status_line_reports_drain_state() {
        assert_eq!(
            status_line(false, 2, 1, 7),
            "ok queued=2 inflight=1 accepted=7"
        );
        let draining = status_line(true, 0, 3, 9);
        assert!(draining.starts_with("draining "), "{draining}");
        assert_eq!(draining, "draining queued=0 inflight=3 accepted=9");
    }

    #[test]
    fn replies_ship_in_request_order() {
        // Out-of-order completions (seq 1 before seq 0) must not
        // reorder the wire: the connection holds seq 1 until seq 0
        // lands.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        let fd = stream.as_raw_fd();
        let mut conn = Conn::new(stream, fd);
        let s0 = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.push_back(PendingReply {
            seq: s0,
            deadline: None,
        });
        let s1 = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.push_back(PendingReply {
            seq: s1,
            deadline: None,
        });
        conn.complete(s1, FrameKind::Report, b"second".to_vec());
        assert!(conn.out.is_empty(), "seq 1 must wait for seq 0");
        conn.complete(s0, FrameKind::Report, b"first".to_vec());
        assert!(!conn.out.is_empty());
        conn.flush().unwrap();
        drop(conn);
        let mut peer = peer;
        assert_eq!(read_frame(&mut peer).unwrap().1, b"first");
        assert_eq!(read_frame(&mut peer).unwrap().1, b"second");
    }

    #[test]
    fn inflated_counts_are_rejected_before_allocation() {
        let mut payload = encode_diagnose_request(&sample_failure(), &[], &[]);
        // failing-count word sits right after the failure record.
        let off = payload.len() - 8;
        payload[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_diagnose_request(&payload).is_err());
        let mut batch = encode_batch_request(&[]);
        batch[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch_request(&batch).is_err());
    }
}
