//! `snorlaxd` — the diagnosis daemon.
//!
//! The paper's deployment model is client-server: production endpoints
//! ship trace snapshots to an offline diagnosis site (§3, §5). This
//! module is that site's front door — a std-only TCP daemon (threads +
//! [`TcpListener`], zero dependencies, like the rest of the repo) that
//! serves [`DiagnosisServer`] over a length-prefixed framed protocol
//! wrapping the existing checksummed snapshot wire format
//! (`lazy_trace::wire`).
//!
//! ## Frame layout
//!
//! Every message in either direction is one frame (integers
//! little-endian):
//!
//! ```text
//! magic "SNRF" | kind u8 | payload_len u32 | payload | fnv1a32
//! ```
//!
//! where the trailing checksum covers everything before it. The
//! declared length is clamped against [`MAX_FRAME_PAYLOAD`] *before*
//! any allocation — the same clamp-before-allocate hardening the
//! snapshot wire format applies to its attacker-controlled lengths.
//! Request payloads (`Diagnose`, `Batch`) embed snapshots in their
//! `LZTR` wire form, so a snapshot corrupted in transit is caught by
//! its own checksum even when the frame around it survives.
//!
//! ## Robustness contract
//!
//! * **Backpressure** — admission is a bounded queue
//!   ([`DaemonConfig::queue_depth`]); a request that would exceed it is
//!   rejected immediately with a typed [`FrameKind::Busy`] response,
//!   never queued unboundedly. The connection count is bounded the same
//!   way ([`DaemonConfig::max_connections`]).
//! * **Deadlines** — each admitted request has
//!   [`DaemonConfig::request_timeout`] to complete; past it the client
//!   gets a typed error response and the worker's eventual result is
//!   discarded.
//! * **Error isolation** — a frame whose checksum fails is consumed in
//!   full (the stream stays in sync), answered with an error response,
//!   and the connection *continues*; a request whose inner snapshot is
//!   corrupt fails with that request's typed error alone. Only frames
//!   that desynchronize the stream (bad magic, truncation, oversized
//!   length) close the connection — and only that connection.
//! * **Graceful drain** — a `Shutdown` frame stops admission, lets
//!   queued and in-flight jobs finish, and acks only once the daemon is
//!   idle; [`serve`] then returns.

use crate::batch::{BatchConfig, BatchJob};
use crate::error::DiagnosisError;
use crate::fleet::{
    decode_fleet_collect, decode_fleet_finalize, decode_fleet_patterns, encode_collect_reply,
    encode_finalize_reply, encode_patterns_reply, FleetShard,
};
use crate::patterns::BugPattern;
use crate::server::{DiagnosisServer, ServerConfig};
use lazy_ir::{Module, Pc};
use lazy_trace::wire::{fnv1a32, fnv1a32_with};
use lazy_trace::{decode_snapshot, encode_snapshot, TraceSnapshot};
use lazy_vm::{DeadlockParty, Failure, FailureKind};
use std::collections::VecDeque;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Leading bytes of every frame.
pub const FRAME_MAGIC: &[u8; 4] = b"SNRF";

/// Hard cap on a frame's declared payload length; anything larger is
/// rejected before a single byte of it is allocated or read.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// magic + kind + payload_len.
const HEADER_LEN: usize = 4 + 1 + 4;

/// How often blocked connection reads wake up to check for drain.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Frame discriminants. Requests are low, responses high, so a peer
/// echoing a request back is caught as a protocol error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Request: diagnose one failure report.
    Diagnose = 0,
    /// Request: diagnose a batch of failure reports.
    Batch = 1,
    /// Request: liveness / load probe.
    Health = 2,
    /// Request: drain in-flight work, then stop serving.
    Shutdown = 3,
    /// Request (fleet round 1): open a shard session — decode this
    /// shard's trace partition, report its executed set.
    FleetCollect = 4,
    /// Request (fleet round 2): the merged global executed set; the
    /// shard computes candidates against it and generates patterns from
    /// its local failing traces.
    FleetPatterns = 5,
    /// Request (fleet round 3): the merged global pattern set; the
    /// shard returns its partial sufficient statistics and closes the
    /// session.
    FleetFinalize = 6,
    /// Response: the rendered diagnosis report (UTF-8).
    Report = 16,
    /// Response: per-job reports for a batch request.
    BatchReport = 17,
    /// Response: this request failed; payload is the error text.
    Error = 18,
    /// Response: rejected by admission control; retry later.
    Busy = 19,
    /// Response: health probe answer (UTF-8 status line).
    HealthOk = 20,
    /// Response: drain complete, the daemon is exiting.
    ShutdownAck = 21,
    /// Response to [`FrameKind::FleetCollect`]: the shard's executed
    /// set and decode-health sums.
    FleetCollectAck = 22,
    /// Response to [`FrameKind::FleetPatterns`]: the shard's locally
    /// generated pattern set plus candidate statistics.
    FleetPatternSet = 23,
    /// Response to [`FrameKind::FleetFinalize`]: the shard's serialized
    /// partial [`crate::statistics::PatternStats`] and event times.
    PartialStats = 24,
}

impl FrameKind {
    fn from_u8(b: u8) -> Result<FrameKind, FrameError> {
        Ok(match b {
            0 => FrameKind::Diagnose,
            1 => FrameKind::Batch,
            2 => FrameKind::Health,
            3 => FrameKind::Shutdown,
            4 => FrameKind::FleetCollect,
            5 => FrameKind::FleetPatterns,
            6 => FrameKind::FleetFinalize,
            16 => FrameKind::Report,
            17 => FrameKind::BatchReport,
            18 => FrameKind::Error,
            19 => FrameKind::Busy,
            20 => FrameKind::HealthOk,
            21 => FrameKind::ShutdownAck,
            22 => FrameKind::FleetCollectAck,
            23 => FrameKind::FleetPatternSet,
            24 => FrameKind::PartialStats,
            other => return Err(FrameError::BadKind(other)),
        })
    }
}

/// A failure of the framed transport layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not begin with the frame magic.
    BadMagic,
    /// The frame kind discriminant is unknown (frame fully consumed —
    /// the stream is still in sync).
    BadKind(u8),
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    TooLarge(u32),
    /// The stream ended mid-frame.
    Truncated,
    /// The frame checksum does not match (frame fully consumed — the
    /// stream is still in sync).
    BadChecksum,
    /// A request or response payload is structurally malformed.
    BadPayload(&'static str),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A read deadline elapsed at a frame boundary.
    TimedOut,
    /// Socket I/O failed.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a snorlaxd frame (bad magic)"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::Io(e) => write!(f, "socket i/o failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn io_error(e: &std::io::Error) -> FrameError {
    match e.kind() {
        ErrorKind::UnexpectedEof => FrameError::Truncated,
        ErrorKind::WouldBlock | ErrorKind::TimedOut => FrameError::TimedOut,
        _ => FrameError::Io(e.to_string()),
    }
}

/// Encodes one frame: header, payload, trailing checksum.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(FRAME_MAGIC);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a32(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| io_error(&e))
}

/// Reads one frame, validating checksum before interpreting the kind —
/// so recoverable rejections ([`FrameError::BadChecksum`],
/// [`FrameError::BadKind`]) always leave the stream positioned at the
/// next frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(FrameKind, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // The first byte read distinguishes a clean close (EOF at a frame
    // boundary) and an idle-poll timeout from mid-frame truncation.
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) => return Err(io_error(&e)),
    }
    read_exact(r, &mut header[1..])?;
    if &header[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let declared = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    let len = declared as usize;
    // Clamp before the payload Vec exists: a corrupt length field must
    // not drive a giant allocation.
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::TooLarge(declared));
    }
    let mut payload = vec![0u8; len];
    read_exact(r, &mut payload)?;
    let mut trailer = [0u8; 4];
    read_exact(r, &mut trailer)?;
    let expect = u32::from_le_bytes(trailer);
    if fnv1a32_with(fnv1a32(&header), &payload) != expect {
        return Err(FrameError::BadChecksum);
    }
    let kind = FrameKind::from_u8(header[4])?;
    Ok((kind, payload))
}

/// Writes one frame.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, payload: &[u8]) -> Result<(), FrameError> {
    w.write_all(&encode_frame(kind, payload))
        .map_err(|e| io_error(&e))
}

// ---------------------------------------------------------------------
// Request/response payload codec.

/// One decoded diagnosis request: the failure plus its snapshots, owned
/// (they arrived over a socket).
#[derive(Clone, Debug)]
pub struct DiagnoseRequest {
    /// The failure the client observed.
    pub failure: Failure,
    /// Snapshots from failing executions.
    pub failing: Vec<TraceSnapshot>,
    /// Snapshots from successful executions at the failure breakpoint.
    pub successful: Vec<TraceSnapshot>,
}

pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        // Declared lengths are attacker-controlled: compare against the
        // remainder, never compute `pos + n`.
        if n > self.remaining() {
            return Err(FrameError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

fn kind_code(kind: &FailureKind) -> (u8, u64) {
    match kind {
        FailureKind::NullDeref { addr } => (0, *addr),
        FailureKind::UseAfterFree { addr } => (1, *addr),
        FailureKind::WildAccess { addr } => (2, *addr),
        FailureKind::BadFree { addr } => (3, *addr),
        FailureKind::DivByZero => (4, 0),
        FailureKind::StackOverflow => (5, 0),
        FailureKind::AssertFailed { .. } => (6, 0),
        FailureKind::BadUnlock { addr } => (7, *addr),
        FailureKind::BadIndirectCall { target } => (8, *target),
        FailureKind::Deadlock { .. } => (9, 0),
        FailureKind::Hang => (10, 0),
        FailureKind::Timeout => (11, 0),
    }
}

pub(crate) fn encode_failure(out: &mut Vec<u8>, failure: &Failure) {
    let (code, addr) = kind_code(&failure.kind);
    out.push(code);
    out.extend_from_slice(&failure.pc.0.to_le_bytes());
    out.extend_from_slice(&failure.tid.to_le_bytes());
    out.extend_from_slice(&failure.at_ns.to_le_bytes());
    out.extend_from_slice(&addr.to_le_bytes());
    match &failure.kind {
        FailureKind::AssertFailed { msg } => {
            out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            out.extend_from_slice(msg.as_bytes());
        }
        FailureKind::Deadlock { parties } => {
            out.extend_from_slice(&(parties.len() as u32).to_le_bytes());
            for p in parties {
                out.extend_from_slice(&p.tid.to_le_bytes());
                out.extend_from_slice(&p.pc.0.to_le_bytes());
                out.extend_from_slice(&p.mutex_addr.to_le_bytes());
            }
        }
        _ => {}
    }
}

/// One encoded deadlock party: tid + pc + mutex address.
const PARTY_BYTES: usize = 4 + 8 + 8;

pub(crate) fn decode_failure(c: &mut Cursor<'_>) -> Result<Failure, FrameError> {
    let code = c.u8()?;
    let pc = Pc(c.u64()?);
    let tid = c.u32()?;
    let at_ns = c.u64()?;
    let addr = c.u64()?;
    let kind = match code {
        0 => FailureKind::NullDeref { addr },
        1 => FailureKind::UseAfterFree { addr },
        2 => FailureKind::WildAccess { addr },
        3 => FailureKind::BadFree { addr },
        4 => FailureKind::DivByZero,
        5 => FailureKind::StackOverflow,
        6 => {
            let len = c.u32()? as usize;
            let msg = String::from_utf8(c.take(len)?.to_vec())
                .map_err(|_| FrameError::BadPayload("assert message utf-8"))?;
            FailureKind::AssertFailed { msg }
        }
        7 => FailureKind::BadUnlock { addr },
        8 => FailureKind::BadIndirectCall { target: addr },
        9 => {
            let n = c.u32()? as usize;
            if n > c.remaining() / PARTY_BYTES {
                return Err(FrameError::BadPayload("deadlock party count"));
            }
            let mut parties = Vec::with_capacity(n);
            for _ in 0..n {
                parties.push(DeadlockParty {
                    tid: c.u32()?,
                    pc: Pc(c.u64()?),
                    mutex_addr: c.u64()?,
                });
            }
            FailureKind::Deadlock { parties }
        }
        10 => FailureKind::Hang,
        11 => FailureKind::Timeout,
        _ => return Err(FrameError::BadPayload("failure kind")),
    };
    Ok(Failure {
        kind,
        pc,
        tid,
        at_ns,
    })
}

pub(crate) fn encode_snapshots(out: &mut Vec<u8>, snaps: &[TraceSnapshot]) {
    out.extend_from_slice(&(snaps.len() as u32).to_le_bytes());
    for s in snaps {
        let wire = encode_snapshot(s);
        out.extend_from_slice(&(wire.len() as u32).to_le_bytes());
        out.extend_from_slice(&wire);
    }
}

pub(crate) fn decode_snapshots(c: &mut Cursor<'_>) -> Result<Vec<TraceSnapshot>, DiagnosisError> {
    let n = c.u32().map_err(DiagnosisError::Frame)? as usize;
    // Each snapshot record carries at least its length word: clamp the
    // declared count before sizing anything by it.
    if n > c.remaining() / 4 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "snapshot count",
        )));
    }
    let mut snaps = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32().map_err(DiagnosisError::Frame)? as usize;
        let wire = c.take(len).map_err(DiagnosisError::Frame)?;
        // The embedded `LZTR` encoding is self-validating; corruption
        // that survived the frame checksum is caught here as a typed
        // wire error for *this* request alone.
        snaps.push(decode_snapshot(wire)?);
    }
    Ok(snaps)
}

/// Encodes a [`FrameKind::Diagnose`] request payload.
pub fn encode_diagnose_request(
    failure: &Failure,
    failing: &[TraceSnapshot],
    successful: &[TraceSnapshot],
) -> Vec<u8> {
    let mut out = Vec::new();
    encode_failure(&mut out, failure);
    encode_snapshots(&mut out, failing);
    encode_snapshots(&mut out, successful);
    out
}

/// Decodes a [`FrameKind::Diagnose`] request payload.
pub fn decode_diagnose_request(payload: &[u8]) -> Result<DiagnoseRequest, DiagnosisError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let req = decode_diagnose_cursor(&mut c)?;
    if c.remaining() != 0 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "trailing bytes",
        )));
    }
    Ok(req)
}

fn decode_diagnose_cursor(c: &mut Cursor<'_>) -> Result<DiagnoseRequest, DiagnosisError> {
    let failure = decode_failure(c).map_err(DiagnosisError::Frame)?;
    let failing = decode_snapshots(c)?;
    let successful = decode_snapshots(c)?;
    Ok(DiagnoseRequest {
        failure,
        failing,
        successful,
    })
}

/// Encodes a [`FrameKind::Batch`] request payload from borrowed jobs.
pub fn encode_batch_request(jobs: &[BatchJob<'_>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(jobs.len() as u32).to_le_bytes());
    for j in jobs {
        let body = encode_diagnose_request(j.failure, j.failing, j.successful);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
    }
    out
}

/// Decodes a [`FrameKind::Batch`] request payload.
pub fn decode_batch_request(payload: &[u8]) -> Result<Vec<DiagnoseRequest>, DiagnosisError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let n = c.u32().map_err(DiagnosisError::Frame)? as usize;
    if n > c.remaining() / 4 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload("job count")));
    }
    let mut jobs = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32().map_err(DiagnosisError::Frame)? as usize;
        let body = c.take(len).map_err(DiagnosisError::Frame)?;
        jobs.push(decode_diagnose_request(body)?);
    }
    if c.remaining() != 0 {
        return Err(DiagnosisError::Frame(FrameError::BadPayload(
            "trailing bytes",
        )));
    }
    Ok(jobs)
}

/// Encodes a [`FrameKind::BatchReport`] payload: per job, an ok flag
/// plus either the rendered report or the error text.
pub fn encode_batch_report(results: &[Result<String, String>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(results.len() as u32).to_le_bytes());
    for r in results {
        let (ok, text) = match r {
            Ok(t) => (1u8, t.as_str()),
            Err(t) => (0u8, t.as_str()),
        };
        out.push(ok);
        out.extend_from_slice(&(text.len() as u32).to_le_bytes());
        out.extend_from_slice(text.as_bytes());
    }
    out
}

/// Decodes a [`FrameKind::BatchReport`] payload into per-job results;
/// a failed job surfaces as [`DiagnosisError::Remote`] carrying the
/// server's error text.
pub fn decode_batch_report(
    payload: &[u8],
) -> Result<Vec<Result<String, DiagnosisError>>, FrameError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let n = c.u32()? as usize;
    // Each record is at least flag + length word.
    if n > c.remaining() / 5 {
        return Err(FrameError::BadPayload("batch report count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let ok = c.u8()?;
        let len = c.u32()? as usize;
        let text = String::from_utf8(c.take(len)?.to_vec())
            .map_err(|_| FrameError::BadPayload("report utf-8"))?;
        out.push(match ok {
            1 => Ok(text),
            0 => Err(DiagnosisError::Remote { detail: text }),
            _ => return Err(FrameError::BadPayload("ok flag")),
        });
    }
    if c.remaining() != 0 {
        return Err(FrameError::BadPayload("trailing bytes"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The daemon.

/// `snorlaxd` runtime knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Diagnosis worker threads; `0` means one per available core.
    pub workers: usize,
    /// Admission bound: maximum requests queued or in flight; a request
    /// beyond it gets [`FrameKind::Busy`] instead of queueing.
    pub queue_depth: usize,
    /// Maximum concurrently served connections; excess connections are
    /// answered [`FrameKind::Busy`] and closed at accept.
    pub max_connections: usize,
    /// Deadline for an admitted request to complete; past it the client
    /// receives a typed error and the result is discarded.
    pub request_timeout: Duration,
    /// Batch execution knobs for [`FrameKind::Batch`] requests.
    pub batch: BatchConfig,
    /// Per-worker diagnosis server configuration.
    pub server: ServerConfig,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            workers: 0,
            queue_depth: 64,
            max_connections: 64,
            request_timeout: Duration::from_secs(30),
            batch: BatchConfig::default(),
            server: ServerConfig::default(),
        }
    }
}

/// What one [`serve`] run did, returned once the daemon drains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Requests admitted past backpressure.
    pub requests: u64,
    /// Requests (or connections) rejected with `Busy`.
    pub rejected_busy: u64,
    /// Admitted requests that missed their deadline.
    pub timeouts: u64,
    /// Frames rejected by the transport layer (checksum, magic, kind,
    /// length, truncation).
    pub frames_corrupt: u64,
}

struct Job {
    request: Request,
    reply: mpsc::Sender<(FrameKind, Vec<u8>)>,
}

enum Request {
    Diagnose(DiagnoseRequest),
    Batch(Vec<DiagnoseRequest>),
    FleetCollect {
        session: u64,
        request: DiagnoseRequest,
    },
    FleetPatterns {
        session: u64,
        executed: Vec<Pc>,
    },
    FleetFinalize {
        session: u64,
        patterns: Vec<BugPattern>,
    },
}

#[derive(Default)]
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    draining: AtomicBool,
    inflight: AtomicUsize,
    conns: AtomicUsize,
    connections: AtomicU64,
    requests: AtomicU64,
    rejected_busy: AtomicU64,
    timeouts: AtomicU64,
    frames_corrupt: AtomicU64,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn idle(&self) -> bool {
        self.lock_queue().is_empty() && self.inflight.load(Ordering::Acquire) == 0
    }

    fn stats(&self) -> DaemonStats {
        DaemonStats {
            connections: self.connections.load(Ordering::Acquire),
            requests: self.requests.load(Ordering::Acquire),
            rejected_busy: self.rejected_busy.load(Ordering::Acquire),
            timeouts: self.timeouts.load(Ordering::Acquire),
            frames_corrupt: self.frames_corrupt.load(Ordering::Acquire),
        }
    }
}

/// Serves diagnosis for `module` on `listener` until a `Shutdown`
/// frame drains it. Blocking: the caller's thread runs the accept loop
/// while scoped worker and connection threads ride along.
///
/// # Errors
///
/// Returns [`DiagnosisError::Frame`] if the listener's local address
/// cannot be resolved (needed for the shutdown self-wake).
pub fn serve(
    listener: &TcpListener,
    module: &Module,
    cfg: &DaemonConfig,
) -> Result<DaemonStats, DiagnosisError> {
    let local = listener
        .local_addr()
        .map_err(|e| DiagnosisError::Frame(FrameError::Io(e.to_string())))?;
    let shared = Shared::default();
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.workers
    };
    // One fleet-shard state for the whole daemon: a coordinator's
    // three protocol rounds may arrive on any worker, so the session
    // store must outlive any single request.
    let fleet = FleetShard::new(module, cfg.server.clone());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker(&shared, module, cfg, &fleet));
        }
        loop {
            let stream = match listener.accept() {
                Ok((s, _peer)) => s,
                Err(_) => {
                    if shared.draining.load(Ordering::Acquire) {
                        break;
                    }
                    continue;
                }
            };
            if shared.draining.load(Ordering::Acquire) {
                // The shutdown self-wake (or a late client): stop
                // accepting; the drop closes the socket.
                break;
            }
            if shared.conns.load(Ordering::Acquire) >= cfg.max_connections {
                shared.rejected_busy.fetch_add(1, Ordering::AcqRel);
                lazy_obs::counter!("daemon.rejected_busy_total", 1u64);
                let mut stream = stream;
                let _ = write_frame(&mut stream, FrameKind::Busy, b"");
                continue;
            }
            shared.conns.fetch_add(1, Ordering::AcqRel);
            shared.connections.fetch_add(1, Ordering::AcqRel);
            lazy_obs::counter!("daemon.accepted_total", 1u64);
            let shared = &shared;
            scope.spawn(move || {
                handle_conn(stream, shared, cfg, local);
                shared.conns.fetch_sub(1, Ordering::AcqRel);
            });
        }
        // Wake any worker still parked on the condvar.
        shared.available.notify_all();
    });
    Ok(shared.stats())
}

fn worker(shared: &Shared, module: &Module, cfg: &DaemonConfig, fleet: &FleetShard<'_>) {
    let server = DiagnosisServer::new(module, cfg.server.clone());
    loop {
        let job = {
            let mut q = shared.lock_queue();
            loop {
                if let Some(j) = q.pop_front() {
                    // Flip queued → in-flight while still holding the
                    // queue lock, so the drain check (`queue empty AND
                    // nothing in flight`) can never observe the job in
                    // neither state.
                    shared.inflight.fetch_add(1, Ordering::AcqRel);
                    break Some(j);
                }
                if shared.draining.load(Ordering::Acquire) {
                    break None;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { break };
        lazy_obs::histogram!("daemon.inflight", shared.inflight.load(Ordering::Acquire));
        let reply = {
            let _span = lazy_obs::span!("daemon.request");
            catch_unwind(AssertUnwindSafe(|| {
                process(&server, module, cfg, fleet, job.request)
            }))
            .unwrap_or_else(|p| {
                let e = DiagnosisError::from_panic("daemon", p);
                (FrameKind::Error, e.to_string().into_bytes())
            })
        };
        // The connection may have timed out and hung up; its loss, not
        // ours.
        let _ = job.reply.send(reply);
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

fn process(
    server: &DiagnosisServer<'_>,
    module: &Module,
    cfg: &DaemonConfig,
    fleet: &FleetShard<'_>,
    request: Request,
) -> (FrameKind, Vec<u8>) {
    let error = |e: DiagnosisError| (FrameKind::Error, e.to_string().into_bytes());
    match request {
        Request::Diagnose(r) => match server.diagnose(&r.failure, &r.failing, &r.successful) {
            Ok(d) => (FrameKind::Report, d.render(module).into_bytes()),
            Err(e) => (FrameKind::Error, e.to_string().into_bytes()),
        },
        Request::Batch(reqs) => {
            let jobs: Vec<BatchJob<'_>> = reqs
                .iter()
                .map(|r| BatchJob {
                    failure: &r.failure,
                    failing: &r.failing,
                    successful: &r.successful,
                })
                .collect();
            let out = server.diagnose_batch(&jobs, &cfg.batch);
            let results: Vec<Result<String, String>> = out
                .diagnoses
                .iter()
                .map(|d| match d {
                    Ok(d) => Ok(d.render(module)),
                    Err(e) => Err(e.to_string()),
                })
                .collect();
            (FrameKind::BatchReport, encode_batch_report(&results))
        }
        Request::FleetCollect { session, request } => {
            match fleet.collect(
                session,
                &request.failure,
                &request.failing,
                &request.successful,
            ) {
                Ok(r) => (FrameKind::FleetCollectAck, encode_collect_reply(&r)),
                Err(e) => error(e),
            }
        }
        Request::FleetPatterns { session, executed } => match fleet.patterns(session, &executed) {
            Ok(r) => (FrameKind::FleetPatternSet, encode_patterns_reply(&r)),
            Err(e) => error(e),
        },
        Request::FleetFinalize { session, patterns } => match fleet.finalize(session, &patterns) {
            Ok(r) => (FrameKind::PartialStats, encode_finalize_reply(&r)),
            Err(e) => error(e),
        },
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Shared, cfg: &DaemonConfig, local: SocketAddr) {
    // A finite read timeout doubles as the drain poll: a connection
    // blocked on an idle peer notices `draining` within one interval.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    loop {
        match read_frame(&mut stream) {
            Ok((FrameKind::Health, _)) => {
                let status = format!(
                    "ok queued={} inflight={} accepted={}",
                    shared.lock_queue().len(),
                    shared.inflight.load(Ordering::Acquire),
                    shared.connections.load(Ordering::Acquire),
                );
                if write_frame(&mut stream, FrameKind::HealthOk, status.as_bytes()).is_err() {
                    return;
                }
            }
            Ok((FrameKind::Shutdown, _)) => {
                shared.draining.store(true, Ordering::Release);
                shared.available.notify_all();
                // Unblock the accept loop so `serve` can observe the
                // drain flag and return.
                let _ = TcpStream::connect(local);
                while !shared.idle() {
                    std::thread::sleep(Duration::from_millis(2));
                }
                let _ = write_frame(&mut stream, FrameKind::ShutdownAck, b"");
                return;
            }
            Ok((
                kind @ (FrameKind::Diagnose
                | FrameKind::Batch
                | FrameKind::FleetCollect
                | FrameKind::FleetPatterns
                | FrameKind::FleetFinalize),
                payload,
            )) => {
                if shared.draining.load(Ordering::Acquire) {
                    shared.rejected_busy.fetch_add(1, Ordering::AcqRel);
                    lazy_obs::counter!("daemon.rejected_busy_total", 1u64);
                    if write_frame(&mut stream, FrameKind::Busy, b"").is_err() {
                        return;
                    }
                    continue;
                }
                // Bounded admission: reject rather than queue past the
                // bound. The worker flips queued → in-flight under the
                // queue lock, so `len + inflight` cannot double-count.
                let pending = shared.lock_queue().len() + shared.inflight.load(Ordering::Acquire);
                if pending >= cfg.queue_depth {
                    shared.rejected_busy.fetch_add(1, Ordering::AcqRel);
                    lazy_obs::counter!("daemon.rejected_busy_total", 1u64);
                    if write_frame(&mut stream, FrameKind::Busy, b"").is_err() {
                        return;
                    }
                    continue;
                }
                let request = match kind {
                    FrameKind::Diagnose => decode_diagnose_request(&payload).map(Request::Diagnose),
                    FrameKind::FleetCollect => decode_fleet_collect(&payload)
                        .map(|(session, request)| Request::FleetCollect { session, request }),
                    FrameKind::FleetPatterns => decode_fleet_patterns(&payload)
                        .map_err(DiagnosisError::Frame)
                        .map(|(session, executed)| Request::FleetPatterns { session, executed }),
                    FrameKind::FleetFinalize => decode_fleet_finalize(&payload)
                        .map_err(DiagnosisError::Frame)
                        .map(|(session, patterns)| Request::FleetFinalize { session, patterns }),
                    _ => decode_batch_request(&payload).map(Request::Batch),
                };
                let request = match request {
                    Ok(r) => r,
                    // A malformed or corrupt request payload fails this
                    // request alone; the connection continues.
                    Err(e) => {
                        if write_frame(&mut stream, FrameKind::Error, e.to_string().as_bytes())
                            .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                };
                shared.requests.fetch_add(1, Ordering::AcqRel);
                lazy_obs::counter!("daemon.requests_total", 1u64);
                let (tx, rx) = mpsc::channel();
                {
                    let mut q = shared.lock_queue();
                    q.push_back(Job { request, reply: tx });
                }
                shared.available.notify_one();
                let reply = match rx.recv_timeout(cfg.request_timeout) {
                    Ok(r) => r,
                    Err(_) => {
                        shared.timeouts.fetch_add(1, Ordering::AcqRel);
                        lazy_obs::counter!("daemon.timeouts_total", 1u64);
                        (
                            FrameKind::Error,
                            format!(
                                "deadline exceeded ({} ms); request abandoned",
                                cfg.request_timeout.as_millis()
                            )
                            .into_bytes(),
                        )
                    }
                };
                if write_frame(&mut stream, reply.0, &reply.1).is_err() {
                    return;
                }
            }
            Ok((kind, _)) => {
                // A response kind arriving at the server: protocol
                // misuse, but the frame was whole — answer and carry on.
                let msg = format!("unexpected frame kind {kind:?} in a request stream");
                if write_frame(&mut stream, FrameKind::Error, msg.as_bytes()).is_err() {
                    return;
                }
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::TimedOut) => {
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(e @ (FrameError::BadChecksum | FrameError::BadKind(_))) => {
                // The frame was consumed in full; the stream is still
                // at a frame boundary. Fail the request, keep the
                // connection.
                shared.frames_corrupt.fetch_add(1, Ordering::AcqRel);
                lazy_obs::counter!("daemon.frames_corrupt_total", 1u64);
                if write_frame(&mut stream, FrameKind::Error, e.to_string().as_bytes()).is_err() {
                    return;
                }
            }
            Err(e) => {
                // Bad magic, truncation, oversize, raw I/O failure: the
                // stream position is no longer trustworthy. Close this
                // connection; every other connection is unaffected.
                shared.frames_corrupt.fetch_add(1, Ordering::AcqRel);
                lazy_obs::counter!("daemon.frames_corrupt_total", 1u64);
                let _ = write_frame(&mut stream, FrameKind::Error, e.to_string().as_bytes());
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazy_trace::driver::{SnapshotTrigger, ThreadTrace};
    use lazy_trace::stats::TraceStats;

    fn sample_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 1,
                bytes: vec![1, 2, 3],
                stats: TraceStats::default(),
                wrapped: false,
            }],
            taken_at: 42,
            trigger_tid: 1,
            trigger_pc: 0x40_0000,
            trigger: SnapshotTrigger::Failure,
        }
    }

    fn sample_failure() -> Failure {
        Failure {
            kind: FailureKind::UseAfterFree { addr: 0x2000_0010 },
            pc: Pc(0x40_0004),
            tid: 3,
            at_ns: 12345,
        }
    }

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(FrameKind::Diagnose, b"hello");
        let (kind, payload) = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(kind, FrameKind::Diagnose);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn frame_checksum_flip_is_detected() {
        let mut frame = encode_frame(FrameKind::Batch, b"payload-bytes");
        let mid = HEADER_LEN + 4;
        frame[mid] ^= 0x20;
        assert_eq!(
            read_frame(&mut frame.as_slice()),
            Err(FrameError::BadChecksum)
        );
    }

    #[test]
    fn frame_bad_magic_and_truncation() {
        let mut frame = encode_frame(FrameKind::Health, b"");
        frame[0] = b'X';
        assert_eq!(read_frame(&mut frame.as_slice()), Err(FrameError::BadMagic));
        let frame = encode_frame(FrameKind::Health, b"abc");
        for cut in 1..frame.len() {
            let err = read_frame(&mut &frame[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated | FrameError::BadChecksum),
                "cut {cut}: {err}"
            );
        }
        assert_eq!(read_frame(&mut &frame[..0]), Err(FrameError::Closed));
    }

    #[test]
    fn frame_oversized_length_rejected_before_allocation() {
        let mut frame = encode_frame(FrameKind::Diagnose, b"x");
        frame[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut frame.as_slice()),
            Err(FrameError::TooLarge(u32::MAX))
        );
    }

    #[test]
    fn frame_unknown_kind_is_recoverable() {
        // Build a frame with kind 99 and a correct checksum: the reader
        // must consume it fully and report BadKind (stream in sync).
        let mut frame = encode_frame(FrameKind::Diagnose, b"zz");
        frame[4] = 99;
        let n = frame.len();
        let sum = fnv1a32(&frame[..n - 4]);
        frame[n - 4..].copy_from_slice(&sum.to_le_bytes());
        let mut stream = frame.clone();
        stream.extend_from_slice(&encode_frame(FrameKind::Health, b""));
        let mut r = stream.as_slice();
        assert_eq!(read_frame(&mut r), Err(FrameError::BadKind(99)));
        // The next frame parses cleanly from the same stream.
        assert_eq!(read_frame(&mut r).unwrap().0, FrameKind::Health);
    }

    #[test]
    fn diagnose_request_roundtrip() {
        let failure = sample_failure();
        let snaps = vec![sample_snapshot(), sample_snapshot()];
        let payload = encode_diagnose_request(&failure, &snaps, &snaps[..1]);
        let req = decode_diagnose_request(&payload).unwrap();
        assert_eq!(req.failure, failure);
        assert_eq!(req.failing.len(), 2);
        assert_eq!(req.successful.len(), 1);
        assert_eq!(req.failing[0].threads[0].bytes, vec![1, 2, 3]);
    }

    #[test]
    fn failure_kinds_roundtrip() {
        let kinds = [
            FailureKind::NullDeref { addr: 7 },
            FailureKind::DivByZero,
            FailureKind::StackOverflow,
            FailureKind::AssertFailed {
                msg: "x > 0".into(),
            },
            FailureKind::BadUnlock { addr: 0x99 },
            FailureKind::BadIndirectCall { target: 0xdead },
            FailureKind::Deadlock {
                parties: vec![
                    DeadlockParty {
                        tid: 1,
                        pc: Pc(10),
                        mutex_addr: 0x100,
                    },
                    DeadlockParty {
                        tid: 2,
                        pc: Pc(20),
                        mutex_addr: 0x200,
                    },
                ],
            },
            FailureKind::Hang,
            FailureKind::Timeout,
        ];
        for kind in kinds {
            let f = Failure {
                kind,
                pc: Pc(0x10),
                tid: 9,
                at_ns: 1,
            };
            let payload = encode_diagnose_request(&f, &[], &[]);
            let back = decode_diagnose_request(&payload).unwrap();
            assert_eq!(back.failure, f);
        }
    }

    #[test]
    fn batch_report_roundtrip() {
        let results = vec![
            Ok("report one".to_string()),
            Err("decode failed".to_string()),
        ];
        let payload = encode_batch_report(&results);
        let back = decode_batch_report(&payload).unwrap();
        assert_eq!(back[0], Ok("report one".to_string()));
        assert_eq!(
            back[1],
            Err(DiagnosisError::Remote {
                detail: "decode failed".to_string()
            })
        );
    }

    #[test]
    fn corrupt_inner_snapshot_is_a_typed_wire_error() {
        let failure = sample_failure();
        let snaps = vec![sample_snapshot()];
        let mut payload = encode_diagnose_request(&failure, &snaps, &[]);
        // Flip a byte inside the embedded LZTR body (past the failure
        // record and the two count/length words).
        let n = payload.len();
        payload[n - 10] ^= 0x40;
        match decode_diagnose_request(&payload) {
            Err(DiagnosisError::Wire(_)) => {}
            other => panic!("expected a wire error, got {other:?}"),
        }
    }

    #[test]
    fn inflated_counts_are_rejected_before_allocation() {
        let mut payload = encode_diagnose_request(&sample_failure(), &[], &[]);
        // failing-count word sits right after the failure record.
        let off = payload.len() - 8;
        payload[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_diagnose_request(&payload).is_err());
        let mut batch = encode_batch_request(&[]);
        batch[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch_request(&batch).is_err());
    }
}
