//! A minimal readiness reactor: `poll(2)` plus a self-wake channel.
//!
//! The daemon's event loop ([`crate::daemon::serve`]) needs exactly two
//! primitives the standard library does not expose:
//!
//! 1. **Readiness multiplexing** — block until any of N non-blocking
//!    sockets is readable/writable, with a timeout. On Linux this is
//!    the `poll(2)`/`ppoll(2)` syscall, invoked directly via inline
//!    assembly so the repo stays dependency-free (no libc crate). On
//!    other targets a portable fallback marks every descriptor ready
//!    and naps briefly — correct (the sockets are non-blocking, so
//!    spurious readiness degrades to `WouldBlock`) but less efficient.
//! 2. **Cross-thread wakeup** — worker threads finishing a job must
//!    interrupt a blocked poll. A connected loopback UDP pair does
//!    this with nothing but `std::net`: the receiving socket sits in
//!    the poll set; [`Waker::wake`] sends one datagram at it.
//!
//! Lost wakeups are tolerated by design: the event loop caps its poll
//! timeout, so a dropped datagram costs one timeout interval, never a
//! hang.

use std::net::UdpSocket;
use std::time::Duration;

/// Readable readiness (or: data available / peer closed).
pub const POLLIN: i16 = 0x001;
/// Writable readiness.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// The descriptor is invalid.
pub const POLLNVAL: i16 = 0x020;

/// One entry in a poll set — the kernel's `struct pollfd`, bit for bit.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: i32,
    /// Requested readiness ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Observed readiness, written by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A poll entry asking for `events` on `fd`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Readable (or hung up / errored, which reads report too).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Writable (or errored — the write will surface the error).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLNVAL) != 0
    }
}

/// Caps a poll timeout to `i32` milliseconds (rounding up so a 0.4ms
/// deadline does not busy-spin at timeout 0).
fn timeout_millis(timeout: Duration) -> i32 {
    let ms = timeout.as_millis();
    let rounded = if !timeout.subsec_nanos().is_multiple_of(1_000_000) {
        ms + 1
    } else {
        ms
    };
    i32::try_from(rounded).unwrap_or(i32::MAX)
}

/// Blocks until a descriptor in `fds` is ready or `timeout` elapses;
/// returns how many entries have non-zero `revents`. A signal
/// interruption (`EINTR`) reports `0` ready — callers loop anyway.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> usize {
    let ret = sys_poll(fds, timeout_millis(timeout));
    if ret < 0 {
        // EINTR and friends: nothing ready this round; the caller's
        // loop re-polls. A persistently failing poll degrades to the
        // caller's timeout cadence rather than a spin.
        0
    } else {
        ret as usize
    }
}

/// Portable fallback: report every requested event as ready after a
/// short nap. Spurious readiness is safe (all sockets are non-blocking)
/// — this trades efficiency for portability on targets without the
/// syscall shim.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> usize {
    std::thread::sleep(timeout.min(Duration::from_millis(2)));
    let mut ready = 0;
    for fd in fds.iter_mut() {
        fd.revents = fd.events & (POLLIN | POLLOUT);
        if fd.revents != 0 {
            ready += 1;
        }
    }
    ready
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> isize {
    // poll(2) is syscall 7 on x86_64.
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 7isize => ret,
            in("rdi") fds.as_mut_ptr(),
            in("rsi") fds.len(),
            in("rdx") timeout_ms as isize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> isize {
    // aarch64 has no plain poll(2); ppoll(2) is syscall 73 and takes a
    // timespec (null sigmask = "don't touch the signal mask").
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    let ts = Timespec {
        tv_sec: i64::from(timeout_ms) / 1000,
        tv_nsec: (i64::from(timeout_ms) % 1000) * 1_000_000,
    };
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 73isize,
            inlateout("x0") fds.as_mut_ptr() => ret,
            in("x1") fds.len(),
            in("x2") &ts as *const Timespec,
            in("x3") 0usize,
            options(nostack),
        );
    }
    ret
}

/// The sending half of the self-wake channel. Cheap to share across
/// worker threads (`&Waker` is `Sync`); waking is one loopback datagram.
pub struct Waker {
    tx: UdpSocket,
}

impl Waker {
    /// Interrupts the event loop's current (or next) poll. Best-effort:
    /// a full socket buffer or transient error is absorbed by the
    /// loop's capped poll timeout.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1u8]);
    }
}

/// The receiving half: its descriptor goes into the poll set; once
/// readable, [`drain`] eats the pending datagrams.
pub struct WakeReceiver {
    rx: UdpSocket,
}

impl WakeReceiver {
    /// The descriptor to register with [`POLLIN`].
    #[cfg(unix)]
    pub fn fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Consumes every queued wake datagram (non-blocking).
    pub fn drain(&self) {
        let mut scratch = [0u8; 16];
        while self.rx.recv(&mut scratch).is_ok() {}
    }
}

/// Builds a connected loopback wake channel.
///
/// # Errors
///
/// Propagates socket creation/connect failures (exotic: no loopback).
pub fn wake_pair() -> std::io::Result<(Waker, WakeReceiver)> {
    let rx = UdpSocket::bind("127.0.0.1:0")?;
    rx.set_nonblocking(true)?;
    let tx = UdpSocket::bind("127.0.0.1:0")?;
    tx.set_nonblocking(true)?;
    tx.connect(rx.local_addr()?)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_interrupts_poll() {
        let (waker, rx) = wake_pair().unwrap();
        waker.wake();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let n = poll(&mut fds, Duration::from_secs(5));
        assert!(n >= 1, "wake datagram must make the fd readable");
        assert!(fds[0].readable());
        rx.drain();
        // Drained: an immediate zero-timeout poll reports nothing.
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let n = poll(&mut fds, Duration::ZERO);
        // The portable fallback always reports ready; only assert
        // emptiness where the real syscall runs.
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert_eq!(n, 0, "drained waker must not stay readable");
        let _ = n;
    }

    #[test]
    fn poll_times_out_when_idle() {
        let (_waker, rx) = wake_pair().unwrap();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let started = std::time::Instant::now();
        let n = poll(&mut fds, Duration::from_millis(30));
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            assert_eq!(n, 0);
            assert!(
                started.elapsed() >= Duration::from_millis(25),
                "poll returned early: {:?}",
                started.elapsed()
            );
        }
        let _ = (n, started);
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        assert_eq!(timeout_millis(Duration::from_micros(400)), 1);
        assert_eq!(timeout_millis(Duration::from_millis(7)), 7);
        assert_eq!(timeout_millis(Duration::ZERO), 0);
        assert_eq!(timeout_millis(Duration::from_secs(1 << 40)), i32::MAX);
    }
}
