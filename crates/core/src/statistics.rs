//! Statistical diagnosis (step 7 of the pipeline).
//!
//! Scores every candidate pattern by the F1 measure over the collected
//! traces (§4.5): *precision* is the fraction of pattern-bearing traces
//! that actually failed, *recall* the fraction of failing traces that
//! bear the pattern. A pattern that appears in every failing trace and
//! no successful one scores F1 = 1 and is, with the paper's evidence,
//! the root cause. Successful traces are what separate the true root
//! cause from benign patterns that occur in every execution.

use crate::patterns::{pattern_present, BugPattern};
use crate::processing::ProcessedTrace;
use lazy_ir::Pc;
use std::collections::HashMap;

/// A pattern with its statistical score.
#[derive(Clone, Debug)]
pub struct PatternScore {
    /// The pattern.
    pub pattern: BugPattern,
    /// The pattern's type rank: the worst (highest) type-based rank of
    /// its events (1 = every event's operand type matches the failing
    /// operand's).
    pub type_rank: u32,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// |present ∧ failing| / |present|.
    pub precision: f64,
    /// |present ∧ failing| / |failing|.
    pub recall: f64,
    /// Failing traces bearing the pattern.
    pub fail_support: usize,
    /// Successful traces bearing the pattern.
    pub success_support: usize,
}

/// Scores `patterns` over failing and successful traces, returning them
/// sorted best-first: by descending F1, then ascending type rank (the
/// §4.3 heuristic: exact-type patterns are likelier root causes), then
/// descending specificity, then deterministic pattern order.
///
/// `rank_of` maps candidate PCs to their type-based rank (missing PCs
/// default to rank 2).
pub fn score_patterns<T: std::borrow::Borrow<ProcessedTrace>>(
    patterns: &[BugPattern],
    failing: &[T],
    successful: &[T],
    rank_of: &HashMap<Pc, u32>,
) -> Vec<PatternScore> {
    let mut out: Vec<PatternScore> = patterns
        .iter()
        .map(|p| {
            let type_rank = p
                .pcs()
                .iter()
                .map(|pc| rank_of.get(pc).copied().unwrap_or(2))
                .max()
                .unwrap_or(2);
            let fail_support = failing
                .iter()
                .filter(|t| pattern_present(p, (*t).borrow()))
                .count();
            let success_support = successful
                .iter()
                .filter(|t| pattern_present(p, (*t).borrow()))
                .count();
            let predicted = fail_support + success_support;
            let precision = if predicted == 0 {
                0.0
            } else {
                fail_support as f64 / predicted as f64
            };
            let recall = if failing.is_empty() {
                0.0
            } else {
                fail_support as f64 / failing.len() as f64
            };
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            PatternScore {
                pattern: p.clone(),
                type_rank,
                f1,
                precision,
                recall,
                fail_support,
                success_support,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        // Equal F1 scores are broken first by type rank (the §4.3
        // heuristic), then toward the more *specific* pattern (more
        // correlated events): an atomicity triple that ties with its
        // embedded order pair explains strictly more of the failing
        // interleaving. `total_cmp` keeps the comparator a total order
        // even if a NaN ever slips into a score — `partial_cmp +
        // unwrap_or(Equal)` silently broke transitivity there, making
        // the ranking order nondeterministic.
        b.f1.total_cmp(&a.f1)
            .then_with(|| a.type_rank.cmp(&b.type_rank))
            .then_with(|| b.pattern.pcs().len().cmp(&a.pattern.pcs().len()))
            .then_with(|| a.pattern.cmp(&b.pattern))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{AccessKind, PatternEvent};
    use crate::processing::DynInstance;
    use lazy_ir::Pc;
    use lazy_trace::TimeBounds;
    use std::collections::{HashMap, HashSet};

    fn trace_with(instances: Vec<(u64, Vec<DynInstance>)>) -> ProcessedTrace {
        let mut map = HashMap::new();
        let mut executed = HashSet::new();
        let mut event_time = HashMap::new();
        for (pc, is) in instances {
            executed.insert(Pc(pc));
            for i in &is {
                event_time.insert((i.tid, i.seq), i.time);
            }
            map.insert(Pc(pc), is);
        }
        ProcessedTrace {
            executed,
            instances: map,
            event_time,
            trigger_tid: 0,
            trigger_pc: Pc(0),
            taken_at: 1_000_000,
            event_count: 0,
            resyncs: 0,
            cyc_dropped: 0,
            mtc_dups: 0,
        }
    }

    fn inst(tid: u32, seq: usize, lo: u64, hi: u64) -> DynInstance {
        DynInstance {
            tid,
            seq,
            time: TimeBounds { lo, hi },
        }
    }

    fn wr_pattern() -> BugPattern {
        BugPattern::OrderViolation {
            first: PatternEvent {
                pc: Pc(100),
                kind: AccessKind::Write,
            },
            second: PatternEvent {
                pc: Pc(200),
                kind: AccessKind::Read,
            },
        }
    }

    /// Bad-order trace (pattern present).
    fn bad_trace() -> ProcessedTrace {
        trace_with(vec![
            (100, vec![inst(1, 0, 0, 10)]),
            (200, vec![inst(2, 0, 50, 60)]),
        ])
    }

    /// Good-order trace (pattern absent).
    fn good_trace() -> ProcessedTrace {
        trace_with(vec![
            (100, vec![inst(1, 0, 50, 60)]),
            (200, vec![inst(2, 0, 0, 10)]),
        ])
    }

    #[test]
    fn perfect_pattern_scores_one() {
        let failing = vec![bad_trace()];
        let successful = vec![good_trace(), good_trace(), good_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert_eq!(scores.len(), 1);
        assert!((scores[0].f1 - 1.0).abs() < 1e-9, "{}", scores[0].f1);
        assert_eq!(scores[0].fail_support, 1);
        assert_eq!(scores[0].success_support, 0);
    }

    #[test]
    fn ubiquitous_pattern_scores_low_precision() {
        // Pattern present in the failing trace AND all successful ones.
        let failing = vec![bad_trace()];
        let successful = vec![bad_trace(), bad_trace(), bad_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert!((scores[0].precision - 0.25).abs() < 1e-9);
        assert!((scores[0].recall - 1.0).abs() < 1e-9);
        assert!(scores[0].f1 < 0.5);
    }

    #[test]
    fn absent_pattern_scores_zero() {
        let failing = vec![good_trace()];
        let successful = vec![good_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert_eq!(scores[0].f1, 0.0);
    }

    #[test]
    fn sorting_puts_best_first() {
        let good = wr_pattern();
        let decoy = BugPattern::OrderViolation {
            first: PatternEvent {
                pc: Pc(200),
                kind: AccessKind::Read,
            },
            second: PatternEvent {
                pc: Pc(100),
                kind: AccessKind::Write,
            },
        };
        // decoy (R before W) is present in the GOOD traces.
        let failing = vec![bad_trace()];
        let successful = vec![good_trace(), good_trace()];
        let scores = score_patterns(
            &[decoy, good.clone()],
            &failing,
            &successful,
            &HashMap::new(),
        );
        assert_eq!(scores[0].pattern, good);
        assert!(scores[0].f1 > scores[1].f1);
    }

    /// Regression: with zero failing traces (or a zero-support pattern)
    /// every ratio has a zero denominator. The scores must be defined
    /// as 0.0 — NaN would make the ranking comparator non-transitive
    /// and the output order nondeterministic.
    #[test]
    fn zero_failing_traces_score_zero_not_nan() {
        let failing: Vec<ProcessedTrace> = vec![];
        let successful = vec![good_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert_eq!(scores.len(), 1);
        let s = &scores[0];
        for (name, v) in [
            ("precision", s.precision),
            ("recall", s.recall),
            ("f1", s.f1),
        ] {
            assert!(!v.is_nan(), "{name} is NaN");
            assert_eq!(v, 0.0, "{name}");
        }
        // No traces at all: zero support on both sides, still finite.
        let scores = score_patterns::<ProcessedTrace>(&[wr_pattern()], &[], &[], &HashMap::new());
        assert_eq!(scores[0].f1, 0.0);
        assert_eq!(scores[0].precision, 0.0);
        assert_eq!(scores[0].recall, 0.0);
    }

    #[test]
    fn multiple_failing_traces_increase_recall_confidence() {
        let failing = vec![bad_trace(), bad_trace(), good_trace()];
        let successful = vec![good_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert!((scores[0].recall - 2.0 / 3.0).abs() < 1e-9);
        assert!((scores[0].precision - 1.0).abs() < 1e-9);
    }
}
