//! Statistical diagnosis (step 7 of the pipeline).
//!
//! Scores every candidate pattern by the F1 measure over the collected
//! traces (§4.5): *precision* is the fraction of pattern-bearing traces
//! that actually failed, *recall* the fraction of failing traces that
//! bear the pattern. A pattern that appears in every failing trace and
//! no successful one scores F1 = 1 and is, with the paper's evidence,
//! the root cause. Successful traces are what separate the true root
//! cause from benign patterns that occur in every execution.
//!
//! ## Mergeable sufficient statistics
//!
//! The F1 computation needs only *counts* — per-pattern fail/success
//! support plus the failing/successful trace totals — never the traces
//! themselves. [`PatternStats`] captures exactly those counts, and its
//! [`merge`](PatternStats::merge) is associative, commutative, and has
//! [`PatternStats::empty`] as identity (the algebraic-law proptest
//! suite in `crates/core/tests/merge_laws.rs` pins this). That algebra
//! is what makes fleet-scale diagnosis possible: every shard runs
//! [`PatternStats::collect`] over the traces *it* holds, ships the
//! counts (never the raw traces), and the coordinator's merge +
//! [`finalize`](PatternStats::finalize) is bit-identical to scoring
//! the union corpus on one node. The classic single-node entry point
//! [`score_patterns`] is re-expressed as collect-then-finalize over
//! one "shard" holding everything.

use crate::patterns::{pattern_present, BugPattern};
use crate::processing::ProcessedTrace;
use lazy_ir::Pc;
use std::collections::{BTreeMap, HashMap};

/// Type rank assumed for a pattern PC that the candidate ranking did
/// not cover (rank 1 = exact operand-type match, 2 = the conservative
/// default). One named constant shared by every ranking site — the
/// shard-side [`PatternStats::collect`] and any finalize-side consumer
/// — so the default cannot drift between them.
pub const DEFAULT_TYPE_RANK: u32 = 2;

/// A pattern with its statistical score.
#[derive(Clone, Debug)]
pub struct PatternScore {
    /// The pattern.
    pub pattern: BugPattern,
    /// The pattern's type rank: the worst (highest) type-based rank of
    /// its events (1 = every event's operand type matches the failing
    /// operand's).
    pub type_rank: u32,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// |present ∧ failing| / |present|.
    pub precision: f64,
    /// |present ∧ failing| / |failing|.
    pub recall: f64,
    /// Failing traces bearing the pattern.
    pub fail_support: usize,
    /// Successful traces bearing the pattern.
    pub success_support: usize,
}

/// One pattern's sufficient statistics: its supports plus the §4.3
/// type-rank tie-break input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternCounts {
    /// Worst type rank across the pattern's events.
    pub type_rank: u32,
    /// Failing traces bearing the pattern.
    pub fail_support: usize,
    /// Successful traces bearing the pattern.
    pub success_support: usize,
}

/// Mergeable sufficient statistics for a set of candidate patterns
/// over a (possibly sharded) trace corpus.
///
/// The merge operation forms a commutative monoid: for any stats `a`,
/// `b`, `c` built over the *same* candidate pattern set,
///
/// * `merge(a, b) == merge(b, a)` (commutativity),
/// * `merge(merge(a, b), c) == merge(a, merge(b, c))` (associativity),
/// * `merge(a, empty()) == a` (identity),
///
/// and for any partition of a trace corpus into shards, merging the
/// per-shard [`collect`](PatternStats::collect) results equals
/// collecting over the whole corpus at once. `finalize` is therefore
/// invariant under sharding — the contract behind
/// [`crate::fleet::FleetCoordinator`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PatternStats {
    /// Per-pattern counts, keyed canonically (`BTreeMap` so iteration
    /// order — and thus every downstream computation — is deterministic
    /// regardless of merge order).
    per_pattern: BTreeMap<BugPattern, PatternCounts>,
    /// Failing traces counted into the supports.
    failing_traces: usize,
    /// Successful traces counted into the supports.
    successful_traces: usize,
}

impl PatternStats {
    /// The merge identity: no patterns, no traces.
    pub fn empty() -> PatternStats {
        PatternStats::default()
    }

    /// Collects sufficient statistics for `patterns` over one shard's
    /// failing and successful traces. Duplicate patterns in the input
    /// collapse to one entry (their counts are identical by
    /// construction).
    ///
    /// `rank_of` maps candidate PCs to their type-based rank; missing
    /// PCs default to [`DEFAULT_TYPE_RANK`].
    pub fn collect<T: std::borrow::Borrow<ProcessedTrace>>(
        patterns: &[BugPattern],
        failing: &[T],
        successful: &[T],
        rank_of: &HashMap<Pc, u32>,
    ) -> PatternStats {
        let mut per_pattern = BTreeMap::new();
        for p in patterns {
            let type_rank = p
                .pcs()
                .iter()
                .map(|pc| rank_of.get(pc).copied().unwrap_or(DEFAULT_TYPE_RANK))
                .max()
                .unwrap_or(DEFAULT_TYPE_RANK);
            let fail_support = failing
                .iter()
                .filter(|t| pattern_present(p, (*t).borrow()))
                .count();
            let success_support = successful
                .iter()
                .filter(|t| pattern_present(p, (*t).borrow()))
                .count();
            per_pattern.insert(
                p.clone(),
                PatternCounts {
                    type_rank,
                    fail_support,
                    success_support,
                },
            );
        }
        PatternStats {
            per_pattern,
            failing_traces: failing.len(),
            successful_traces: successful.len(),
        }
    }

    /// Folds another shard's statistics into this one: supports and
    /// trace totals add; a pattern's type rank takes the minimum (the
    /// better rank) — shards ranking against the same global candidate
    /// set always agree, so this is a no-op there, and `min` keeps the
    /// operation associative and commutative even for foreign inputs.
    pub fn merge(&mut self, other: &PatternStats) {
        self.failing_traces += other.failing_traces;
        self.successful_traces += other.successful_traces;
        for (p, c) in &other.per_pattern {
            match self.per_pattern.get_mut(p) {
                Some(mine) => {
                    mine.fail_support += c.fail_support;
                    mine.success_support += c.success_support;
                    mine.type_rank = mine.type_rank.min(c.type_rank);
                }
                None => {
                    self.per_pattern.insert(p.clone(), *c);
                }
            }
        }
    }

    /// Turns the accumulated counts into scored patterns, sorted
    /// best-first: by descending F1, then ascending type rank (the §4.3
    /// heuristic: exact-type patterns are likelier root causes), then
    /// descending specificity, then deterministic pattern order.
    pub fn finalize(&self) -> Vec<PatternScore> {
        let mut out: Vec<PatternScore> = self
            .per_pattern
            .iter()
            .map(|(p, c)| {
                let predicted = c.fail_support + c.success_support;
                let precision = if predicted == 0 {
                    0.0
                } else {
                    c.fail_support as f64 / predicted as f64
                };
                let recall = if self.failing_traces == 0 {
                    0.0
                } else {
                    c.fail_support as f64 / self.failing_traces as f64
                };
                let f1 = if precision + recall == 0.0 {
                    0.0
                } else {
                    2.0 * precision * recall / (precision + recall)
                };
                PatternScore {
                    pattern: p.clone(),
                    type_rank: c.type_rank,
                    f1,
                    precision,
                    recall,
                    fail_support: c.fail_support,
                    success_support: c.success_support,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            // Equal F1 scores are broken first by type rank (the §4.3
            // heuristic), then toward the more *specific* pattern (more
            // correlated events): an atomicity triple that ties with its
            // embedded order pair explains strictly more of the failing
            // interleaving. `total_cmp` keeps the comparator a total
            // order even if a NaN ever slips into a score —
            // `partial_cmp + unwrap_or(Equal)` silently broke
            // transitivity there, making the ranking nondeterministic.
            b.f1.total_cmp(&a.f1)
                .then_with(|| a.type_rank.cmp(&b.type_rank))
                .then_with(|| b.pattern.pcs().len().cmp(&a.pattern.pcs().len()))
                .then_with(|| a.pattern.cmp(&b.pattern))
        });
        out
    }

    /// Failing traces counted into these statistics.
    pub fn failing_traces(&self) -> usize {
        self.failing_traces
    }

    /// Successful traces counted into these statistics.
    pub fn successful_traces(&self) -> usize {
        self.successful_traces
    }

    /// Number of distinct patterns tracked.
    pub fn len(&self) -> usize {
        self.per_pattern.len()
    }

    /// `true` when no patterns are tracked.
    pub fn is_empty(&self) -> bool {
        self.per_pattern.is_empty()
    }

    /// Iterates the per-pattern counts in canonical order (the wire
    /// codec in [`crate::fleet`] serializes exactly this view).
    pub fn entries(&self) -> impl Iterator<Item = (&BugPattern, &PatternCounts)> {
        self.per_pattern.iter()
    }

    /// Rebuilds statistics from decoded parts (the wire codec's
    /// inverse of [`PatternStats::entries`]). A duplicated pattern keeps
    /// the last entry, mirroring `BTreeMap` insertion.
    pub fn from_parts(
        entries: Vec<(BugPattern, PatternCounts)>,
        failing_traces: usize,
        successful_traces: usize,
    ) -> PatternStats {
        PatternStats {
            per_pattern: entries.into_iter().collect(),
            failing_traces,
            successful_traces,
        }
    }
}

/// How many of the sorted `scores` tie with the best on the full
/// (F1, type rank, specificity) key — the `top_patterns` pipeline stat.
/// Shared by the single-node and fleet paths so the two cannot drift.
pub fn top_pattern_count(scores: &[PatternScore]) -> usize {
    match scores.first() {
        Some(t) => scores
            .iter()
            .filter(|s| {
                (s.f1 - t.f1).abs() < 1e-12
                    && s.type_rank == t.type_rank
                    && s.pattern.pcs().len() == t.pattern.pcs().len()
            })
            .count(),
        None => 0,
    }
}

/// Scores `patterns` over failing and successful traces, returning them
/// sorted best-first — collect-then-finalize over one shard holding
/// every trace. Duplicate input patterns collapse to one score.
///
/// `rank_of` maps candidate PCs to their type-based rank (missing PCs
/// default to [`DEFAULT_TYPE_RANK`]).
pub fn score_patterns<T: std::borrow::Borrow<ProcessedTrace>>(
    patterns: &[BugPattern],
    failing: &[T],
    successful: &[T],
    rank_of: &HashMap<Pc, u32>,
) -> Vec<PatternScore> {
    PatternStats::collect(patterns, failing, successful, rank_of).finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{AccessKind, PatternEvent};
    use crate::processing::DynInstance;
    use lazy_ir::Pc;
    use lazy_trace::TimeBounds;
    use std::collections::{HashMap, HashSet};

    fn trace_with(instances: Vec<(u64, Vec<DynInstance>)>) -> ProcessedTrace {
        let mut map = HashMap::new();
        let mut executed = HashSet::new();
        let mut event_time = HashMap::new();
        for (pc, is) in instances {
            executed.insert(Pc(pc));
            for i in &is {
                event_time.insert((i.tid, i.seq), i.time);
            }
            map.insert(Pc(pc), is);
        }
        ProcessedTrace {
            executed,
            instances: map,
            event_time,
            trigger_tid: 0,
            trigger_pc: Pc(0),
            taken_at: 1_000_000,
            event_count: 0,
            resyncs: 0,
            cyc_dropped: 0,
            mtc_dups: 0,
        }
    }

    fn inst(tid: u32, seq: usize, lo: u64, hi: u64) -> DynInstance {
        DynInstance {
            tid,
            seq,
            time: TimeBounds { lo, hi },
        }
    }

    fn wr_pattern() -> BugPattern {
        BugPattern::OrderViolation {
            first: PatternEvent {
                pc: Pc(100),
                kind: AccessKind::Write,
            },
            second: PatternEvent {
                pc: Pc(200),
                kind: AccessKind::Read,
            },
        }
    }

    /// Bad-order trace (pattern present).
    fn bad_trace() -> ProcessedTrace {
        trace_with(vec![
            (100, vec![inst(1, 0, 0, 10)]),
            (200, vec![inst(2, 0, 50, 60)]),
        ])
    }

    /// Good-order trace (pattern absent).
    fn good_trace() -> ProcessedTrace {
        trace_with(vec![
            (100, vec![inst(1, 0, 50, 60)]),
            (200, vec![inst(2, 0, 0, 10)]),
        ])
    }

    #[test]
    fn perfect_pattern_scores_one() {
        let failing = vec![bad_trace()];
        let successful = vec![good_trace(), good_trace(), good_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert_eq!(scores.len(), 1);
        assert!((scores[0].f1 - 1.0).abs() < 1e-9, "{}", scores[0].f1);
        assert_eq!(scores[0].fail_support, 1);
        assert_eq!(scores[0].success_support, 0);
    }

    #[test]
    fn ubiquitous_pattern_scores_low_precision() {
        // Pattern present in the failing trace AND all successful ones.
        let failing = vec![bad_trace()];
        let successful = vec![bad_trace(), bad_trace(), bad_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert!((scores[0].precision - 0.25).abs() < 1e-9);
        assert!((scores[0].recall - 1.0).abs() < 1e-9);
        assert!(scores[0].f1 < 0.5);
    }

    #[test]
    fn absent_pattern_scores_zero() {
        let failing = vec![good_trace()];
        let successful = vec![good_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert_eq!(scores[0].f1, 0.0);
    }

    #[test]
    fn sorting_puts_best_first() {
        let good = wr_pattern();
        let decoy = BugPattern::OrderViolation {
            first: PatternEvent {
                pc: Pc(200),
                kind: AccessKind::Read,
            },
            second: PatternEvent {
                pc: Pc(100),
                kind: AccessKind::Write,
            },
        };
        // decoy (R before W) is present in the GOOD traces.
        let failing = vec![bad_trace()];
        let successful = vec![good_trace(), good_trace()];
        let scores = score_patterns(
            &[decoy, good.clone()],
            &failing,
            &successful,
            &HashMap::new(),
        );
        assert_eq!(scores[0].pattern, good);
        assert!(scores[0].f1 > scores[1].f1);
    }

    /// Regression: with zero failing traces (or a zero-support pattern)
    /// every ratio has a zero denominator. The scores must be defined
    /// as 0.0 — NaN would make the ranking comparator non-transitive
    /// and the output order nondeterministic.
    #[test]
    fn zero_failing_traces_score_zero_not_nan() {
        let failing: Vec<ProcessedTrace> = vec![];
        let successful = vec![good_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert_eq!(scores.len(), 1);
        let s = &scores[0];
        for (name, v) in [
            ("precision", s.precision),
            ("recall", s.recall),
            ("f1", s.f1),
        ] {
            assert!(!v.is_nan(), "{name} is NaN");
            assert_eq!(v, 0.0, "{name}");
        }
        // No traces at all: zero support on both sides, still finite.
        let scores = score_patterns::<ProcessedTrace>(&[wr_pattern()], &[], &[], &HashMap::new());
        assert_eq!(scores[0].f1, 0.0);
        assert_eq!(scores[0].precision, 0.0);
        assert_eq!(scores[0].recall, 0.0);
    }

    #[test]
    fn multiple_failing_traces_increase_recall_confidence() {
        let failing = vec![bad_trace(), bad_trace(), good_trace()];
        let successful = vec![good_trace()];
        let scores = score_patterns(&[wr_pattern()], &failing, &successful, &HashMap::new());
        assert!((scores[0].recall - 2.0 / 3.0).abs() < 1e-9);
        assert!((scores[0].precision - 1.0).abs() < 1e-9);
    }

    /// Splitting the corpus across two shards and merging their
    /// collected statistics scores identically to single-node scoring —
    /// the smallest instance of the law the proptest suite generalizes.
    #[test]
    fn two_shard_merge_matches_single_node() {
        let patterns = [wr_pattern()];
        let failing = vec![bad_trace(), bad_trace(), good_trace()];
        let successful = vec![good_trace(), bad_trace()];
        let rank_of = HashMap::new();

        let mut merged =
            PatternStats::collect(&patterns, &failing[..1], &successful[..1], &rank_of);
        merged.merge(&PatternStats::collect(
            &patterns,
            &failing[1..],
            &successful[1..],
            &rank_of,
        ));
        let whole = PatternStats::collect(&patterns, &failing, &successful, &rank_of);
        assert_eq!(merged, whole);

        let a = merged.finalize();
        let b = score_patterns(&patterns, &failing, &successful, &rank_of);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pattern, y.pattern);
            assert_eq!(x.f1.to_bits(), y.f1.to_bits(), "bit-identical F1");
            assert_eq!(x.fail_support, y.fail_support);
            assert_eq!(x.success_support, y.success_support);
        }
    }

    #[test]
    fn merge_identity_and_top_count() {
        let patterns = [wr_pattern()];
        let failing = vec![bad_trace()];
        let successful = vec![good_trace()];
        let stats = PatternStats::collect(&patterns, &failing, &successful, &HashMap::new());
        let mut with_identity = stats.clone();
        with_identity.merge(&PatternStats::empty());
        assert_eq!(with_identity, stats);
        let mut from_identity = PatternStats::empty();
        from_identity.merge(&stats);
        assert_eq!(from_identity, stats);
        assert_eq!(top_pattern_count(&stats.finalize()), 1);
        assert_eq!(top_pattern_count(&[]), 0);
    }
}
