//! Fleet-scale sharded diagnosis.
//!
//! The paper's deployment model aggregates evidence from *many*
//! production endpoints (§3): one failing trace plus up to 10×
//! successful traces. At fleet scale the trace corpus for a hot failure
//! outgrows one diagnosis site, so this module shards it: N `snorlaxd`
//! shards each hold a partition of the snapshots, and a
//! [`FleetCoordinator`] merges their *sufficient statistics*
//! ([`PatternStats`]) — never the raw traces — into one diagnosis that
//! is **byte-identical** to running single-node over the union corpus
//! (`tests/fleet.rs` proves this for 2/3/7 shards, in-process and over
//! loopback TCP).
//!
//! ## The three-round protocol
//!
//! Byte-identity forces the round structure, because two pipeline
//! stages are functions of *global* state:
//!
//! 1. **Collect** ([`FrameKind::FleetCollect`]): each shard decodes its
//!    partition (steps 2–3) and reports its executed-instruction set.
//!    The points-to scope is the *union* executed set, so candidate
//!    selection cannot start until every shard has reported.
//! 2. **Patterns** ([`FrameKind::FleetPatterns`]): the coordinator
//!    broadcasts the merged executed set; each shard runs points-to +
//!    candidate ranking against it — every shard derives the *same*
//!    candidates — and generates bug patterns from its local failing
//!    traces. Support counting needs the global pattern union, hence
//!    the third round.
//! 3. **Finalize** ([`FrameKind::FleetFinalize`]): the coordinator
//!    broadcasts the merged pattern set; each shard counts supports
//!    over its local traces and returns a serialized [`PatternStats`]
//!    ([`FrameKind::PartialStats`]). Merging those and running
//!    [`PatternStats::finalize`] is bit-identical to scoring the whole
//!    corpus at once — the merge laws pinned by
//!    `crates/core/tests/merge_laws.rs`.
//!
//! The coordinator applies the global 10× success cap *before* routing
//! and routes snapshots round-robin, so the shard partition of the
//! capped corpus is a pure function of the input — another byte-identity
//! requirement.
//!
//! ## Degradation
//!
//! A shard that fails a round (transport error, corrupt frame, typed
//! server error) is excluded from that round onward and reported in
//! [`FleetOutcome::shard_reports`]; the diagnosis proceeds from the
//! survivors' statistics. Only when *every* shard fails does the
//! coordinator raise [`DiagnosisError::Fleet`].
//!
//! ## Warm sessions and multi-report routing
//!
//! A fleet does not report one failure and stop. [`FleetRouter`]
//! accepts many in-flight reports, keys each by bug ([`BugKey`]:
//! failure PC + module fingerprint), and runs every report's rounds
//! over one shared, *warm* shard set: each shard's compiled walk
//! table and keyed [`PointsToCache`] persist across sessions, so the
//! second report for a bug reuses the solved points-to scope (the
//! `pointsto.cache.*` counters, surfaced per shard as [`ShardStats`],
//! prove the reuse). Sessions themselves are bounded by an idle TTL
//! ([`ServerConfig::session_ttl`]): a coordinator that dies
//! mid-protocol is swept on the next admission instead of pinning one
//! of the [`MAX_SHARD_SESSIONS`] slots until daemon restart.

use crate::candidates::select_candidates;
use crate::daemon::{
    decode_failure, decode_snapshots, encode_failure, encode_snapshots, Cursor, FrameError,
    FrameKind,
};
use crate::error::DiagnosisError;
use crate::patterns::{
    crash_patterns, deadlock_patterns, AccessKind, AtomKind, BugPattern, DeadlockEdge,
    PatternContext, PatternEvent,
};
use crate::processing::ProcessedTrace;
use crate::remote::RemoteClient;
use crate::server::{ordered_events_for, Diagnosis, DiagnosisServer, PipelineStats, ServerConfig};
use crate::statistics::{top_pattern_count, PatternCounts, PatternStats};
use lazy_analysis::PointsToCache;
use lazy_ir::{Module, Pc};
use lazy_trace::{SnapshotView, TraceSnapshot};
use lazy_vm::{Failure, FailureKind};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Cap on sessions a shard holds open at once; a coordinator that
/// abandons sessions mid-protocol cannot leak unbounded decoded traces.
const MAX_SHARD_SESSIONS: usize = 64;

/// One encoded pattern event: pc + access kind.
const EVENT_BYTES: usize = 8 + 1;

/// One encoded deadlock edge: hold pc + want pc.
const EDGE_BYTES: usize = 8 + 8;

// ---------------------------------------------------------------------
// Shard side.

/// Per-session state a shard holds between protocol rounds.
struct ShardSession {
    failure: Failure,
    failing: Vec<Arc<ProcessedTrace>>,
    successful: Vec<Arc<ProcessedTrace>>,
    /// Candidate PC → type rank, derived in round 2 (empty before).
    rank_of: HashMap<Pc, u32>,
    /// Last coordinator activity on this session. Sessions idle past
    /// the shard's TTL are evicted on the next admission or sweep, so
    /// a coordinator that dies mid-protocol cannot pin a capacity slot
    /// until daemon restart.
    touched: Instant,
}

/// A shard's warm-state and lifecycle counters — what `snorlax fleet
/// route` and the concurrent bench read to prove sessions stay warm
/// ([`FrameKind::FleetStats`] on the wire).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Sessions currently open between protocol rounds.
    pub open_sessions: u64,
    /// Sessions ever evicted by the idle TTL.
    pub sessions_evicted: u64,
    /// Scoped points-to solves requested of the warm cache.
    pub cache_lookups: u64,
    /// Solves answered verbatim from a cached solution (same scope).
    pub cache_exact_hits: u64,
    /// Solves that extended a cached subset solution incrementally.
    pub cache_delta_solves: u64,
    /// Solves that ran from scratch (cold scope).
    pub cache_scratch_solves: u64,
}

impl ShardStats {
    /// Solves served at least partly from warm state.
    pub fn warm_solves(&self) -> u64 {
        self.cache_exact_hits + self.cache_delta_solves
    }
}

/// The shard side of the fleet protocol: holds one module, decodes its
/// partition of the trace corpus, and answers the three coordinator
/// rounds. Embedded in every `snorlaxd` (the daemon dispatches fleet
/// frames here) and usable in-process via [`ShardConn::Local`].
///
/// A shard is *warm*: its compiled walk table and its keyed
/// [`PointsToCache`] persist across sessions, so a second report whose
/// executed scope matches (or extends) an earlier one reuses the
/// solved points-to state instead of re-solving from scratch.
pub struct FleetShard<'m> {
    server: DiagnosisServer<'m>,
    cfg: ServerConfig,
    sessions: Mutex<HashMap<u64, ShardSession>>,
    /// Persistent scoped points-to cache, shared by every session this
    /// shard ever serves. Cached solves are byte-identical to scratch
    /// solves (the least-fixpoint solution is unique), so warm reuse
    /// never perturbs a diagnosis.
    pts_cache: Mutex<PointsToCache>,
    evicted: AtomicU64,
}

/// A shard's round-1 answer: its executed set plus decode-health sums.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectReply {
    /// Executed PCs across the shard's decoded traces, sorted.
    pub executed: Vec<Pc>,
    /// Failing traces decoded (equals the routed count — a failing
    /// snapshot that does not decode fails the round).
    pub failing: u32,
    /// Successful traces decoded (undecodable successes are dropped,
    /// exactly as single-node `prepare` drops them).
    pub successful: u32,
    /// Decoded events across the shard's retained traces.
    pub events_total: u64,
    /// Packet-level resynchronizations summed over retained traces.
    pub resyncs: u32,
    /// `CYC` deltas dropped, summed.
    pub cyc_dropped: u64,
    /// `MTC` duplicate bytes ignored, summed.
    pub mtc_dups: u64,
}

/// A shard's round-2 answer: its locally generated patterns plus the
/// candidate statistics every shard derives identically from the global
/// executed set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternsReply {
    /// Patterns generated from the shard's local failing traces,
    /// sorted + deduplicated.
    pub patterns: Vec<BugPattern>,
    /// The effective failing access (identical on every shard).
    pub failing_pc: Pc,
    /// Executed instructions with pointer operands (identical).
    pub pointer_insts: u64,
    /// Ranked candidates after truncation (identical).
    pub candidates: u32,
    /// Rank-1 candidates (identical).
    pub rank1_candidates: u32,
}

/// A shard's round-3 answer: its partial sufficient statistics plus
/// the event times the coordinator needs to order the root cause's
/// events (`O_S`) without ever seeing the shard's traces.
#[derive(Clone, Debug, PartialEq)]
pub struct FinalizeReply {
    /// Supports counted over the shard's local traces.
    pub stats: PatternStats,
    /// For the shard's *first* failing trace: pattern PC → last
    /// observed `time.lo`. PCs the trace never executed are absent.
    pub event_times: Vec<(Pc, u64)>,
}

impl<'m> FleetShard<'m> {
    /// Creates a shard for `module`.
    pub fn new(module: &'m Module, cfg: ServerConfig) -> FleetShard<'m> {
        let shard = FleetShard {
            server: DiagnosisServer::new(module, cfg.clone()),
            cfg,
            sessions: Mutex::new(HashMap::new()),
            pts_cache: Mutex::new(PointsToCache::new()),
            evicted: AtomicU64::new(0),
        };
        // Compile the walk table now, while the shard is idle: round-1
        // collect latency must not pay the one-time build cost.
        let _ = shard.server.walk_table();
        shard
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, ShardSession>> {
        self.sessions.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drops every session idle past the TTL, returning how many were
    /// evicted.
    fn sweep_locked(&self, sessions: &mut HashMap<u64, ShardSession>) -> usize {
        let now = Instant::now();
        let before = sessions.len();
        sessions.retain(|_, s| now.duration_since(s.touched) < self.cfg.session_ttl);
        let evicted = before - sessions.len();
        if evicted > 0 {
            self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
            lazy_obs::counter!("fleet.sessions_evicted_total", evicted as u64);
        }
        evicted
    }

    /// Evicts sessions idle past the configured TTL (the daemon calls
    /// this from its periodic sweep; admissions sweep on their own).
    /// Returns how many sessions were evicted.
    pub fn sweep_expired(&self) -> usize {
        let mut sessions = self.lock_sessions();
        self.sweep_locked(&mut sessions)
    }

    /// Total sessions ever evicted by the idle TTL.
    pub fn sessions_evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// A snapshot of the shard's lifecycle and warm-cache counters.
    pub fn stats(&self) -> ShardStats {
        let cache = self
            .pts_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats();
        ShardStats {
            open_sessions: self.lock_sessions().len() as u64,
            sessions_evicted: self.sessions_evicted(),
            cache_lookups: cache.lookups,
            cache_exact_hits: cache.exact_hits,
            cache_delta_solves: cache.delta_solves,
            cache_scratch_solves: cache.scratch_solves,
        }
    }

    /// Round 1: decode this shard's partition and report its executed
    /// set. Opens (or replaces) session `session`.
    ///
    /// # Errors
    ///
    /// Fails when a failing snapshot does not decode, or when the shard
    /// already holds [`MAX_SHARD_SESSIONS`] other sessions.
    pub fn collect(
        &self,
        session: u64,
        failure: &Failure,
        failing: &[TraceSnapshot],
        successful: &[TraceSnapshot],
    ) -> Result<CollectReply, DiagnosisError> {
        let failing: Vec<SnapshotView<'_>> = failing.iter().map(TraceSnapshot::view).collect();
        let successful: Vec<SnapshotView<'_>> =
            successful.iter().map(TraceSnapshot::view).collect();
        self.collect_views(session, failure, &failing, &successful)
    }

    /// [`FleetShard::collect`] over borrowed [`SnapshotView`]s — the
    /// zero-copy ingest path the daemon's fleet frame handler feeds
    /// straight from a connection read buffer. Processed traces are
    /// owned by the session, so the borrow ends when this returns.
    ///
    /// # Errors
    ///
    /// Same contract as [`FleetShard::collect`].
    pub fn collect_views(
        &self,
        session: u64,
        failure: &Failure,
        failing: &[SnapshotView<'_>],
        successful: &[SnapshotView<'_>],
    ) -> Result<CollectReply, DiagnosisError> {
        let _span = lazy_obs::span!("fleet.shard.collect");
        {
            // Admission sweeps expired sessions first: an abandoned
            // coordinator must not brick the shard for live ones.
            let mut sessions = self.lock_sessions();
            self.sweep_locked(&mut sessions);
            if sessions.len() >= MAX_SHARD_SESSIONS && !sessions.contains_key(&session) {
                return Err(DiagnosisError::Fleet {
                    detail: format!("shard at capacity: {MAX_SHARD_SESSIONS} open sessions"),
                });
            }
        }
        let (failing_traces, success_traces, executed) =
            self.server
                .prepare_shard(failing, successful, self.cfg.resolved_decode_workers())?;
        let mut executed: Vec<Pc> = executed.into_iter().collect();
        executed.sort_unstable();
        let all = || failing_traces.iter().chain(success_traces.iter());
        let reply = CollectReply {
            executed,
            failing: failing_traces.len() as u32,
            successful: success_traces.len() as u32,
            events_total: all().map(|t| t.event_count as u64).sum(),
            resyncs: all().map(|t| t.resyncs).sum(),
            cyc_dropped: all().map(|t| t.cyc_dropped).sum(),
            mtc_dups: all().map(|t| t.mtc_dups).sum(),
        };
        self.lock_sessions().insert(
            session,
            ShardSession {
                failure: failure.clone(),
                failing: failing_traces,
                successful: success_traces,
                rank_of: HashMap::new(),
                touched: Instant::now(),
            },
        );
        Ok(reply)
    }

    /// Round 2: run candidate selection against the *global* executed
    /// set and generate patterns from the local failing traces. This
    /// mirrors the single-node steps 4–6 exactly — same points-to
    /// scope, same candidate truncation, same per-trace pattern
    /// generation, same sort + dedup.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Fleet`] when `session` was never opened here.
    pub fn patterns(&self, session: u64, executed: &[Pc]) -> Result<PatternsReply, DiagnosisError> {
        let _span = lazy_obs::span!("fleet.shard.patterns");
        let module = self.server.module();
        let executed: HashSet<Pc> = executed.iter().copied().collect();
        let (failure, failing) = {
            let mut sessions = self.lock_sessions();
            let sess = sessions.get_mut(&session).ok_or_else(|| unknown(session))?;
            sess.touched = Instant::now();
            (sess.failure.clone(), sess.failing.clone())
        };
        let is_deadlock = matches!(
            failure.kind,
            FailureKind::Deadlock { .. } | FailureKind::Hang
        );
        // The warm path: a repeat scope is answered from the persistent
        // cache (exact hit), a grown scope extends a cached subset
        // (delta solve) — both byte-identical to the scratch solve the
        // cold path runs, because the least-fixpoint solution is
        // unique for a given scope.
        let pts = self
            .pts_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .analyze_scoped(module, &executed);
        let mut cands = select_candidates(module, &pts, &executed, failure.pc, is_deadlock);
        if cands.ranked.len() > self.cfg.max_candidates {
            cands.ranked.truncate(self.cfg.max_candidates);
        }
        let ctx = PatternContext::new(module, &pts, &cands);
        let mut patterns: Vec<BugPattern> = Vec::new();
        for t in &failing {
            let mut p = if is_deadlock {
                deadlock_patterns(&ctx, &cands, t)
            } else {
                let mut p = crash_patterns(&ctx, &cands, t);
                p.extend(crate::multivar::multivar_patterns(
                    module, &pts, &executed, failure.pc, t, &cands,
                ));
                p
            };
            patterns.append(&mut p);
        }
        patterns.sort();
        patterns.dedup();
        let rank_of: HashMap<Pc, u32> = cands.ranked.iter().map(|r| (r.pc, r.rank)).collect();
        let reply = PatternsReply {
            patterns,
            failing_pc: cands.failing_pc,
            pointer_insts: cands.pointer_insts_executed as u64,
            candidates: cands.ranked.len() as u32,
            rank1_candidates: cands.rank1_count() as u32,
        };
        if let Some(sess) = self.lock_sessions().get_mut(&session) {
            sess.rank_of = rank_of;
        }
        Ok(reply)
    }

    /// Round 3: count supports for the *global* pattern set over the
    /// local traces and close the session.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::Fleet`] when `session` was never opened here.
    pub fn finalize(
        &self,
        session: u64,
        patterns: &[BugPattern],
    ) -> Result<FinalizeReply, DiagnosisError> {
        let _span = lazy_obs::span!("fleet.shard.finalize");
        let sess = self
            .lock_sessions()
            .remove(&session)
            .ok_or_else(|| unknown(session))?;
        let stats = PatternStats::collect(patterns, &sess.failing, &sess.successful, &sess.rank_of);
        let event_times = match sess.failing.first() {
            Some(t0) => {
                let pcs: BTreeSet<Pc> = patterns.iter().flat_map(|p| p.pcs()).collect();
                pcs.into_iter()
                    .filter_map(|pc| {
                        t0.instances_of(pc)
                            .iter()
                            .map(|i| i.time.lo)
                            .max()
                            .map(|t| (pc, t))
                    })
                    .collect()
            }
            None => Vec::new(),
        };
        Ok(FinalizeReply { stats, event_times })
    }

    /// Sessions currently open (abandoned coordinators show up here).
    pub fn open_sessions(&self) -> usize {
        self.lock_sessions().len()
    }
}

fn unknown(session: u64) -> DiagnosisError {
    DiagnosisError::Fleet {
        detail: format!("unknown fleet session {session}"),
    }
}

// ---------------------------------------------------------------------
// Coordinator side.

/// A coordinator's connection to one shard: in-process (sharing the
/// coordinator's address space) or a `snorlaxd` over TCP.
pub enum ShardConn<'m> {
    /// An in-process shard (boxed: a shard embeds a whole
    /// `DiagnosisServer` and would dwarf the `Remote` variant).
    Local(Box<FleetShard<'m>>),
    /// A remote `snorlaxd` speaking the fleet frames.
    Remote(RemoteClient),
}

impl<'m> ShardConn<'m> {
    /// An in-process shard over `module`.
    pub fn local(module: &'m Module, cfg: ServerConfig) -> ShardConn<'m> {
        ShardConn::Local(Box::new(FleetShard::new(module, cfg)))
    }
    fn collect(
        &mut self,
        session: u64,
        failure: &Failure,
        failing: &[TraceSnapshot],
        successful: &[TraceSnapshot],
    ) -> Result<CollectReply, DiagnosisError> {
        match self {
            ShardConn::Local(s) => s.collect(session, failure, failing, successful),
            ShardConn::Remote(c) => c.fleet_collect(session, failure, failing, successful),
        }
    }

    fn patterns(&mut self, session: u64, executed: &[Pc]) -> Result<PatternsReply, DiagnosisError> {
        match self {
            ShardConn::Local(s) => s.patterns(session, executed),
            ShardConn::Remote(c) => c.fleet_patterns(session, executed),
        }
    }

    fn finalize(
        &mut self,
        session: u64,
        patterns: &[BugPattern],
    ) -> Result<FinalizeReply, DiagnosisError> {
        match self {
            ShardConn::Local(s) => s.finalize(session, patterns),
            ShardConn::Remote(c) => c.fleet_finalize(session, patterns),
        }
    }

    /// The shard's lifecycle and warm-cache counters
    /// ([`FrameKind::FleetStats`] for a remote shard).
    ///
    /// # Errors
    ///
    /// Transport or frame errors from a remote shard.
    pub fn stats(&mut self) -> Result<ShardStats, DiagnosisError> {
        match self {
            ShardConn::Local(s) => Ok(s.stats()),
            ShardConn::Remote(c) => c.fleet_stats(),
        }
    }
}

/// What happened on one shard during a fleet diagnosis.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index in the coordinator's shard list.
    pub shard: usize,
    /// Failing snapshots routed to this shard.
    pub failing_routed: usize,
    /// Successful snapshots routed (after the global cap).
    pub successful_routed: usize,
    /// `None` for a survivor; otherwise the protocol round that failed
    /// ("collect", "patterns", "finalize") and the typed error.
    pub error: Option<(&'static str, DiagnosisError)>,
}

/// A fleet-wide diagnosis plus its provenance.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// The merged diagnosis — byte-identical (via
    /// [`Diagnosis::render`]) to single-node when every shard survives.
    pub diagnosis: Diagnosis,
    /// Per-shard routing counts and failures.
    pub shard_reports: Vec<ShardReport>,
    /// The merged sufficient statistics the scores came from.
    pub merged_stats: PatternStats,
}

impl FleetOutcome {
    /// Shards that failed a protocol round.
    pub fn failed_shards(&self) -> usize {
        self.shard_reports
            .iter()
            .filter(|r| r.error.is_some())
            .count()
    }
}

/// Session-id source: unique within this process; the process id is
/// mixed in so concurrent coordinator *processes* sharing one daemon
/// cannot collide.
static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

fn next_session() -> u64 {
    let n = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
    (u64::from(std::process::id()) << 32) ^ n
}

/// Routes one failure report across N shards and merges their partial
/// statistics into a single fleet-wide [`Diagnosis`].
pub struct FleetCoordinator<'m> {
    module: &'m Module,
    cfg: ServerConfig,
    shards: Vec<Mutex<ShardConn<'m>>>,
}

impl<'m> FleetCoordinator<'m> {
    /// Creates a coordinator over `shards`. `cfg` governs the global
    /// success cap (`success_factor`) and must match the shards'
    /// configuration for candidate truncation to agree.
    pub fn new(
        module: &'m Module,
        cfg: ServerConfig,
        shards: Vec<ShardConn<'m>>,
    ) -> FleetCoordinator<'m> {
        FleetCoordinator {
            module,
            cfg,
            shards: shards.into_iter().map(Mutex::new).collect(),
        }
    }

    /// A coordinator over `n` in-process shards — the pure sharded
    /// dataflow with no transport, used by determinism tests and the
    /// `snorlax fleet coordinate` CLI.
    pub fn in_process(module: &'m Module, cfg: ServerConfig, n: usize) -> FleetCoordinator<'m> {
        let shards = (0..n)
            .map(|_| ShardConn::local(module, cfg.clone()))
            .collect();
        FleetCoordinator::new(module, cfg, shards)
    }

    /// Shards configured.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard lifecycle and warm-cache counters, in shard order.
    pub fn shard_stats(&mut self) -> Vec<Result<ShardStats, DiagnosisError>> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).stats())
            .collect()
    }

    /// Runs the three-round fleet protocol and merges the result.
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::EmptyReport`] with no failing snapshots,
    /// [`DiagnosisError::Fleet`] when no shards are configured or every
    /// shard fails a round. A *subset* of shards failing degrades
    /// instead: see [`FleetOutcome::shard_reports`].
    pub fn diagnose(
        &mut self,
        failure: &Failure,
        failing: &[TraceSnapshot],
        successful: &[TraceSnapshot],
    ) -> Result<FleetOutcome, DiagnosisError> {
        run_rounds(
            self.module,
            &self.cfg,
            &self.shards,
            failure,
            failing,
            successful,
        )
    }
}

/// The identity the router keys reports by: the failure PC plus a
/// structural fingerprint of the module it manifested in. Two
/// endpoints reporting the same crash site of the same binary hash to
/// the same bug, so their reports warm the same cached scopes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BugKey {
    /// PC of the failing instruction.
    pub failure_pc: Pc,
    /// [`module_fingerprint`] of the module the failure was observed
    /// in.
    pub module_fp: u64,
}

impl BugKey {
    /// The key for `failure` observed in `module`.
    pub fn of(module: &Module, failure: &Failure) -> BugKey {
        BugKey {
            failure_pc: failure.pc,
            module_fp: module_fingerprint(module),
        }
    }
}

/// FNV-1a over the module's identity-bearing shape: name, function
/// count, instruction count, and PC layout extent. Cheap enough to
/// compute per report, stable across runs of the same build, and any
/// rebuild that moves code changes it — which is exactly when cached
/// analysis state must not be conflated across binaries.
pub fn module_fingerprint(module: &Module) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(module.name.as_bytes());
    eat(&(module.functions().len() as u64).to_le_bytes());
    eat(&(module.inst_count() as u64).to_le_bytes());
    eat(&module.max_pc().0.to_le_bytes());
    h
}

/// One endpoint's failure report, as submitted to the router.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// The failure the endpoint observed.
    pub failure: Failure,
    /// Snapshots from failing executions.
    pub failing: Vec<TraceSnapshot>,
    /// Snapshots from successful executions past the breakpoint.
    pub successful: Vec<TraceSnapshot>,
}

/// Concurrent multi-report fleet diagnosis: accepts many in-flight
/// reports, keys each by bug ([`BugKey`]), and runs every report's
/// three-round protocol over one *shared* set of warm shards. Shards
/// persist across reports — their compiled walk tables and keyed
/// [`PointsToCache`]s survive — so the second report for a bug reuses
/// the solved points-to scope (exact hit or delta solve) instead of
/// re-solving from scratch, while each report's diagnosis stays
/// byte-identical to running it alone on a single node.
pub struct FleetRouter<'m> {
    module: &'m Module,
    cfg: ServerConfig,
    shards: Vec<Mutex<ShardConn<'m>>>,
    routes: Mutex<BTreeMap<BugKey, u64>>,
}

impl<'m> FleetRouter<'m> {
    /// A router over `shards`; `cfg` must match the shards' (same
    /// contract as [`FleetCoordinator::new`]).
    pub fn new(
        module: &'m Module,
        cfg: ServerConfig,
        shards: Vec<ShardConn<'m>>,
    ) -> FleetRouter<'m> {
        FleetRouter {
            module,
            cfg,
            shards: shards.into_iter().map(Mutex::new).collect(),
            routes: Mutex::new(BTreeMap::new()),
        }
    }

    /// A router over `n` in-process warm shards.
    pub fn in_process(module: &'m Module, cfg: ServerConfig, n: usize) -> FleetRouter<'m> {
        let shards = (0..n)
            .map(|_| ShardConn::local(module, cfg.clone()))
            .collect();
        FleetRouter::new(module, cfg, shards)
    }

    /// Shards configured.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Routes one report: keys it by bug, partitions its snapshots
    /// round-robin across the shared shards, and runs the three-round
    /// protocol. Identical routing and rounds to
    /// [`FleetCoordinator::diagnose`], so the result is byte-identical
    /// to a single-node diagnosis of the same report — warm state only
    /// changes *how fast* the shards answer, never what they answer.
    ///
    /// # Errors
    ///
    /// Same contract as [`FleetCoordinator::diagnose`]; an error fails
    /// this report alone and leaves the shards warm for siblings.
    pub fn route(&self, report: &FleetReport) -> Result<FleetOutcome, DiagnosisError> {
        let key = BugKey::of(self.module, &report.failure);
        {
            let mut routes = self.routes.lock().unwrap_or_else(PoisonError::into_inner);
            let seen = routes.entry(key).or_insert(0);
            if *seen == 0 {
                lazy_obs::counter!("fleet.router.bugs_total", 1u64);
            }
            *seen += 1;
        }
        lazy_obs::counter!("fleet.router.reports_total", 1u64);
        run_rounds(
            self.module,
            &self.cfg,
            &self.shards,
            &report.failure,
            &report.failing,
            &report.successful,
        )
    }

    /// Routes many in-flight reports concurrently; rounds interleave
    /// across the shared shards. In-flight reports are bounded by the
    /// machine's parallelism: an unbounded thread-per-report fan-out
    /// just multiplies contention on the per-shard mutexes (and evicts
    /// each other's decode working set) without adding wall-clock
    /// overlap. On one core the pool degrades to warm sequential
    /// routing, which is the throughput optimum there. Results come
    /// back in input order; each report succeeds or fails alone —
    /// interleaving safety is carried by the per-shard mutexes, not by
    /// this pool (concurrent `route` calls from arbitrary threads are
    /// equally fine).
    pub fn route_all(&self, reports: &[FleetReport]) -> Vec<Result<FleetOutcome, DiagnosisError>> {
        let mut out: Vec<Option<Result<FleetOutcome, DiagnosisError>>> =
            reports.iter().map(|_| None).collect();
        let workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(reports.len().max(1));
        let slots = Mutex::new(out.iter_mut().zip(reports).enumerate());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let Some((_, (slot, report))) = ({
                        let mut slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
                        slots.next()
                    }) else {
                        return;
                    };
                    let r = catch_unwind(AssertUnwindSafe(|| self.route(report)))
                        .unwrap_or_else(|p| Err(DiagnosisError::from_panic("fleet", p)));
                    *slot = Some(r);
                });
            }
        });
        out.into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(DiagnosisError::Fleet {
                        detail: "routed report returned no result".to_owned(),
                    })
                })
            })
            .collect()
    }

    /// Reports routed so far for `key`.
    pub fn reports_routed(&self, key: &BugKey) -> u64 {
        self.routes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    /// Every bug the router has seen, with its report count.
    pub fn known_bugs(&self) -> Vec<(BugKey, u64)> {
        self.routes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, n)| (*k, *n))
            .collect()
    }

    /// Per-shard lifecycle and warm-cache counters, in shard order —
    /// the proof the shards actually stayed warm.
    pub fn shard_stats(&self) -> Vec<Result<ShardStats, DiagnosisError>> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).stats())
            .collect()
    }
}

/// The three-round fleet protocol over a shared shard set — the one
/// implementation behind [`FleetCoordinator::diagnose`] (exclusive
/// shards) and [`FleetRouter::route`] (shards shared by concurrent
/// reports; per-shard mutexes serialize individual rounds).
fn run_rounds(
    module: &Module,
    cfg: &ServerConfig,
    shards: &[Mutex<ShardConn<'_>>],
    failure: &Failure,
    failing: &[TraceSnapshot],
    successful: &[TraceSnapshot],
) -> Result<FleetOutcome, DiagnosisError> {
    let _span = lazy_obs::span!("fleet.diagnose");
    let started = Instant::now();
    if shards.is_empty() {
        return Err(DiagnosisError::Fleet {
            detail: "no shards configured".to_owned(),
        });
    }
    if failing.is_empty() {
        return Err(DiagnosisError::EmptyReport);
    }
    let n = shards.len();
    lazy_obs::counter!("fleet.shards_total", n);

    // The global success cap applies BEFORE routing: a per-shard
    // cap would depend on n and break equality with single-node.
    let cap = cfg.success_factor * failing.len().max(1);
    let successful = &successful[..successful.len().min(cap)];

    // Round-robin routing: shard k gets failing traces k, k+n, …
    // — a pure function of the input, and shard 0 always holds the
    // globally-first failing trace (the `ordered_events` source).
    let mut parts: Vec<(Vec<TraceSnapshot>, Vec<TraceSnapshot>)> =
        (0..n).map(|_| (Vec::new(), Vec::new())).collect();
    for (i, s) in failing.iter().enumerate() {
        parts[i % n].0.push(s.clone());
    }
    for (j, s) in successful.iter().enumerate() {
        parts[j % n].1.push(s.clone());
    }
    let mut reports: Vec<ShardReport> = parts
        .iter()
        .enumerate()
        .map(|(k, (f, s))| ShardReport {
            shard: k,
            failing_routed: f.len(),
            successful_routed: s.len(),
            error: None,
        })
        .collect();

    let session = next_session();
    let is_deadlock = matches!(
        failure.kind,
        FailureKind::Deadlock { .. } | FailureKind::Hang
    );

    // Round 1: collect.
    let round_started = Instant::now();
    let collected: Vec<Option<CollectReply>> = {
        let _round = lazy_obs::span!("fleet.collect");
        let alive = vec![true; n];
        record_round(
            "collect",
            &mut reports,
            fan_out(shards, &alive, |k, shard| {
                shard.collect(session, failure, &parts[k].0, &parts[k].1)
            }),
        )
    };
    let mut alive: Vec<bool> = collected.iter().map(Option::is_some).collect();
    require_survivors(&alive, &reports)?;
    let decode_micros = round_started.elapsed().as_micros();

    let executed_union: BTreeSet<Pc> = collected
        .iter()
        .flatten()
        .flat_map(|r| r.executed.iter().copied())
        .collect();
    let executed: Vec<Pc> = executed_union.into_iter().collect();

    // Round 2: patterns against the global executed set.
    let round_started = Instant::now();
    let pattern_sets: Vec<Option<PatternsReply>> = {
        let _round = lazy_obs::span!("fleet.patterns");
        record_round(
            "patterns",
            &mut reports,
            fan_out(shards, &alive, |_, shard| {
                shard.patterns(session, &executed)
            }),
        )
    };
    for (a, r) in alive.iter_mut().zip(&pattern_sets) {
        *a = *a && r.is_some();
    }
    require_survivors(&alive, &reports)?;
    let points_to_micros = round_started.elapsed().as_micros();

    // Union the shards' sorted+deduped sets: identical to the
    // single-node sort+dedup over the concatenated per-trace runs.
    let pattern_union: BTreeSet<BugPattern> = pattern_sets
        .iter()
        .flatten()
        .flat_map(|r| r.patterns.iter().cloned())
        .collect();
    let patterns: Vec<BugPattern> = pattern_union.into_iter().collect();
    lazy_obs::counter!("fleet.patterns_merged_total", patterns.len());
    // Every shard derives these from the same global executed set;
    // take the first survivor's.
    let cand_info = pattern_sets
        .iter()
        .flatten()
        .next()
        .cloned()
        .ok_or_else(|| DiagnosisError::Fleet {
            detail: "no surviving shard reported candidates".to_owned(),
        })?;

    // Round 3: finalize — gather and merge partial statistics.
    let round_started = Instant::now();
    let finals: Vec<Option<FinalizeReply>> = {
        let _round = lazy_obs::span!("fleet.finalize");
        record_round(
            "finalize",
            &mut reports,
            fan_out(shards, &alive, |_, shard| {
                shard.finalize(session, &patterns)
            }),
        )
    };
    for (a, r) in alive.iter_mut().zip(&finals) {
        *a = *a && r.is_some();
    }
    require_survivors(&alive, &reports)?;

    let mut merged = PatternStats::empty();
    for r in finals.iter().flatten() {
        merged.merge(&r.stats);
    }
    lazy_obs::counter!(
        "fleet.partial_stats_merged_total",
        finals.iter().flatten().count()
    );
    let failed = reports.iter().filter(|r| r.error.is_some()).count();
    lazy_obs::counter!("fleet.shard_failures_total", failed);

    let scores = merged.finalize();
    let top_patterns = if patterns.is_empty() {
        0
    } else {
        top_pattern_count(&scores)
    };

    // Order the root cause's events using the earliest surviving
    // shard that holds a failing trace — with full survival that is
    // shard 0, whose first local failing trace IS the global first.
    let time_map: BTreeMap<Pc, u64> = finals
        .iter()
        .enumerate()
        .find(|(k, r)| r.is_some() && reports[*k].failing_routed > 0)
        .and_then(|(_, r)| r.as_ref())
        .map(|r| r.event_times.iter().copied().collect())
        .unwrap_or_default();
    let ordered_events = match scores.first().filter(|s| s.f1 > 0.0) {
        Some(top) => ordered_events_for(top, |pc| time_map.get(&pc).copied()),
        None => Vec::new(),
    };

    let sum_collected =
        |f: &dyn Fn(&CollectReply) -> u64| -> u64 { collected.iter().flatten().map(f).sum() };
    let stats = PipelineStats {
        static_insts: module.inst_count(),
        executed_insts: executed.len(),
        pointer_insts: cand_info.pointer_insts as usize,
        candidates: cand_info.candidates as usize,
        rank1_candidates: cand_info.rank1_candidates as usize,
        patterns: patterns.len(),
        top_patterns,
        events_total: sum_collected(&|r| r.events_total) as usize,
        analysis_micros: started.elapsed().as_micros(),
        decode_micros,
        points_to_micros,
        pattern_micros: round_started.elapsed().as_micros(),
        decode_resyncs: collected.iter().flatten().map(|r| r.resyncs).sum(),
        cyc_dropped: sum_collected(&|r| r.cyc_dropped),
        mtc_dups: sum_collected(&|r| r.mtc_dups),
    };
    lazy_obs::histogram!("fleet.diagnose_us", stats.analysis_micros);
    Ok(FleetOutcome {
        diagnosis: Diagnosis {
            scores,
            stats,
            failing_pc: cand_info.failing_pc,
            is_deadlock,
            ordered_events,
        },
        shard_reports: reports,
        merged_stats: merged,
    })
}

/// Runs `f` concurrently against every still-alive shard (one scoped
/// thread each; a shard is one network peer, so parallel fan-out is the
/// round's natural shape). Each thread locks exactly its own shard for
/// the duration of the round — that per-shard mutex is what lets a
/// [`FleetRouter`] interleave many reports over one shard set without
/// interleaving bytes on a connection. A panic inside a shard call
/// degrades that shard instead of unwinding through the scope.
fn fan_out<R: Send>(
    shards: &[Mutex<ShardConn<'_>>],
    alive: &[bool],
    f: impl Fn(usize, &mut ShardConn<'_>) -> Result<R, DiagnosisError> + Sync,
) -> Vec<Option<Result<R, DiagnosisError>>> {
    let mut slots: Vec<Option<Result<R, DiagnosisError>>> = shards.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((k, shard), slot) in shards.iter().enumerate().zip(slots.iter_mut()) {
            if !alive[k] {
                continue;
            }
            let f = &f;
            scope.spawn(move || {
                let mut conn = shard.lock().unwrap_or_else(PoisonError::into_inner);
                let r = catch_unwind(AssertUnwindSafe(|| f(k, &mut conn)))
                    .unwrap_or_else(|p| Err(DiagnosisError::from_panic("fleet", p)));
                *slot = Some(r);
            });
        }
    });
    slots
}

/// Files each shard's round result: errors land in `reports`, values
/// pass through.
fn record_round<R>(
    round: &'static str,
    reports: &mut [ShardReport],
    results: Vec<Option<Result<R, DiagnosisError>>>,
) -> Vec<Option<R>> {
    results
        .into_iter()
        .enumerate()
        .map(|(k, r)| match r {
            Some(Ok(v)) => Some(v),
            Some(Err(e)) => {
                reports[k].error = Some((round, e));
                None
            }
            None => None,
        })
        .collect()
}

/// All-shards-failed is the one fleet-fatal condition.
fn require_survivors(alive: &[bool], reports: &[ShardReport]) -> Result<(), DiagnosisError> {
    if alive.iter().any(|a| *a) {
        return Ok(());
    }
    let last = reports
        .iter()
        .rev()
        .find_map(|r| r.error.as_ref())
        .map(|(round, e)| format!("last failure in {round}: {e}"))
        .unwrap_or_else(|| "no shards answered".to_owned());
    Err(DiagnosisError::Fleet {
        detail: format!("every shard failed; {last}"),
    })
}

// ---------------------------------------------------------------------
// Wire codecs for the fleet frames.

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_event(out: &mut Vec<u8>, e: &PatternEvent) {
    push_u64(out, e.pc.0);
    out.push(match e.kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Lock => 2,
    });
}

fn decode_event(c: &mut Cursor<'_>) -> Result<PatternEvent, FrameError> {
    let pc = Pc(c.u64()?);
    let kind = match c.u8()? {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        2 => AccessKind::Lock,
        _ => return Err(FrameError::BadPayload("access kind")),
    };
    Ok(PatternEvent { pc, kind })
}

fn encode_pattern(out: &mut Vec<u8>, p: &BugPattern) {
    match p {
        BugPattern::OrderViolation { first, second } => {
            out.push(0);
            encode_event(out, first);
            encode_event(out, second);
        }
        BugPattern::AtomicityViolation {
            kind,
            first,
            second,
            third,
        } => {
            out.push(1);
            out.push(match kind {
                AtomKind::Rwr => 0,
                AtomKind::Wwr => 1,
                AtomKind::Rww => 2,
                AtomKind::Wrw => 3,
            });
            encode_event(out, first);
            encode_event(out, second);
            encode_event(out, third);
        }
        BugPattern::Deadlock { edges } => {
            out.push(2);
            push_u32(out, edges.len() as u32);
            for e in edges {
                push_u64(out, e.hold_pc.0);
                push_u64(out, e.want_pc.0);
            }
        }
        BugPattern::MultiVarAtomicity {
            w_first,
            w_second,
            r_first,
            r_second,
        } => {
            out.push(3);
            encode_event(out, w_first);
            encode_event(out, w_second);
            encode_event(out, r_first);
            encode_event(out, r_second);
        }
        BugPattern::UnorderedTargets { events } => {
            out.push(4);
            push_u32(out, events.len() as u32);
            for e in events {
                encode_event(out, e);
            }
        }
    }
}

fn decode_pattern(c: &mut Cursor<'_>) -> Result<BugPattern, FrameError> {
    Ok(match c.u8()? {
        0 => BugPattern::OrderViolation {
            first: decode_event(c)?,
            second: decode_event(c)?,
        },
        1 => {
            let kind = match c.u8()? {
                0 => AtomKind::Rwr,
                1 => AtomKind::Wwr,
                2 => AtomKind::Rww,
                3 => AtomKind::Wrw,
                _ => return Err(FrameError::BadPayload("atomicity kind")),
            };
            BugPattern::AtomicityViolation {
                kind,
                first: decode_event(c)?,
                second: decode_event(c)?,
                third: decode_event(c)?,
            }
        }
        2 => {
            let n = c.u32()? as usize;
            if n > c.remaining() / EDGE_BYTES {
                return Err(FrameError::BadPayload("deadlock edge count"));
            }
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                edges.push(DeadlockEdge {
                    hold_pc: Pc(c.u64()?),
                    want_pc: Pc(c.u64()?),
                });
            }
            BugPattern::Deadlock { edges }
        }
        3 => BugPattern::MultiVarAtomicity {
            w_first: decode_event(c)?,
            w_second: decode_event(c)?,
            r_first: decode_event(c)?,
            r_second: decode_event(c)?,
        },
        4 => {
            let n = c.u32()? as usize;
            if n > c.remaining() / EVENT_BYTES {
                return Err(FrameError::BadPayload("unordered event count"));
            }
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(decode_event(c)?);
            }
            BugPattern::UnorderedTargets { events }
        }
        _ => return Err(FrameError::BadPayload("pattern tag")),
    })
}

fn encode_patterns(out: &mut Vec<u8>, patterns: &[BugPattern]) {
    push_u32(out, patterns.len() as u32);
    for p in patterns {
        encode_pattern(out, p);
    }
}

fn decode_patterns(c: &mut Cursor<'_>) -> Result<Vec<BugPattern>, FrameError> {
    let n = c.u32()? as usize;
    // Every pattern costs at least its tag byte.
    if n > c.remaining() {
        return Err(FrameError::BadPayload("pattern count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_pattern(c)?);
    }
    Ok(out)
}

fn encode_pcs(out: &mut Vec<u8>, pcs: &[Pc]) {
    push_u32(out, pcs.len() as u32);
    for pc in pcs {
        push_u64(out, pc.0);
    }
}

fn decode_pcs(c: &mut Cursor<'_>) -> Result<Vec<Pc>, FrameError> {
    let n = c.u32()? as usize;
    if n > c.remaining() / 8 {
        return Err(FrameError::BadPayload("pc count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Pc(c.u64()?));
    }
    Ok(out)
}

fn done(c: &Cursor<'_>) -> Result<(), FrameError> {
    if c.remaining() != 0 {
        return Err(FrameError::BadPayload("trailing bytes"));
    }
    Ok(())
}

fn cursor(payload: &[u8]) -> Cursor<'_> {
    Cursor {
        bytes: payload,
        pos: 0,
    }
}

/// Encodes a [`FrameKind::FleetCollect`] payload.
pub fn encode_fleet_collect(
    session: u64,
    failure: &Failure,
    failing: &[TraceSnapshot],
    successful: &[TraceSnapshot],
) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, session);
    encode_failure(&mut out, failure);
    encode_snapshots(&mut out, failing);
    encode_snapshots(&mut out, successful);
    out
}

/// Decodes a [`FrameKind::FleetCollect`] payload.
///
/// # Errors
///
/// Frame errors for structural corruption; wire errors when an embedded
/// snapshot fails its own checksum.
pub fn decode_fleet_collect(
    payload: &[u8],
) -> Result<(u64, crate::daemon::DiagnoseRequest), DiagnosisError> {
    let mut c = cursor(payload);
    let session = c.u64().map_err(DiagnosisError::Frame)?;
    let failure = decode_failure(&mut c).map_err(DiagnosisError::Frame)?;
    let failing = decode_snapshots(&mut c)?;
    let successful = decode_snapshots(&mut c)?;
    done(&c).map_err(DiagnosisError::Frame)?;
    Ok((
        session,
        crate::daemon::DiagnoseRequest {
            failure,
            failing,
            successful,
        },
    ))
}

/// Decodes a [`FrameKind::FleetCollect`] payload without copying trace
/// bytes: the returned views borrow from `payload`.
///
/// # Errors
///
/// Frame errors for structural corruption; wire errors when an embedded
/// snapshot fails its own checksum.
pub(crate) fn decode_fleet_collect_view(
    payload: &[u8],
) -> Result<(u64, crate::daemon::DiagnoseRequestView<'_>), DiagnosisError> {
    let mut c = cursor(payload);
    let session = c.u64().map_err(DiagnosisError::Frame)?;
    let request = crate::daemon::decode_diagnose_view_cursor(&mut c)?;
    done(&c).map_err(DiagnosisError::Frame)?;
    Ok((session, request))
}

/// Encodes a [`FrameKind::FleetCollectAck`] payload.
pub fn encode_collect_reply(r: &CollectReply) -> Vec<u8> {
    let mut out = Vec::new();
    encode_pcs(&mut out, &r.executed);
    push_u32(&mut out, r.failing);
    push_u32(&mut out, r.successful);
    push_u64(&mut out, r.events_total);
    push_u32(&mut out, r.resyncs);
    push_u64(&mut out, r.cyc_dropped);
    push_u64(&mut out, r.mtc_dups);
    out
}

/// Decodes a [`FrameKind::FleetCollectAck`] payload.
///
/// # Errors
///
/// [`FrameError::BadPayload`] / [`FrameError::Truncated`] on structural
/// corruption.
pub fn decode_collect_reply(payload: &[u8]) -> Result<CollectReply, FrameError> {
    let mut c = cursor(payload);
    let r = CollectReply {
        executed: decode_pcs(&mut c)?,
        failing: c.u32()?,
        successful: c.u32()?,
        events_total: c.u64()?,
        resyncs: c.u32()?,
        cyc_dropped: c.u64()?,
        mtc_dups: c.u64()?,
    };
    done(&c)?;
    Ok(r)
}

/// Encodes a [`FrameKind::FleetPatterns`] payload.
pub fn encode_fleet_patterns(session: u64, executed: &[Pc]) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, session);
    encode_pcs(&mut out, executed);
    out
}

/// Decodes a [`FrameKind::FleetPatterns`] payload.
///
/// # Errors
///
/// Frame errors on structural corruption.
pub fn decode_fleet_patterns(payload: &[u8]) -> Result<(u64, Vec<Pc>), FrameError> {
    let mut c = cursor(payload);
    let session = c.u64()?;
    let executed = decode_pcs(&mut c)?;
    done(&c)?;
    Ok((session, executed))
}

/// Encodes a [`FrameKind::FleetPatternSet`] payload.
pub fn encode_patterns_reply(r: &PatternsReply) -> Vec<u8> {
    let mut out = Vec::new();
    encode_patterns(&mut out, &r.patterns);
    push_u64(&mut out, r.failing_pc.0);
    push_u64(&mut out, r.pointer_insts);
    push_u32(&mut out, r.candidates);
    push_u32(&mut out, r.rank1_candidates);
    out
}

/// Decodes a [`FrameKind::FleetPatternSet`] payload.
///
/// # Errors
///
/// Frame errors on structural corruption.
pub fn decode_patterns_reply(payload: &[u8]) -> Result<PatternsReply, FrameError> {
    let mut c = cursor(payload);
    let r = PatternsReply {
        patterns: decode_patterns(&mut c)?,
        failing_pc: Pc(c.u64()?),
        pointer_insts: c.u64()?,
        candidates: c.u32()?,
        rank1_candidates: c.u32()?,
    };
    done(&c)?;
    Ok(r)
}

/// Encodes a [`FrameKind::FleetFinalize`] payload.
pub fn encode_fleet_finalize(session: u64, patterns: &[BugPattern]) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, session);
    encode_patterns(&mut out, patterns);
    out
}

/// Decodes a [`FrameKind::FleetFinalize`] payload.
///
/// # Errors
///
/// Frame errors on structural corruption.
pub fn decode_fleet_finalize(payload: &[u8]) -> Result<(u64, Vec<BugPattern>), FrameError> {
    let mut c = cursor(payload);
    let session = c.u64()?;
    let patterns = decode_patterns(&mut c)?;
    done(&c)?;
    Ok((session, patterns))
}

/// Encodes a [`FrameKind::PartialStats`] payload: the serialized
/// sufficient statistics plus the event-time map.
pub fn encode_finalize_reply(r: &FinalizeReply) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, r.stats.failing_traces() as u64);
    push_u64(&mut out, r.stats.successful_traces() as u64);
    push_u32(&mut out, r.stats.len() as u32);
    for (p, c) in r.stats.entries() {
        encode_pattern(&mut out, p);
        push_u32(&mut out, c.type_rank);
        push_u32(&mut out, c.fail_support as u32);
        push_u32(&mut out, c.success_support as u32);
    }
    push_u32(&mut out, r.event_times.len() as u32);
    for (pc, t) in &r.event_times {
        push_u64(&mut out, pc.0);
        push_u64(&mut out, *t);
    }
    out
}

/// Decodes a [`FrameKind::PartialStats`] payload.
///
/// # Errors
///
/// Frame errors on structural corruption.
pub fn decode_finalize_reply(payload: &[u8]) -> Result<FinalizeReply, FrameError> {
    let mut c = cursor(payload);
    let failing = c.u64()? as usize;
    let successful = c.u64()? as usize;
    let n = c.u32()? as usize;
    // Each entry costs at least a pattern tag plus three count words.
    if n > c.remaining() / 13 {
        return Err(FrameError::BadPayload("stats entry count"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let p = decode_pattern(&mut c)?;
        let counts = PatternCounts {
            type_rank: c.u32()?,
            fail_support: c.u32()? as usize,
            success_support: c.u32()? as usize,
        };
        entries.push((p, counts));
    }
    let m = c.u32()? as usize;
    if m > c.remaining() / 16 {
        return Err(FrameError::BadPayload("event time count"));
    }
    let mut event_times = Vec::with_capacity(m);
    for _ in 0..m {
        event_times.push((Pc(c.u64()?), c.u64()?));
    }
    done(&c)?;
    Ok(FinalizeReply {
        stats: PatternStats::from_parts(entries, failing, successful),
        event_times,
    })
}

/// Encodes a [`FrameKind::FleetStats`] request payload. The request
/// targets the daemon's one shard state, so it carries nothing.
pub fn encode_fleet_stats() -> Vec<u8> {
    Vec::new()
}

/// Decodes a [`FrameKind::FleetStats`] request payload.
///
/// # Errors
///
/// [`FrameError::BadPayload`] when the payload is not empty.
pub fn decode_fleet_stats(payload: &[u8]) -> Result<(), FrameError> {
    if payload.is_empty() {
        Ok(())
    } else {
        Err(FrameError::BadPayload("trailing bytes"))
    }
}

/// Encodes a [`FrameKind::FleetStatsAck`] payload.
pub fn encode_shard_stats(s: &ShardStats) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, s.open_sessions);
    push_u64(&mut out, s.sessions_evicted);
    push_u64(&mut out, s.cache_lookups);
    push_u64(&mut out, s.cache_exact_hits);
    push_u64(&mut out, s.cache_delta_solves);
    push_u64(&mut out, s.cache_scratch_solves);
    out
}

/// Decodes a [`FrameKind::FleetStatsAck`] payload.
///
/// # Errors
///
/// Frame errors on structural corruption.
pub fn decode_shard_stats(payload: &[u8]) -> Result<ShardStats, FrameError> {
    let mut c = cursor(payload);
    let s = ShardStats {
        open_sessions: c.u64()?,
        sessions_evicted: c.u64()?,
        cache_lookups: c.u64()?,
        cache_exact_hits: c.u64()?,
        cache_delta_solves: c.u64()?,
        cache_scratch_solves: c.u64()?,
    };
    done(&c)?;
    Ok(s)
}

/// Response-kind mapping for the fleet requests — the daemon uses
/// this to pick the ack kind, the client to validate it.
pub fn fleet_response_kind(request: FrameKind) -> Option<FrameKind> {
    match request {
        FrameKind::FleetCollect => Some(FrameKind::FleetCollectAck),
        FrameKind::FleetPatterns => Some(FrameKind::FleetPatternSet),
        FrameKind::FleetFinalize => Some(FrameKind::PartialStats),
        FrameKind::FleetStats => Some(FrameKind::FleetStatsAck),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: u64, kind: AccessKind) -> PatternEvent {
        PatternEvent { pc: Pc(pc), kind }
    }

    fn sample_patterns() -> Vec<BugPattern> {
        vec![
            BugPattern::OrderViolation {
                first: ev(0x10, AccessKind::Write),
                second: ev(0x20, AccessKind::Read),
            },
            BugPattern::AtomicityViolation {
                kind: AtomKind::Rwr,
                first: ev(1, AccessKind::Read),
                second: ev(2, AccessKind::Write),
                third: ev(3, AccessKind::Read),
            },
            BugPattern::Deadlock {
                edges: vec![
                    DeadlockEdge {
                        hold_pc: Pc(5),
                        want_pc: Pc(6),
                    },
                    DeadlockEdge {
                        hold_pc: Pc(7),
                        want_pc: Pc(8),
                    },
                ],
            },
            BugPattern::MultiVarAtomicity {
                w_first: ev(11, AccessKind::Write),
                w_second: ev(12, AccessKind::Write),
                r_first: ev(13, AccessKind::Read),
                r_second: ev(14, AccessKind::Read),
            },
            BugPattern::UnorderedTargets {
                events: vec![ev(21, AccessKind::Lock), ev(22, AccessKind::Write)],
            },
        ]
    }

    #[test]
    fn pattern_codec_roundtrips_every_variant() {
        let patterns = sample_patterns();
        let mut out = Vec::new();
        encode_patterns(&mut out, &patterns);
        let mut c = cursor(&out);
        let back = decode_patterns(&mut c).unwrap();
        assert_eq!(back, patterns);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn finalize_reply_codec_roundtrips() {
        let entries: Vec<(BugPattern, PatternCounts)> = sample_patterns()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    p,
                    PatternCounts {
                        type_rank: 1 + (i as u32 % 2),
                        fail_support: i,
                        success_support: 2 * i,
                    },
                )
            })
            .collect();
        let reply = FinalizeReply {
            stats: PatternStats::from_parts(entries, 7, 70),
            event_times: vec![(Pc(0x10), 42), (Pc(0x20), u64::MAX - 1)],
        };
        let wire = encode_finalize_reply(&reply);
        let back = decode_finalize_reply(&wire).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn collect_and_patterns_codecs_roundtrip() {
        let collect = CollectReply {
            executed: vec![Pc(1), Pc(2), Pc(900)],
            failing: 3,
            successful: 30,
            events_total: 123_456,
            resyncs: 2,
            cyc_dropped: 9,
            mtc_dups: 1,
        };
        let wire = encode_collect_reply(&collect);
        assert_eq!(decode_collect_reply(&wire).unwrap(), collect);

        let reply = PatternsReply {
            patterns: sample_patterns(),
            failing_pc: Pc(0x40),
            pointer_insts: 512,
            candidates: 17,
            rank1_candidates: 4,
        };
        let wire = encode_patterns_reply(&reply);
        assert_eq!(decode_patterns_reply(&wire).unwrap(), reply);

        let (s, pcs) = decode_fleet_patterns(&encode_fleet_patterns(9, &collect.executed)).unwrap();
        assert_eq!((s, pcs), (9, collect.executed.clone()));
        let (s, ps) = decode_fleet_finalize(&encode_fleet_finalize(11, &reply.patterns)).unwrap();
        assert_eq!(s, 11);
        assert_eq!(ps, reply.patterns);
    }

    #[test]
    fn corrupt_payloads_are_typed_not_panics() {
        let reply = FinalizeReply {
            stats: PatternStats::from_parts(
                vec![(
                    sample_patterns().remove(0),
                    PatternCounts {
                        type_rank: 1,
                        fail_support: 1,
                        success_support: 0,
                    },
                )],
                1,
                10,
            ),
            event_times: vec![(Pc(0x10), 42)],
        };
        let wire = encode_finalize_reply(&reply);
        // Truncation at every prefix is a typed error.
        for cut in 0..wire.len() {
            assert!(decode_finalize_reply(&wire[..cut]).is_err(), "cut {cut}");
        }
        // An inflated entry count is rejected before allocation.
        let mut inflated = wire.clone();
        inflated[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_finalize_reply(&inflated).is_err());
        // Trailing garbage is rejected.
        let mut trailing = wire;
        trailing.push(0);
        assert_eq!(
            decode_finalize_reply(&trailing),
            Err(FrameError::BadPayload("trailing bytes"))
        );
    }

    #[test]
    fn shard_stats_codec_roundtrips() {
        let s = ShardStats {
            open_sessions: 3,
            sessions_evicted: 7,
            cache_lookups: 40,
            cache_exact_hits: 21,
            cache_delta_solves: 4,
            cache_scratch_solves: 15,
        };
        assert_eq!(s.warm_solves(), 25);
        let wire = encode_shard_stats(&s);
        assert_eq!(decode_shard_stats(&wire).unwrap(), s);
        for cut in 0..wire.len() {
            assert!(decode_shard_stats(&wire[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = wire;
        trailing.push(0);
        assert_eq!(
            decode_shard_stats(&trailing),
            Err(FrameError::BadPayload("trailing bytes"))
        );
        // The request payload is empty by contract.
        assert!(decode_fleet_stats(&encode_fleet_stats()).is_ok());
        assert!(decode_fleet_stats(&[0]).is_err());
    }

    #[test]
    fn response_kind_mapping_covers_the_three_rounds() {
        assert_eq!(
            fleet_response_kind(FrameKind::FleetCollect),
            Some(FrameKind::FleetCollectAck)
        );
        assert_eq!(
            fleet_response_kind(FrameKind::FleetPatterns),
            Some(FrameKind::FleetPatternSet)
        );
        assert_eq!(
            fleet_response_kind(FrameKind::FleetFinalize),
            Some(FrameKind::PartialStats)
        );
        assert_eq!(
            fleet_response_kind(FrameKind::FleetStats),
            Some(FrameKind::FleetStatsAck)
        );
        assert_eq!(fleet_response_kind(FrameKind::Diagnose), None);
    }

    #[test]
    fn session_ids_are_process_unique() {
        let a = next_session();
        let b = next_session();
        assert_ne!(a, b);
    }
}
