//! Multi-variable atomicity violations — the §7 extension.
//!
//! The paper scopes Lazy Diagnosis to *single-variable* atomicity
//! violations and leaves multi-variable cases to future work, noting
//! they would need data-flow information. The missing ingredient is
//! available statically: when a failed assertion's condition feeds from
//! **two loads of non-aliasing locations** (a consistency check over a
//! variable pair, e.g. MySQL's `HOT_LOG`/`LOG_TO_BE_OPENED` pair in the
//! §7 citation \[56\]), the failure itself names the variable pair. The
//! diagnosis then looks for a *remote update pair* to the same two
//! variables whose window the reader pair straddles — the torn-snapshot
//! interleaving:
//!
//! ```text
//!   updater:  W(A) ............ W(B)      (intended atomic)
//!   reader:          R(A)  R(B)           torn: sees new A, old B
//! ```
//!
//! or the mirrored case (reader window contains the whole update).
//! Statistical diagnosis then separates the torn interleaving from the
//! benign orders exactly as for single-variable patterns.

use crate::candidates::CandidateSet;
use crate::patterns::{access_kind, AccessKind, BugPattern, PatternEvent};
use crate::processing::ProcessedTrace;
use lazy_analysis::loc::sets_intersect;
use lazy_analysis::{effective_failing_accesses, PointsTo};
use lazy_ir::{InstKind, Module, Pc};
use std::collections::HashSet;

/// Generates multi-variable atomicity patterns for a crash whose
/// failing value feeds from two (or more) loads of disjoint locations.
///
/// Returns an empty vector when the failure is single-variable (the
/// regular pipeline handles it).
pub fn multivar_patterns(
    module: &Module,
    pts: &PointsTo,
    executed: &HashSet<Pc>,
    raw_failing_pc: Pc,
    trace: &ProcessedTrace,
    cands: &CandidateSet,
) -> Vec<BugPattern> {
    let feeds = effective_failing_accesses(module, raw_failing_pc);
    if feeds.len() < 2 {
        return Vec::new();
    }
    // Take the first pair of feeding loads whose points-to sets are
    // disjoint: a genuine variable *pair*.
    let mut pair: Option<(Pc, Pc)> = None;
    'outer: for i in 0..feeds.len() {
        for j in (i + 1)..feeds.len() {
            let (a, b) = (feeds[i], feeds[j]);
            let (Some(pa), Some(pb)) = (
                pts.pts_of_pointer_at(module, a),
                pts.pts_of_pointer_at(module, b),
            ) else {
                continue;
            };
            if !pa.is_empty() && !pb.is_empty() && !sets_intersect(&pa, &pb) {
                pair = Some((a, b));
                break 'outer;
            }
        }
    }
    let Some((ra_pc, rb_pc)) = pair else {
        return Vec::new();
    };
    let pts_a = pts.pts_of_pointer_at(module, ra_pc).unwrap_or_default();
    let pts_b = pts.pts_of_pointer_at(module, rb_pc).unwrap_or_default();

    // The reader pair's last instances in the failing thread.
    let Some(ra) = trace.last_instance_in_thread(ra_pc, trace.trigger_tid) else {
        return Vec::new();
    };
    let Some(rb) = trace.last_instance_in_thread(rb_pc, trace.trigger_tid) else {
        return Vec::new();
    };
    if ra.seq >= rb.seq {
        return Vec::new();
    }
    let reader_tid = trace.trigger_tid;

    // Remote update candidates per variable: executed writes aliasing
    // each location.
    let writes_to = |target: &lazy_analysis::PtsSet| -> Vec<Pc> {
        executed
            .iter()
            .filter(|pc| {
                let Some(inst) = module.inst(**pc) else {
                    return false;
                };
                if !inst.kind.is_write() && !matches!(inst.kind, InstKind::Free { .. }) {
                    return false;
                }
                let Some(loc) = module.loc_of_pc(**pc) else {
                    return false;
                };
                let Some(op) = inst.kind.pointer_operand() else {
                    return false;
                };
                sets_intersect(&pts.pts_of_operand(loc.func, op), target)
            })
            .copied()
            .collect()
    };
    let wa_cands = writes_to(&pts_a);
    let wb_cands = writes_to(&pts_b);

    let ev = |pc: Pc| -> Option<PatternEvent> {
        Some(PatternEvent {
            pc,
            kind: access_kind(&module.inst(pc)?.kind)?,
        })
    };

    let mut out = Vec::new();
    for &wa_pc in &wa_cands {
        for &wb_pc in &wb_cands {
            if wa_pc == wb_pc {
                continue;
            }
            for wa in trace.instances_of(wa_pc) {
                if wa.tid == reader_tid {
                    continue;
                }
                for wb in trace.instances_of(wb_pc) {
                    if wb.tid != wa.tid || wa.seq >= wb.seq {
                        continue;
                    }
                    let torn_new_old = wa.definitely_before(&ra) && rb.definitely_before(wb);
                    let torn_old_new = ra.definitely_before(wa) && wb.definitely_before(&rb);
                    if !(torn_new_old || torn_old_new) {
                        continue;
                    }
                    let (Some(w1), Some(w2), Some(r1), Some(r2)) =
                        (ev(wa_pc), ev(wb_pc), ev(ra_pc), ev(rb_pc))
                    else {
                        continue;
                    };
                    if w1.kind != AccessKind::Write && w2.kind != AccessKind::Write {
                        continue;
                    }
                    out.push(BugPattern::MultiVarAtomicity {
                        w_first: w1,
                        w_second: w2,
                        r_first: r1,
                        r_second: r2,
                    });
                }
            }
        }
    }
    let _ = cands;
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processing::DynInstance;
    use lazy_trace::TimeBounds;
    use std::collections::HashMap;

    fn trace_with(trigger: (u32, u64), instances: Vec<(u64, Vec<DynInstance>)>) -> ProcessedTrace {
        let mut map = HashMap::new();
        let mut executed = HashSet::new();
        let mut event_time = HashMap::new();
        for (pc, is) in instances {
            executed.insert(Pc(pc));
            for i in &is {
                event_time.insert((i.tid, i.seq), i.time);
            }
            map.insert(Pc(pc), is);
        }
        ProcessedTrace {
            executed,
            instances: map,
            event_time,
            trigger_tid: trigger.0,
            trigger_pc: Pc(trigger.1),
            taken_at: u64::MAX,
            event_count: 0,
            resyncs: 0,
            cyc_dropped: 0,
            mtc_dups: 0,
        }
    }

    fn inst(tid: u32, seq: usize, lo: u64) -> DynInstance {
        DynInstance {
            tid,
            seq,
            time: TimeBounds { lo, hi: lo + 10 },
        }
    }

    #[test]
    fn torn_snapshot_presence_detected() {
        use crate::patterns::pattern_present;
        let p = BugPattern::MultiVarAtomicity {
            w_first: PatternEvent {
                pc: Pc(10),
                kind: AccessKind::Write,
            },
            w_second: PatternEvent {
                pc: Pc(20),
                kind: AccessKind::Write,
            },
            r_first: PatternEvent {
                pc: Pc(30),
                kind: AccessKind::Read,
            },
            r_second: PatternEvent {
                pc: Pc(40),
                kind: AccessKind::Read,
            },
        };
        // Torn: W(A) < R(A), R(B) < W(B).
        let t = trace_with(
            (2, 40),
            vec![
                (10, vec![inst(1, 0, 100)]),
                (20, vec![inst(1, 1, 900)]),
                (30, vec![inst(2, 0, 400)]),
                (40, vec![inst(2, 1, 600)]),
            ],
        );
        assert!(pattern_present(&p, &t));
        // Consistent: reads entirely before the update pair.
        let t = trace_with(
            (2, 40),
            vec![
                (10, vec![inst(1, 0, 700)]),
                (20, vec![inst(1, 1, 900)]),
                (30, vec![inst(2, 0, 100)]),
                (40, vec![inst(2, 1, 300)]),
            ],
        );
        assert!(!pattern_present(&p, &t));
        // Consistent: reads entirely after.
        let t = trace_with(
            (2, 40),
            vec![
                (10, vec![inst(1, 0, 100)]),
                (20, vec![inst(1, 1, 200)]),
                (30, vec![inst(2, 0, 700)]),
                (40, vec![inst(2, 1, 900)]),
            ],
        );
        assert!(!pattern_present(&p, &t));
        // Mirrored torn case: reads contain the whole update window.
        let t = trace_with(
            (2, 40),
            vec![
                (10, vec![inst(1, 0, 400)]),
                (20, vec![inst(1, 1, 600)]),
                (30, vec![inst(2, 0, 100)]),
                (40, vec![inst(2, 1, 900)]),
            ],
        );
        assert!(pattern_present(&p, &t));
    }
}
