//! Candidate selection (steps 4 and 5 of the pipeline).
//!
//! The hybrid points-to analysis (Andersen scoped to executed code) maps
//! the failing instruction's pointer operand to its abstract locations;
//! the candidate set is every *executed* memory or synchronization
//! instruction whose own pointer operand may reference one of those
//! locations. Type-based ranking then orders the candidates.
//!
//! When the failing instruction carries no pointer operand (a failed
//! assertion, the paper's custom fail-stop mode), the effective failing
//! access is recovered with a short backward data-flow walk to the load
//! feeding the assert — the same move RETracer makes from a corrupt
//! value (§2.2 of the paper discusses this lineage).

use lazy_analysis::loc::sets_intersect;
use lazy_analysis::{rank_candidates, PointsTo, PtsSet, RankedInst};
use lazy_ir::{InstKind, Module, Pc};
use std::collections::HashSet;

/// The selected and ranked candidates for one failure.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    /// The effective failing access (the failing PC itself, or the load
    /// feeding a failed assertion).
    pub failing_pc: Pc,
    /// The failing operand's points-to set.
    pub failing_pts: PtsSet,
    /// Ranked candidates, best first; includes the failing PC.
    pub ranked: Vec<RankedInst>,
    /// How many executed instructions had a pointer operand at all
    /// (pre-aliasing population, for stage-reduction stats).
    pub pointer_insts_executed: usize,
}

impl CandidateSet {
    /// Candidate PCs in rank order.
    pub fn pcs(&self) -> Vec<Pc> {
        self.ranked.iter().map(|r| r.pc).collect()
    }

    /// Candidates with rank 1 (exact type match).
    pub fn rank1_count(&self) -> usize {
        self.ranked.iter().filter(|r| r.rank == 1).count()
    }
}

/// Finds the memory access whose value feeds the instruction at `pc`
/// (re-exported from [`lazy_analysis::dataflow`]; see there).
pub use lazy_analysis::effective_failing_access;

/// Selects and ranks candidates (pipeline steps 4–5).
///
/// `deadlock` switches the candidate universe: for deadlock failures the
/// interesting instructions are lock operations (all of them — the
/// cycle involves several distinct lock objects, not just the one the
/// failing thread blocked on); for crashes they are the memory accesses
/// aliasing the failing operand.
pub fn select_candidates(
    module: &Module,
    pts: &PointsTo,
    executed: &HashSet<Pc>,
    raw_failing_pc: Pc,
    deadlock: bool,
) -> CandidateSet {
    let failing_pc = effective_failing_access(module, raw_failing_pc);
    let failing_pts = pts
        .pts_of_pointer_at(module, failing_pc)
        .unwrap_or_default();

    let mut pointer_insts_executed = 0usize;
    let mut chosen: Vec<Pc> = Vec::new();
    for &pc in executed {
        let Some(inst) = module.inst(pc) else {
            continue;
        };
        let Some(op) = inst.kind.pointer_operand() else {
            continue;
        };
        pointer_insts_executed += 1;
        let keep = if deadlock {
            // Lock operations participate in lock-order cycles.
            inst.kind.is_lock_acquire() || inst.kind.is_lock_release()
        } else {
            if !(inst.kind.is_memory_access()
                || matches!(inst.kind, InstKind::Free { .. })
                || inst.kind.is_lock_acquire())
            {
                false
            } else if pc == failing_pc {
                true
            } else {
                let Some(loc) = module.loc_of_pc(pc) else {
                    continue;
                };
                let p = pts.pts_of_operand(loc.func, op);
                sets_intersect(&p, &failing_pts)
            }
        };
        if keep {
            chosen.push(pc);
        }
    }
    if !chosen.contains(&failing_pc) && executed.contains(&failing_pc) {
        chosen.push(failing_pc);
    }
    let ranked = rank_candidates(module, failing_pc, &chosen);
    CandidateSet {
        failing_pc,
        failing_pts,
        ranked,
        pointer_insts_executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazy_ir::{ModuleBuilder, Operand, Type};

    /// Two shared objects; a crash on one must not pull in accesses to
    /// the other.
    #[test]
    fn aliasing_filters_candidates() {
        let mut mb = ModuleBuilder::new("m");
        let ga = mb.global("a", Type::I64, vec![0]);
        let gb = mb.global("b", Type::I64, vec![0]);
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        f.store(ga.clone(), Operand::const_int(1), Type::I64);
        f.store(gb.clone(), Operand::const_int(2), Type::I64);
        let fail = f.load(ga.clone(), Type::I64);
        let _ = fail;
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let pts = PointsTo::analyze(&m);
        let executed: HashSet<Pc> = m.all_insts().map(|(i, _)| i.pc).collect();
        let load_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, InstKind::Load { .. }))
            .map(|(i, _)| i.pc)
            .unwrap();
        let cs = select_candidates(&m, &pts, &executed, load_pc, false);
        let store_a = m
            .all_insts()
            .find(|(i, _)| i.kind.is_write())
            .map(|(i, _)| i.pc)
            .unwrap();
        let store_b = m
            .all_insts()
            .filter(|(i, _)| i.kind.is_write())
            .map(|(i, _)| i.pc)
            .nth(1)
            .unwrap();
        let pcs = cs.pcs();
        assert!(pcs.contains(&store_a), "aliasing store selected");
        assert!(!pcs.contains(&store_b), "non-aliasing store excluded");
        assert!(pcs.contains(&load_pc), "failing instruction included");
        assert_eq!(cs.failing_pc, load_pc);
    }

    /// A failed assert's effective access is the load feeding it.
    #[test]
    fn assert_failure_maps_to_feeding_load() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", Type::I64, vec![0]);
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        let v = f.load(g.clone(), Type::I64);
        let c = f.eq(v, Operand::const_int(1));
        f.assert(c, "g must be 1");
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let assert_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, InstKind::Assert { .. }))
            .map(|(i, _)| i.pc)
            .unwrap();
        let load_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, InstKind::Load { .. }))
            .map(|(i, _)| i.pc)
            .unwrap();
        assert_eq!(effective_failing_access(&m, assert_pc), load_pc);
        // A load is its own effective access.
        assert_eq!(effective_failing_access(&m, load_pc), load_pc);
    }

    /// Deadlock mode selects lock operations.
    #[test]
    fn deadlock_mode_selects_lock_ops() {
        let mut mb = ModuleBuilder::new("m");
        let ma = mb.global("ma", Type::Mutex, vec![]);
        let g = mb.global("g", Type::I64, vec![0]);
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        f.lock(ma.clone());
        f.store(g.clone(), Operand::const_int(1), Type::I64);
        f.unlock(ma.clone());
        f.lock(ma.clone());
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let pts = PointsTo::analyze(&m);
        let executed: HashSet<Pc> = m.all_insts().map(|(i, _)| i.pc).collect();
        let fail_pc = m
            .all_insts()
            .filter(|(i, _)| i.kind.is_lock_acquire())
            .map(|(i, _)| i.pc)
            .last()
            .unwrap();
        let cs = select_candidates(&m, &pts, &executed, fail_pc, true);
        for r in &cs.ranked {
            let k = &m.inst(r.pc).unwrap().kind;
            assert!(
                k.is_lock_acquire() || matches!(k, InstKind::MutexUnlock { .. }),
                "non-lock candidate {k:?}"
            );
        }
        assert!(cs.ranked.len() >= 3);
    }

    /// Ranking puts exact type matches first.
    #[test]
    fn ranked_order_respects_types() {
        let mut mb = ModuleBuilder::new("m");
        mb.struct_def("Q", vec![("x".into(), Type::I64)]);
        let qty = Type::Struct("Q".into());
        let gq = mb.global("q", qty.clone().ptr_to(), vec![]);
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        let obj = f.heap_alloc(qty.clone(), Operand::const_int(1));
        // Store the same pointer twice: once typed Q*, once as i64.
        f.store(gq.clone(), obj.clone(), qty.clone().ptr_to());
        f.store(gq.clone(), obj, Type::I64);
        f.load(gq.clone(), qty.ptr_to());
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let pts = PointsTo::analyze(&m);
        let executed: HashSet<Pc> = m.all_insts().map(|(i, _)| i.pc).collect();
        let load_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, InstKind::Load { .. }))
            .map(|(i, _)| i.pc)
            .unwrap();
        let cs = select_candidates(&m, &pts, &executed, load_pc, false);
        assert!(cs.rank1_count() >= 2, "Q* store and Q* load are rank 1");
        // Ranked order: all rank-1 before rank-2.
        let ranks: Vec<u32> = cs.ranked.iter().map(|r| r.rank).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(ranks, sorted);
    }
}
