//! Bug-pattern computation (step 6 of the pipeline).
//!
//! Combines the type-ranked candidate instructions with the
//! partially-ordered dynamic trace to generate the concurrency-bug
//! patterns of the paper's Figure 1:
//!
//! * **deadlocks** — lock-order cycles across threads, reconstructed
//!   from each thread's lock/unlock instruction stream and the abstract
//!   lock objects their operands may point to;
//! * **order violations** — cross-thread access pairs to the same
//!   abstract location, at least one a write, with an observed
//!   executes-before order;
//! * **single-variable atomicity violations** — local-remote-local
//!   triples (RWR, WWR, RWW, WRW) where a remote access interleaves a
//!   local pair.
//!
//! Partial flow sensitivity: order between dynamic instances comes only
//! from the coarse trace timing ([`DynInstance::definitely_before`]);
//! when the windows of the target events overlap, no order is claimed —
//! the pattern degrades to [`BugPattern::UnorderedTargets`] (§7's
//! honest fallback) instead of guessing.

use crate::candidates::CandidateSet;
use crate::processing::{DynInstance, ProcessedTrace};
use lazy_analysis::loc::sets_intersect;
use lazy_analysis::{PointsTo, PtsSet};
use lazy_ir::{InstKind, Module, Pc};
use std::collections::HashMap;

/// The access kind of a pattern event, as rendered in reports
/// (`R`/`W`/`L` for lock).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// A read (load, or read-like use such as a lock of an object).
    Read,
    /// A write (store or free).
    Write,
    /// A lock acquisition.
    Lock,
}

impl AccessKind {
    fn letter(self) -> char {
        match self {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
            AccessKind::Lock => 'L',
        }
    }
}

/// Classifies an instruction as a pattern event kind.
pub fn access_kind(kind: &InstKind) -> Option<AccessKind> {
    match kind {
        InstKind::Load { .. } => Some(AccessKind::Read),
        InstKind::Store { .. } | InstKind::Free { .. } => Some(AccessKind::Write),
        InstKind::MutexLock { .. }
        | InstKind::MutexTryLock { .. }
        | InstKind::RwLockRead { .. }
        | InstKind::RwLockWrite { .. } => Some(AccessKind::Lock),
        // A lock release or condvar use reads the object.
        InstKind::MutexUnlock { .. }
        | InstKind::RwUnlock { .. }
        | InstKind::CondWait { .. }
        | InstKind::CondSignal { .. }
        | InstKind::CondBroadcast { .. } => Some(AccessKind::Read),
        _ => None,
    }
}

/// One static event of a pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternEvent {
    /// The instruction.
    pub pc: Pc,
    /// Its access kind.
    pub kind: AccessKind,
}

/// The atomicity-violation shapes of Figure 1(c).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AtomKind {
    /// Read, remote write, read.
    Rwr,
    /// Write, remote write, read.
    Wwr,
    /// Read, remote write, write.
    Rww,
    /// Write, remote read, write.
    Wrw,
}

impl AtomKind {
    /// Derives the shape from the three access kinds (local, remote,
    /// local); `None` if the combination is not one of the four
    /// single-variable shapes.
    pub fn from_kinds(a: AccessKind, b: AccessKind, c: AccessKind) -> Option<AtomKind> {
        use AccessKind::{Read, Write};
        match (a, b, c) {
            (Read, Write, Read) => Some(AtomKind::Rwr),
            (Write, Write, Read) => Some(AtomKind::Wwr),
            (Read, Write, Write) => Some(AtomKind::Rww),
            (Write, Read, Write) => Some(AtomKind::Wrw),
            _ => None,
        }
    }

    /// The shape's conventional name.
    pub fn name(self) -> &'static str {
        match self {
            AtomKind::Rwr => "RWR",
            AtomKind::Wwr => "WWR",
            AtomKind::Rww => "RWW",
            AtomKind::Wrw => "WRW",
        }
    }
}

/// One held-lock → wanted-lock edge of a deadlock pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeadlockEdge {
    /// PC of the acquisition of the held lock.
    pub hold_pc: Pc,
    /// PC of the blocking acquisition attempt.
    pub want_pc: Pc,
}

/// A candidate root-cause pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugPattern {
    /// Cross-thread ordered access pair (Figure 1b).
    OrderViolation {
        /// The earlier access.
        first: PatternEvent,
        /// The later access (in crashes, usually the failing one).
        second: PatternEvent,
    },
    /// Local-remote-local interleaving (Figure 1c).
    AtomicityViolation {
        /// The shape (RWR/WWR/RWW/WRW).
        kind: AtomKind,
        /// First local access.
        first: PatternEvent,
        /// The interleaved remote access.
        second: PatternEvent,
        /// Second local access (the failing one in crashes).
        third: PatternEvent,
    },
    /// A lock-order cycle (Figure 1a); one edge per participating
    /// thread, sorted for canonical identity.
    Deadlock {
        /// The cycle's hold→want edges.
        edges: Vec<DeadlockEdge>,
    },
    /// A multi-variable atomicity violation (the paper's §7 future
    /// work, implemented as an extension; see [`crate::multivar`]): a
    /// local pair of updates to *different* variables, straddled by a
    /// remote pair of accesses that observed an inconsistent snapshot.
    MultiVarAtomicity {
        /// First local update (program order).
        w_first: PatternEvent,
        /// Second local update.
        w_second: PatternEvent,
        /// First remote access.
        r_first: PatternEvent,
        /// Second remote access (in crashes, the failure feeds from
        /// these).
        r_second: PatternEvent,
    },
    /// The §7 fallback: the target events likely involved in the bug,
    /// reported *without* ordering because the coarse timing could not
    /// order them.
    UnorderedTargets {
        /// The unordered target events.
        events: Vec<PatternEvent>,
    },
}

impl BugPattern {
    /// A short human-readable signature, e.g. `W->R`, `RWR`, `deadlock/2`.
    pub fn signature(&self) -> String {
        match self {
            BugPattern::OrderViolation { first, second } => {
                format!("{}->{}", first.kind.letter(), second.kind.letter())
            }
            BugPattern::AtomicityViolation { kind, .. } => kind.name().to_string(),
            BugPattern::Deadlock { edges } => format!("deadlock/{}", edges.len()),
            BugPattern::MultiVarAtomicity {
                w_first,
                w_second,
                r_first,
                r_second,
            } => {
                format!(
                    "mv-{}{}|{}{}",
                    w_first.kind.letter(),
                    w_second.kind.letter(),
                    r_first.kind.letter(),
                    r_second.kind.letter()
                )
            }
            BugPattern::UnorderedTargets { events } => {
                format!("unordered/{}", events.len())
            }
        }
    }

    /// The PCs participating in the pattern, in pattern order.
    pub fn pcs(&self) -> Vec<Pc> {
        match self {
            BugPattern::OrderViolation { first, second } => vec![first.pc, second.pc],
            BugPattern::AtomicityViolation {
                first,
                second,
                third,
                ..
            } => {
                vec![first.pc, second.pc, third.pc]
            }
            BugPattern::Deadlock { edges } => {
                edges.iter().flat_map(|e| [e.hold_pc, e.want_pc]).collect()
            }
            BugPattern::MultiVarAtomicity {
                w_first,
                w_second,
                r_first,
                r_second,
            } => {
                vec![w_first.pc, w_second.pc, r_first.pc, r_second.pc]
            }
            BugPattern::UnorderedTargets { events } => events.iter().map(|e| e.pc).collect(),
        }
    }
}

/// Per-candidate alias information used during generation and presence
/// checking.
pub struct PatternContext<'a> {
    module: &'a Module,
    /// pts of each candidate's pointer operand.
    cand_pts: HashMap<Pc, PtsSet>,
}

impl<'a> PatternContext<'a> {
    /// Builds the context for a candidate set.
    pub fn new(module: &'a Module, pts: &PointsTo, cands: &CandidateSet) -> PatternContext<'a> {
        let mut cand_pts = HashMap::new();
        for r in &cands.ranked {
            if let Some(p) = pts.pts_of_pointer_at(module, r.pc) {
                cand_pts.insert(r.pc, p);
            }
        }
        PatternContext { module, cand_pts }
    }

    fn kind_of(&self, pc: Pc) -> Option<AccessKind> {
        self.module.inst(pc).and_then(|i| access_kind(&i.kind))
    }

    fn may_alias(&self, a: Pc, b: Pc) -> bool {
        match (self.cand_pts.get(&a), self.cand_pts.get(&b)) {
            (Some(pa), Some(pb)) => sets_intersect(pa, pb),
            _ => false,
        }
    }
}

/// Generates candidate patterns for a *crash* failure from the failing
/// trace (order violations and atomicity violations involving the
/// failing access).
pub fn crash_patterns(
    ctx: &PatternContext<'_>,
    cands: &CandidateSet,
    trace: &ProcessedTrace,
) -> Vec<BugPattern> {
    let fail_pc = cands.failing_pc;
    let Some(fail_kind) = ctx.kind_of(fail_pc) else {
        return Vec::new();
    };
    let fail_ev = PatternEvent {
        pc: fail_pc,
        kind: fail_kind,
    };
    let Some(f_inst) = trace.trigger_fallback(fail_pc) else {
        return Vec::new();
    };

    let mut out = Vec::new();
    let mut unordered: Vec<PatternEvent> = Vec::new();

    for r in &cands.ranked {
        let c = r.pc;
        if c == fail_pc {
            continue;
        }
        let Some(ckind) = ctx.kind_of(c) else {
            continue;
        };
        if !ctx.may_alias(c, fail_pc) {
            continue;
        }
        // A race needs a write somewhere in the pair (lock uses count as
        // reads of the object).
        let write_involved =
            matches!(ckind, AccessKind::Write) || matches!(fail_kind, AccessKind::Write);
        let c_ev = PatternEvent { pc: c, kind: ckind };

        // Remote instances: order-violation pairs with the failing
        // access.
        let mut any_remote = false;
        for x in trace.instances_of(c) {
            if x.tid == f_inst.tid {
                continue;
            }
            any_remote = true;
            if !write_involved {
                continue;
            }
            if x.definitely_before(&f_inst) {
                out.push(BugPattern::OrderViolation {
                    first: c_ev,
                    second: fail_ev,
                });
            } else if f_inst.definitely_before(x) {
                out.push(BugPattern::OrderViolation {
                    first: fail_ev,
                    second: c_ev,
                });
            } else {
                // Overlapping windows: the coarse interleaving
                // hypothesis failed for this pair — report without
                // order rather than mislead (§7).
                unordered.push(c_ev);
            }
        }
        // The aliasing candidate never executed remotely in the failing
        // trace at all: the failure proves the failing access ran
        // *before* it would have (a late-publish order violation, e.g.
        // Transmission #1818's use-before-assignment).
        if !any_remote && write_involved {
            out.push(BugPattern::OrderViolation {
                first: fail_ev,
                second: c_ev,
            });
        }

        // Atomicity triples with the failing access in the *middle*
        // (e.g. WRW: a remote reader faults on the intermediate state
        // between a local write pair): candidates `c` then `y` in one
        // remote thread bracketing the failing access.
        for y_ranked in &cands.ranked {
            let y_pc = y_ranked.pc;
            let Some(ykind) = ctx.kind_of(y_pc) else {
                continue;
            };
            if !ctx.may_alias(y_pc, fail_pc) {
                continue;
            }
            let Some(shape) = AtomKind::from_kinds(ckind, fail_kind, ykind) else {
                continue;
            };
            let y_ev = PatternEvent {
                pc: y_pc,
                kind: ykind,
            };
            for x in trace.instances_of(c) {
                if x.tid == f_inst.tid {
                    continue;
                }
                for y in trace.instances_of(y_pc) {
                    if y.tid != x.tid || y.seq <= x.seq {
                        continue;
                    }
                    if x.definitely_before(&f_inst) && f_inst.definitely_before(y) {
                        out.push(BugPattern::AtomicityViolation {
                            kind: shape,
                            first: c_ev,
                            second: fail_ev,
                            third: y_ev,
                        });
                    }
                }
            }
        }

        // Atomicity triples: a local access `a` before the failure, a
        // remote access `x` in between.
        for a_pc_ranked in &cands.ranked {
            let a_pc = a_pc_ranked.pc;
            let Some(akind) = ctx.kind_of(a_pc) else {
                continue;
            };
            if !ctx.may_alias(a_pc, fail_pc) {
                continue;
            }
            let Some(shape) = AtomKind::from_kinds(akind, ckind, fail_kind) else {
                continue;
            };
            let a_ev = PatternEvent {
                pc: a_pc,
                kind: akind,
            };
            for a in trace.instances_of(a_pc) {
                if a.tid != f_inst.tid || a.seq >= f_inst.seq {
                    continue;
                }
                for x in trace.instances_of(c) {
                    if x.tid == f_inst.tid {
                        continue;
                    }
                    if a.definitely_before(x) && x.definitely_before(&f_inst) {
                        out.push(BugPattern::AtomicityViolation {
                            kind: shape,
                            first: a_ev,
                            second: c_ev,
                            third: fail_ev,
                        });
                    }
                }
            }
        }
    }

    out.sort();
    out.dedup();
    if out.is_empty() && !unordered.is_empty() {
        unordered.push(fail_ev);
        unordered.sort();
        unordered.dedup();
        out.push(BugPattern::UnorderedTargets { events: unordered });
    }
    out
}

/// Generates candidate deadlock patterns: per-thread hold→want lock
/// edges whose hold windows overlap across threads and whose abstract
/// lock objects form a cycle.
pub fn deadlock_patterns(
    ctx: &PatternContext<'_>,
    cands: &CandidateSet,
    trace: &ProcessedTrace,
) -> Vec<BugPattern> {
    // Reconstruct, per thread, the lock events in order.
    #[derive(Clone)]
    struct LockEv {
        pc: Pc,
        inst: DynInstance,
        acquire: bool,
        pts: PtsSet,
    }
    let mut per_thread: HashMap<u32, Vec<LockEv>> = HashMap::new();
    for r in &cands.ranked {
        let Some(inst) = ctx.module.inst(r.pc) else {
            continue;
        };
        let acquire = inst.kind.is_lock_acquire();
        let release = inst.kind.is_lock_release();
        if !acquire && !release {
            continue;
        }
        let pts = ctx.cand_pts.get(&r.pc).cloned().unwrap_or_default();
        for i in trace.instances_of(r.pc) {
            per_thread.entry(i.tid).or_default().push(LockEv {
                pc: r.pc,
                inst: *i,
                acquire,
                pts: pts.clone(),
            });
        }
    }
    // Per thread: scan in program order, tracking held locks; each
    // acquire while holding yields a hold→want edge. The edge's *want
    // window* — when the thread was waiting at the acquisition — runs
    // from the attempt to the thread's next event (a thread that never
    // ran again was blocked there until the snapshot). Coexisting want
    // windows across the cycle are what distinguish an actual deadlock
    // from the same lock-order edges executing at different times.
    struct Edge {
        hold_pc: Pc,
        want_pc: Pc,
        hold_pts: PtsSet,
        want_pts: PtsSet,
        want_lo: u64,
        want_hi: u64,
        tid: u32,
    }
    let mut edges: Vec<Edge> = Vec::new();
    for (tid, mut evs) in per_thread {
        evs.sort_by_key(|e| e.inst.seq);
        let mut held: Vec<LockEv> = Vec::new();
        for e in evs {
            if e.acquire {
                for h in &held {
                    edges.push(Edge {
                        hold_pc: h.pc,
                        want_pc: e.pc,
                        hold_pts: h.pts.clone(),
                        want_pts: e.pts.clone(),
                        want_lo: e.inst.time.lo,
                        want_hi: trace.resume_bound(tid, e.inst.seq),
                        tid,
                    });
                }
                held.push(e);
            } else {
                // Release: drop the most recent held lock aliasing it.
                if let Some(i) = held.iter().rposition(|h| sets_intersect(&h.pts, &e.pts)) {
                    held.remove(i);
                }
            }
        }
    }
    // Find lock-order cycles whose want windows pairwise coexist. The
    // paper's examples are two-thread cycles but the technique "is not
    // limited to deadlocks with two threads" (§3.1): length-2 and
    // length-3 cycles are generated here.
    let overlap = |a: &Edge, b: &Edge| a.want_lo <= b.want_hi && b.want_lo <= a.want_hi;
    let feeds = |a: &Edge, b: &Edge| sets_intersect(&a.want_pts, &b.hold_pts);
    let sane = |a: &Edge| !sets_intersect(&a.hold_pts, &a.want_pts);
    let mut out = Vec::new();
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            let (a, b) = (&edges[i], &edges[j]);
            if a.tid == b.tid || !sane(a) || !sane(b) {
                continue;
            }
            // Two-thread cycle: A→B with B→A.
            if feeds(a, b) && feeds(b, a) && overlap(a, b) {
                let mut es = vec![
                    DeadlockEdge {
                        hold_pc: a.hold_pc,
                        want_pc: a.want_pc,
                    },
                    DeadlockEdge {
                        hold_pc: b.hold_pc,
                        want_pc: b.want_pc,
                    },
                ];
                es.sort();
                out.push(BugPattern::Deadlock { edges: es });
            }
            // Three-thread cycles through a third edge.
            for c in edges.iter().skip(j + 1) {
                if c.tid == a.tid || c.tid == b.tid || !sane(c) {
                    continue;
                }
                if !(overlap(a, b) && overlap(b, c) && overlap(a, c)) {
                    continue;
                }
                // Either rotation of the cycle.
                let cycle = (feeds(a, b) && feeds(b, c) && feeds(c, a))
                    || (feeds(a, c) && feeds(c, b) && feeds(b, a));
                if cycle {
                    let mut es = vec![
                        DeadlockEdge {
                            hold_pc: a.hold_pc,
                            want_pc: a.want_pc,
                        },
                        DeadlockEdge {
                            hold_pc: b.hold_pc,
                            want_pc: b.want_pc,
                        },
                        DeadlockEdge {
                            hold_pc: c.hold_pc,
                            want_pc: c.want_pc,
                        },
                    ];
                    es.sort();
                    out.push(BugPattern::Deadlock { edges: es });
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Checks whether `pattern` is present (with the same ordering) in a
/// processed trace — the predicate statistical diagnosis evaluates on
/// failing and successful traces alike.
pub fn pattern_present(pattern: &BugPattern, trace: &ProcessedTrace) -> bool {
    match pattern {
        BugPattern::OrderViolation { first, second } => {
            let firsts = trace.instances_of(first.pc);
            let seconds = trace.instances_of(second.pc);
            // Standard case: an ordered cross-thread pair.
            if firsts.iter().any(|a| {
                seconds
                    .iter()
                    .any(|b| a.tid != b.tid && a.definitely_before(b))
            }) {
                return true;
            }
            // Truncated case: the first access ran but the second never
            // did before the snapshot — the first-before-second order is
            // witnessed by the second's absence (crash cut the run
            // short, or the late event simply had not happened yet).
            !firsts.is_empty() && seconds.is_empty()
        }
        BugPattern::AtomicityViolation {
            first,
            second,
            third,
            ..
        } => {
            for a in trace.instances_of(first.pc) {
                for f in trace.instances_of(third.pc) {
                    if a.tid != f.tid || a.seq >= f.seq {
                        continue;
                    }
                    for x in trace.instances_of(second.pc) {
                        if x.tid != a.tid && a.definitely_before(x) && x.definitely_before(f) {
                            return true;
                        }
                    }
                }
            }
            false
        }
        BugPattern::Deadlock { edges } => {
            // Each edge must occur in some thread (hold then want), all
            // in distinct threads, with pairwise coexisting *want*
            // windows (attempt → thread's next event or snapshot).
            let mut windows: Vec<(u32, u64, u64)> = Vec::new();
            for e in edges {
                let mut found = None;
                for h in trace.instances_of(e.hold_pc) {
                    for w in trace.instances_of(e.want_pc) {
                        if h.tid == w.tid && h.seq < w.seq {
                            found = Some((w.tid, w.time.lo, trace.resume_bound(w.tid, w.seq)));
                        }
                    }
                }
                match found {
                    Some(w) => windows.push(w),
                    None => return false,
                }
            }
            for i in 0..windows.len() {
                for j in (i + 1)..windows.len() {
                    let (ti, li, hi_) = windows[i];
                    let (tj, lj, hj) = windows[j];
                    if ti == tj || li > hj || lj > hi_ {
                        return false;
                    }
                }
            }
            true
        }
        BugPattern::MultiVarAtomicity {
            w_first,
            w_second,
            r_first,
            r_second,
        } => {
            for wa in trace.instances_of(w_first.pc) {
                for wb in trace.instances_of(w_second.pc) {
                    if wa.tid != wb.tid || wa.seq >= wb.seq {
                        continue;
                    }
                    for ra in trace.instances_of(r_first.pc) {
                        for rb in trace.instances_of(r_second.pc) {
                            if ra.tid != rb.tid || ra.seq >= rb.seq || ra.tid == wa.tid {
                                continue;
                            }
                            // The remote pair sees a torn snapshot when
                            // it lands strictly between the two local
                            // updates in either direction.
                            let torn_new_old = wa.definitely_before(ra) && rb.definitely_before(wb);
                            let torn_old_new = ra.definitely_before(wa) && wb.definitely_before(rb);
                            if torn_new_old || torn_old_new {
                                return true;
                            }
                        }
                    }
                }
            }
            false
        }
        BugPattern::UnorderedTargets { events } => {
            events.iter().all(|e| !trace.instances_of(e.pc).is_empty())
        }
    }
}

impl ProcessedTrace {
    /// The failure-adjacent instance of the failing access: the trigger
    /// instance when the failing PC is the trigger, otherwise the last
    /// instance of `pc` in the trigger thread (asserts map to their
    /// feeding load, which is not the trigger PC).
    pub(crate) fn trigger_fallback(&self, pc: Pc) -> Option<DynInstance> {
        if pc == self.trigger_pc {
            self.trigger_instance()
        } else {
            self.last_instance_in_thread(pc, self.trigger_tid)
                .or_else(|| self.instances_of(pc).last().copied())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazy_trace::TimeBounds;

    fn ev(pc: u64, kind: AccessKind) -> PatternEvent {
        PatternEvent { pc: Pc(pc), kind }
    }

    fn inst(tid: u32, seq: usize, lo: u64, hi: u64) -> DynInstance {
        DynInstance {
            tid,
            seq,
            time: TimeBounds { lo, hi },
        }
    }

    fn trace_with(instances: Vec<(u64, Vec<DynInstance>)>) -> ProcessedTrace {
        let mut map = HashMap::new();
        let mut executed = std::collections::HashSet::new();
        let mut event_time = HashMap::new();
        for (pc, is) in instances {
            executed.insert(Pc(pc));
            for i in &is {
                event_time.insert((i.tid, i.seq), i.time);
            }
            map.insert(Pc(pc), is);
        }
        ProcessedTrace {
            executed,
            instances: map,
            event_time,
            trigger_tid: 0,
            trigger_pc: Pc(0),
            taken_at: 1_000_000,
            event_count: 0,
            resyncs: 0,
            cyc_dropped: 0,
            mtc_dups: 0,
        }
    }

    #[test]
    fn atom_kind_shapes() {
        use AccessKind::{Lock, Read, Write};
        assert_eq!(AtomKind::from_kinds(Read, Write, Read), Some(AtomKind::Rwr));
        assert_eq!(
            AtomKind::from_kinds(Write, Write, Read),
            Some(AtomKind::Wwr)
        );
        assert_eq!(
            AtomKind::from_kinds(Read, Write, Write),
            Some(AtomKind::Rww)
        );
        assert_eq!(
            AtomKind::from_kinds(Write, Read, Write),
            Some(AtomKind::Wrw)
        );
        assert_eq!(AtomKind::from_kinds(Read, Read, Read), None);
        assert_eq!(AtomKind::from_kinds(Lock, Write, Read), None);
    }

    #[test]
    fn order_violation_presence_requires_cross_thread_order() {
        let p = BugPattern::OrderViolation {
            first: ev(100, AccessKind::Write),
            second: ev(200, AccessKind::Read),
        };
        // Ordered across threads: present.
        let t = trace_with(vec![
            (100, vec![inst(1, 0, 0, 10)]),
            (200, vec![inst(2, 0, 50, 60)]),
        ]);
        assert!(pattern_present(&p, &t));
        // Reversed: absent.
        let t = trace_with(vec![
            (100, vec![inst(1, 0, 50, 60)]),
            (200, vec![inst(2, 0, 0, 10)]),
        ]);
        assert!(!pattern_present(&p, &t));
        // Same thread: absent (order violations are cross-thread).
        let t = trace_with(vec![
            (100, vec![inst(1, 0, 0, 10)]),
            (200, vec![inst(1, 1, 50, 60)]),
        ]);
        assert!(!pattern_present(&p, &t));
        // Overlapping windows: absent (no order claimable).
        let t = trace_with(vec![
            (100, vec![inst(1, 0, 0, 100)]),
            (200, vec![inst(2, 0, 50, 160)]),
        ]);
        assert!(!pattern_present(&p, &t));
    }

    #[test]
    fn atomicity_presence_needs_remote_between_local_pair() {
        let p = BugPattern::AtomicityViolation {
            kind: AtomKind::Rwr,
            first: ev(10, AccessKind::Read),
            second: ev(20, AccessKind::Write),
            third: ev(30, AccessKind::Read),
        };
        // Interleaved: present.
        let t = trace_with(vec![
            (10, vec![inst(1, 0, 0, 10)]),
            (20, vec![inst(2, 0, 100, 110)]),
            (30, vec![inst(1, 1, 200, 210)]),
        ]);
        assert!(pattern_present(&p, &t));
        // Remote after both locals: absent.
        let t = trace_with(vec![
            (10, vec![inst(1, 0, 0, 10)]),
            (20, vec![inst(2, 0, 400, 410)]),
            (30, vec![inst(1, 1, 200, 210)]),
        ]);
        assert!(!pattern_present(&p, &t));
        // Remote before both locals: absent.
        let t = trace_with(vec![
            (10, vec![inst(1, 1, 100, 110)]),
            (20, vec![inst(2, 0, 0, 10)]),
            (30, vec![inst(1, 2, 200, 210)]),
        ]);
        assert!(!pattern_present(&p, &t));
    }

    #[test]
    fn deadlock_presence_requires_overlapping_hold_windows() {
        let p = BugPattern::Deadlock {
            edges: vec![
                DeadlockEdge {
                    hold_pc: Pc(1),
                    want_pc: Pc(2),
                },
                DeadlockEdge {
                    hold_pc: Pc(3),
                    want_pc: Pc(4),
                },
            ],
        };
        // Overlapping windows in two threads: present.
        let t = trace_with(vec![
            (1, vec![inst(1, 0, 0, 10)]),
            (2, vec![inst(1, 1, 100, 110)]),
            (3, vec![inst(2, 0, 20, 30)]),
            (4, vec![inst(2, 1, 120, 130)]),
        ]);
        assert!(pattern_present(&p, &t));
        // Disjoint want windows (each thread resumed right after its
        // second acquisition — no one was blocked): absent. The dummy
        // PCs 98/99 mark the resumptions.
        let t = trace_with(vec![
            (1, vec![inst(1, 0, 0, 10)]),
            (2, vec![inst(1, 1, 20, 30)]),
            (99, vec![inst(1, 2, 35, 40)]),
            (3, vec![inst(2, 0, 500, 510)]),
            (4, vec![inst(2, 1, 520, 530)]),
            (98, vec![inst(2, 2, 535, 540)]),
        ]);
        assert!(!pattern_present(&p, &t));
        // Missing an edge: absent.
        let t = trace_with(vec![
            (1, vec![inst(1, 0, 0, 10)]),
            (2, vec![inst(1, 1, 100, 110)]),
        ]);
        assert!(!pattern_present(&p, &t));
    }

    #[test]
    fn signatures_render() {
        let ov = BugPattern::OrderViolation {
            first: ev(1, AccessKind::Write),
            second: ev(2, AccessKind::Read),
        };
        assert_eq!(ov.signature(), "W->R");
        let av = BugPattern::AtomicityViolation {
            kind: AtomKind::Wwr,
            first: ev(1, AccessKind::Write),
            second: ev(2, AccessKind::Write),
            third: ev(3, AccessKind::Read),
        };
        assert_eq!(av.signature(), "WWR");
        let dl = BugPattern::Deadlock {
            edges: vec![
                DeadlockEdge {
                    hold_pc: Pc(1),
                    want_pc: Pc(2),
                },
                DeadlockEdge {
                    hold_pc: Pc(3),
                    want_pc: Pc(4),
                },
            ],
        };
        assert_eq!(dl.signature(), "deadlock/2");
        assert_eq!(dl.pcs().len(), 4);
    }
}
