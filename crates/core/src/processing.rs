//! Trace processing (steps 2 and 3 of the pipeline).
//!
//! Turns a raw multi-thread [`TraceSnapshot`] into the two artifacts the
//! rest of the pipeline consumes:
//!
//! * the **executed-instruction set** — each instruction counted once no
//!   matter how often it ran (step 2); this is what scope-restricts the
//!   hybrid points-to analysis;
//! * the **partially-ordered dynamic instruction trace** — per-thread
//!   instruction instances, each with a coarse [`TimeBounds`] window;
//!   instances in different threads are ordered only when their windows
//!   do not overlap (step 3). Per the coarse interleaving hypothesis,
//!   that partial order suffices for the target events of real bugs.

use crate::error::DiagnosisError;
use lazy_ir::{Module, Pc};
use lazy_trace::{
    decode_thread_trace_adaptive, recycle_events, DecodeError, DecodedTrace, ExecIndex,
    SnapshotView, TimeBounds, TraceConfig, TraceSnapshot, WalkTable,
};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// One dynamic instance of an instruction in a processed trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynInstance {
    /// The executing thread.
    pub tid: u32,
    /// Index of the event within its thread's trace (program order).
    pub seq: usize,
    /// The coarse execution-time window.
    pub time: TimeBounds,
}

impl DynInstance {
    /// Cross-thread "executes before": windows strictly ordered
    /// (Figure 5's relation). Same-thread instances use `seq` instead.
    pub fn definitely_before(&self, other: &DynInstance) -> bool {
        if self.tid == other.tid {
            self.seq < other.seq
        } else {
            self.time.definitely_before(&other.time)
        }
    }
}

/// A fully processed snapshot.
#[derive(Clone, Debug)]
pub struct ProcessedTrace {
    /// Executed-instruction set (step 2).
    pub executed: HashSet<Pc>,
    /// Dynamic instances per instruction (step 3), capped per thread to
    /// the most recent [`ProcessedTrace::MAX_INSTANCES_PER_PC`].
    pub instances: HashMap<Pc, Vec<DynInstance>>,
    /// Time window of every decoded event by `(thread, seq)` — used to
    /// bound how long a thread *stayed* at an instruction (e.g. blocked
    /// in a lock acquisition) by when its next instruction ran.
    pub event_time: HashMap<(u32, usize), TimeBounds>,
    /// The thread that triggered the snapshot.
    pub trigger_tid: u32,
    /// The PC that triggered the snapshot (failure PC or breakpoint).
    pub trigger_pc: Pc,
    /// Virtual time the snapshot was taken.
    pub taken_at: u64,
    /// Total decoded events across threads.
    pub event_count: usize,
    /// Per-thread decode resynchronization counts (diagnostic).
    pub resyncs: u32,
    /// `CYC` deltas dropped for want of a time anchor, summed across
    /// threads (diagnostic: time silently lost at wrapped-buffer heads).
    pub cyc_dropped: u64,
    /// Duplicated `MTC` coarse-counter bytes ignored during decode,
    /// summed across threads (diagnostic: repeated packets after
    /// corruption or a PSB splice).
    pub mtc_dups: u64,
}

impl ProcessedTrace {
    /// Cap on retained dynamic instances per (pc, thread): diagnosis
    /// needs the instances *near the failure*, and the ring buffer
    /// already bounds history; this bounds pattern enumeration.
    pub const MAX_INSTANCES_PER_PC: usize = 64;

    /// The dynamic instances of `pc` (empty if never decoded).
    pub fn instances_of(&self, pc: Pc) -> &[DynInstance] {
        self.instances.get(&pc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The last instance of `pc` executed by `tid`, if any.
    pub fn last_instance_in_thread(&self, pc: Pc, tid: u32) -> Option<DynInstance> {
        self.instances_of(pc)
            .iter()
            .rev()
            .find(|i| i.tid == tid)
            .copied()
    }

    /// The final (failure-adjacent) instance of the trigger PC in the
    /// trigger thread.
    pub fn trigger_instance(&self) -> Option<DynInstance> {
        self.last_instance_in_thread(self.trigger_pc, self.trigger_tid)
    }

    /// Returns `true` if `pc` executed in a thread other than `tid`.
    pub fn executed_remotely(&self, pc: Pc, tid: u32) -> bool {
        self.instances_of(pc).iter().any(|i| i.tid != tid)
    }

    /// Upper bound on when the thread left the instruction at `seq`:
    /// the window end of its next event, or the snapshot time if the
    /// thread never executed anything afterwards (it was blocked there
    /// when the snapshot was taken — the signature of a deadlocked
    /// waiter).
    pub fn resume_bound(&self, tid: u32, seq: usize) -> u64 {
        self.event_time
            .get(&(tid, seq + 1))
            .map(|t| t.hi)
            .unwrap_or(self.taken_at)
    }
}

/// Decodes and processes a snapshot against the module (steps 2–3).
///
/// Threads whose buffers cannot be decoded at all (e.g. an empty buffer
/// from a thread that never branched) are skipped rather than failing
/// the whole snapshot; a snapshot with *no* decodable thread is an
/// error.
///
/// # Errors
///
/// Returns [`DiagnosisError::Processing`] (wrapping the last per-thread
/// [`DecodeError`]) if no thread decodes, or
/// [`DiagnosisError::WorkerPanic`] if a decode worker panicked.
pub fn process_snapshot(
    module: &Module,
    index: &ExecIndex,
    config: &TraceConfig,
    snapshot: &TraceSnapshot,
) -> Result<ProcessedTrace, DiagnosisError> {
    process_snapshot_par(module, index, None, config, snapshot, 1)
}

/// [`process_snapshot`] with up to `workers` decode threads and an
/// optional compiled [`WalkTable`] (the server threads its cross-job
/// cache through here).
///
/// Thread streams decode concurrently; each stream is then routed by
/// [`decode_thread_trace_adaptive`] — large streams additionally use
/// PSB-sharded decode internally, small ones take the fused pass with
/// zero sharding overhead. Aggregation runs sequentially in thread
/// order over the (bit-identical) per-thread decodes, so the result is
/// byte-for-byte the same as `workers == 1`.
///
/// # Errors
///
/// Same contract as [`process_snapshot`].
pub fn process_snapshot_par(
    module: &Module,
    index: &ExecIndex,
    table: Option<&WalkTable>,
    config: &TraceConfig,
    snapshot: &TraceSnapshot,
    workers: usize,
) -> Result<ProcessedTrace, DiagnosisError> {
    process_snapshot_view(module, index, table, config, &snapshot.view(), workers)
}

/// [`process_snapshot_par`] over a borrowed [`SnapshotView`] — the
/// zero-copy ingest path. Thread trace bytes are decoded straight out
/// of whatever buffer the view borrows from (a connection's read
/// buffer, a wire payload); nothing is copied on the way in.
///
/// # Errors
///
/// Same contract as [`process_snapshot`].
pub fn process_snapshot_view(
    _module: &Module,
    index: &ExecIndex,
    table: Option<&WalkTable>,
    config: &TraceConfig,
    snapshot: &SnapshotView<'_>,
    workers: usize,
) -> Result<ProcessedTrace, DiagnosisError> {
    let _span = lazy_obs::span!("decode.snapshot");
    lazy_obs::counter!("decode.threads_total", snapshot.threads.len());
    // Every per-thread decode runs inside catch_unwind so a decoder
    // panic surfaces as a typed WorkerPanic instead of unwinding
    // through the scope (which would abort the whole diagnosis, or in
    // batch mode the whole batch).
    let decode = |bytes: &[u8]| -> Result<DecodedTrace, DiagnosisError> {
        match catch_unwind(AssertUnwindSafe(|| {
            decode_thread_trace_adaptive(index, table, config, bytes, snapshot.taken_at, workers)
        })) {
            Ok(r) => r.map_err(DiagnosisError::from),
            Err(payload) => Err(DiagnosisError::from_panic("decode", payload)),
        }
    };
    let decoded: Vec<Result<DecodedTrace, DiagnosisError>> =
        if workers > 1 && snapshot.threads.len() > 1 {
            let slots: Vec<Mutex<Option<Result<DecodedTrace, DiagnosisError>>>> =
                snapshot.threads.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers.min(snapshot.threads.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(thread) = snapshot.threads.get(i) else {
                            break;
                        };
                        // A poisoned slot means another worker panicked
                        // while holding it; the Option inside is still
                        // well-formed, so recover the guard.
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(decode(thread.bytes));
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .unwrap_or_else(|| Err(DiagnosisError::worker_lost("decode")))
                })
                .collect()
        } else {
            snapshot.threads.iter().map(|t| decode(t.bytes)).collect()
        };

    let mut executed = HashSet::new();
    let mut instances: HashMap<Pc, Vec<DynInstance>> = HashMap::new();
    let mut event_time: HashMap<(u32, usize), TimeBounds> = HashMap::new();
    let mut event_count = 0usize;
    let mut resyncs = 0u32;
    let mut cyc_dropped = 0u64;
    let mut mtc_dups = 0u64;
    let mut decoded_any = false;
    let mut last_err = DecodeError::NoSync;

    for (thread, result) in snapshot.threads.iter().zip(decoded) {
        let trace: DecodedTrace = match result {
            Ok(t) => t,
            // A plain decode failure degrades: skip this thread, keep
            // the rest. Anything else (a worker panic) fails the
            // snapshot — losing a worker is an internal fault, not a
            // property of one thread's bytes.
            Err(DiagnosisError::Decode(e)) => {
                lazy_obs::counter!("decode.threads_skipped_total", 1u64);
                last_err = e;
                continue;
            }
            Err(e) => return Err(e),
        };
        decoded_any = true;
        resyncs += trace.resyncs;
        cyc_dropped += trace.cyc_dropped;
        mtc_dups += trace.mtc_dups;
        event_count += trace.events.len();
        // Count per (pc, tid) so the cap keeps the most recent.
        let mut per_pc_counts: HashMap<Pc, usize> = HashMap::new();
        for e in &trace.events {
            executed.insert(e.pc);
            *per_pc_counts.entry(e.pc).or_default() += 1;
        }
        let mut seen: HashMap<Pc, usize> = HashMap::new();
        for (seq, e) in trace.events.iter().enumerate() {
            event_time.insert((thread.tid, seq), e.time);
            let total = per_pc_counts[&e.pc];
            let n = seen.entry(e.pc).or_default();
            *n += 1;
            // Keep only the last MAX_INSTANCES_PER_PC instances.
            if total - *n < ProcessedTrace::MAX_INSTANCES_PER_PC {
                instances.entry(e.pc).or_default().push(DynInstance {
                    tid: thread.tid,
                    seq,
                    time: e.time,
                });
            }
        }
        // This thread's events are fully aggregated; hand the buffer
        // back so the next decode reuses its warm pages.
        recycle_events(trace);
    }
    if !decoded_any {
        lazy_obs::counter!("decode.snapshots_rejected_total", 1u64);
        return Err(DiagnosisError::Processing {
            threads: snapshot.threads.len(),
            source: last_err,
        });
    }
    // Counted here — once per *distinct* processed snapshot — so batch
    // memo hits do not inflate the totals (telemetry reconciles with the
    // per-snapshot `event_count` sums exactly when dedup hits are zero).
    lazy_obs::counter!("decode.snapshots_total", 1u64);
    lazy_obs::counter!("decode.events_total", event_count);
    lazy_obs::counter!("decode.resyncs_total", resyncs);
    lazy_obs::histogram!("decode.snapshot_events", event_count);
    Ok(ProcessedTrace {
        executed,
        instances,
        event_time,
        trigger_tid: snapshot.trigger_tid,
        trigger_pc: Pc(snapshot.trigger_pc),
        taken_at: snapshot.taken_at,
        event_count,
        resyncs,
        cyc_dropped,
        mtc_dups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazy_ir::{InstKind, ModuleBuilder, Operand, Type};
    use lazy_vm::{Vm, VmConfig};

    fn traced_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let nop = mb.declare("nop", vec![], Type::I64);
        {
            let mut f = mb.define(nop);
            let e = f.entry();
            f.switch_to(e);
            f.ret(Some(Operand::const_int(0)));
            f.finish();
        }
        let worker = mb.declare("worker", vec![Type::I64], Type::Void);
        let g = mb.global("shared", Type::I64, vec![0]);
        {
            let mut f = mb.define(worker);
            let e = f.entry();
            f.switch_to(e);
            f.io("setup", 50_000);
            f.store(g.clone(), Operand::const_int(7), Type::I64);
            f.ret(None);
            f.finish();
        }
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        f.switch_to(e);
        let t = f.spawn(worker, Operand::const_int(0));
        f.io("main-work", 150_000);
        // A call between the I/O and the load gives the decoder a
        // control packet (the callee's return) that time-bounds the
        // following straight-line stretch — as the branch-dense code of
        // real systems does naturally.
        f.call(nop, vec![]);
        f.load(g, Type::I64);
        f.join(t);
        f.halt();
        f.finish();
        mb.finish().unwrap()
    }

    fn run_to_breakpoint(m: &Module, bp: Pc) -> TraceSnapshot {
        let out = Vm::run(
            m,
            VmConfig {
                breakpoints: vec![bp],
                ..VmConfig::default()
            },
        );
        out.snapshot.expect("breakpoint snapshot")
    }

    #[test]
    fn executed_set_counts_each_pc_once() {
        let m = traced_module();
        let halt_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, InstKind::Halt))
            .map(|(i, _)| i.pc)
            .unwrap();
        let snap = run_to_breakpoint(&m, halt_pc);
        let index = ExecIndex::build(&m);
        let p = process_snapshot(&m, &index, &TraceConfig::default(), &snap).unwrap();
        assert!(p.executed.len() <= m.inst_count());
        assert!(p.executed.contains(&halt_pc));
        // The store in worker and the load in main both executed.
        for (i, _) in m.all_insts() {
            if i.kind.is_memory_access() {
                assert!(p.executed.contains(&i.pc), "{} missing", i.pc);
            }
        }
    }

    #[test]
    fn cross_thread_events_are_ordered_by_coarse_time() {
        let m = traced_module();
        let halt_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, InstKind::Halt))
            .map(|(i, _)| i.pc)
            .unwrap();
        let snap = run_to_breakpoint(&m, halt_pc);
        let index = ExecIndex::build(&m);
        let p = process_snapshot(&m, &index, &TraceConfig::default(), &snap).unwrap();
        let store_pc = m
            .all_insts()
            .find(|(i, _)| i.kind.is_write())
            .map(|(i, _)| i.pc)
            .unwrap();
        let load_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, InstKind::Load { .. }))
            .map(|(i, _)| i.pc)
            .unwrap();
        let store = p.instances_of(store_pc);
        let load = p.instances_of(load_pc);
        assert_eq!(store.len(), 1);
        assert_eq!(load.len(), 1);
        assert_ne!(store[0].tid, load[0].tid);
        // Worker stores at ~50 µs; main loads at ~150 µs: the coarse
        // windows must order them (this is the hypothesis in action).
        assert!(store[0].definitely_before(&load[0]));
        assert!(!load[0].definitely_before(&store[0]));
    }

    #[test]
    fn trigger_instance_is_found() {
        let m = traced_module();
        let load_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, InstKind::Load { .. }))
            .map(|(i, _)| i.pc)
            .unwrap();
        let snap = run_to_breakpoint(&m, load_pc);
        let index = ExecIndex::build(&m);
        let p = process_snapshot(&m, &index, &TraceConfig::default(), &snap).unwrap();
        assert_eq!(p.trigger_pc, load_pc);
        let ti = p.trigger_instance().expect("trigger decoded");
        assert_eq!(ti.tid, p.trigger_tid);
    }

    #[test]
    fn same_thread_order_uses_sequence() {
        let a = DynInstance {
            tid: 1,
            seq: 3,
            time: TimeBounds { lo: 0, hi: 100 },
        };
        let b = DynInstance {
            tid: 1,
            seq: 5,
            time: TimeBounds { lo: 0, hi: 100 },
        };
        assert!(
            a.definitely_before(&b),
            "same-thread order ignores overlapping windows"
        );
        assert!(!b.definitely_before(&a));
    }
}

#[cfg(test)]
mod cap_tests {
    use super::*;
    use lazy_ir::{ModuleBuilder, Operand, Type};
    use lazy_vm::{Vm, VmConfig};

    /// A hot instruction executed thousands of times keeps only the
    /// most recent MAX_INSTANCES_PER_PC instances (the failure-adjacent
    /// ones), while the executed set still records it once.
    #[test]
    fn per_pc_instances_are_capped_to_the_most_recent() {
        let mut mb = ModuleBuilder::new("hot");
        let mut f = mb.function("main", vec![], Type::Void);
        let e = f.entry();
        let head = f.block("head");
        let body = f.block("body");
        let done = f.block("done");
        f.switch_to(e);
        let ctr = f.alloca(Type::I64);
        f.store(ctr.clone(), Operand::const_int(0), Type::I64);
        f.br(head);
        f.switch_to(head);
        let v = f.load(ctr.clone(), Type::I64);
        let c = f.lt(v, Operand::const_int(500));
        f.cond_br(c, body, done);
        f.switch_to(body);
        let v = f.load(ctr.clone(), Type::I64);
        let v1 = f.add(v, Operand::const_int(1));
        f.store(ctr.clone(), v1, Type::I64);
        f.br(head);
        f.switch_to(done);
        f.halt();
        f.finish();
        let m = mb.finish().unwrap();
        let halt_pc = m
            .all_insts()
            .find(|(i, _)| matches!(i.kind, lazy_ir::InstKind::Halt))
            .map(|(i, _)| i.pc)
            .unwrap();
        let hot_store = m
            .all_insts()
            .filter(|(i, _)| i.kind.is_write())
            .map(|(i, _)| i.pc)
            .nth(1)
            .unwrap();
        let out = Vm::run(
            &m,
            VmConfig {
                breakpoints: vec![halt_pc],
                ..VmConfig::default()
            },
        );
        let snap = out.snapshot.unwrap();
        let index = lazy_trace::ExecIndex::build(&m);
        let pt = process_snapshot(&m, &index, &TraceConfig::default(), &snap).unwrap();
        let instances = pt.instances_of(hot_store);
        assert_eq!(instances.len(), ProcessedTrace::MAX_INSTANCES_PER_PC);
        // They are the LAST instances: strictly increasing seq, ending
        // near the trace end.
        let max_seq = pt
            .event_time
            .keys()
            .filter(|(tid, _)| *tid == 0)
            .map(|(_, s)| *s)
            .max()
            .unwrap();
        assert!(instances.last().unwrap().seq + 16 > max_seq - 8);
        assert!(pt.executed.contains(&hot_store));
    }
}
