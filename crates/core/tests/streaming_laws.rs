//! Property tests for the streaming-diagnosis building blocks.
//!
//! Three laws keep `StreamingDiagnoser` honest:
//!
//! 1. The seeded reservoir is a faithful Algorithm R — it never holds
//!    more than its capacity, is bit-deterministic at a fixed seed, and
//!    retains every arrival index with (empirically) equal probability,
//!    so bounding memory does not bias *which* successes get scored.
//! 2. Folding reports one at a time is the merge of singleton
//!    collects, and that merge equals one whole-corpus collect with
//!    bit-identical finalized floats — the algebraic fact behind the
//!    stream-equals-batch byte-identity guarantee.
//! 3. The sequential early-exit rule can never fire before
//!    `stability_window` observations, no matter how decisive the lead
//!    looks — one lucky report is never enough.

use lazy_ir::Pc;
use lazy_snorlax::patterns::{AccessKind, AtomKind, BugPattern, PatternEvent};
use lazy_snorlax::processing::{DynInstance, ProcessedTrace};
use lazy_snorlax::statistics::PatternStats;
use lazy_snorlax::{Reservoir, SequentialRule};
use lazy_trace::TimeBounds;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn event(pc: u64, write: bool) -> PatternEvent {
    PatternEvent {
        pc: Pc(pc),
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    }
}

/// Patterns over a small pc space so independently generated traces
/// actually support the same keys (see `merge_laws.rs`).
fn arb_pattern() -> impl Strategy<Value = BugPattern> {
    prop_oneof![
        (0u64..6, any::<bool>(), 0u64..6, any::<bool>()).prop_map(|(a, aw, b, bw)| {
            BugPattern::OrderViolation {
                first: event(a, aw),
                second: event(b, bw),
            }
        }),
        (0u64..6, 0u64..6, 0u64..6, 0u8..4).prop_map(|(a, b, c, k)| {
            let kind = match k {
                0 => AtomKind::Rwr,
                1 => AtomKind::Wwr,
                2 => AtomKind::Rww,
                _ => AtomKind::Wrw,
            };
            let (fw, tw) = match kind {
                AtomKind::Rwr => (false, false),
                AtomKind::Wwr => (true, false),
                AtomKind::Rww => (false, true),
                AtomKind::Wrw => (true, true),
            };
            BugPattern::AtomicityViolation {
                kind,
                first: event(a, fw),
                second: event(b, !matches!(kind, AtomKind::Wrw)),
                third: event(c, tw),
            }
        }),
    ]
}

fn trace_from(instances: Vec<(u64, u32, usize, u64, u64)>) -> ProcessedTrace {
    let mut map: HashMap<Pc, Vec<DynInstance>> = HashMap::new();
    let mut executed = HashSet::new();
    let mut event_time = HashMap::new();
    for (pc, tid, seq, lo, hi) in instances {
        let d = DynInstance {
            tid,
            seq,
            time: TimeBounds { lo, hi: lo + hi },
        };
        executed.insert(Pc(pc));
        event_time.insert((tid, seq), d.time);
        map.entry(Pc(pc)).or_default().push(d);
    }
    ProcessedTrace {
        executed,
        instances: map,
        event_time,
        trigger_tid: 0,
        trigger_pc: Pc(0),
        taken_at: u64::MAX,
        event_count: 0,
        resyncs: 0,
        cyc_dropped: 0,
        mtc_dups: 0,
    }
}

fn arb_trace() -> impl Strategy<Value = ProcessedTrace> {
    prop::collection::vec(
        (0u64..6, 0u32..3, 0usize..12, 0u64..10_000, 1u64..500),
        0..16,
    )
    .prop_map(trace_from)
}

/// Equality on finalized scores down to the float bits.
fn assert_bit_identical(a: &PatternStats, b: &PatternStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(a, b);
    let (fa, fb) = (a.finalize(), b.finalize());
    prop_assert_eq!(fa.len(), fb.len());
    for (x, y) in fa.iter().zip(&fb) {
        prop_assert_eq!(&x.pattern, &y.pattern);
        prop_assert_eq!(x.f1.to_bits(), y.f1.to_bits());
        prop_assert_eq!(x.precision.to_bits(), y.precision.to_bits());
        prop_assert_eq!(x.recall.to_bits(), y.recall.to_bits());
    }
    Ok(())
}

proptest! {
    /// Reservoir law, part 1: capacity is a hard bound, the fill
    /// prefix is retained in arrival order, and `seen` counts every
    /// offer regardless of retention.
    #[test]
    fn reservoir_respects_capacity_and_fill_order(
        capacity in 1usize..32,
        n in 0usize..128,
        seed in any::<u64>(),
    ) {
        let mut r = Reservoir::new(capacity, seed);
        for i in 0..n {
            r.offer(i);
        }
        prop_assert_eq!(r.seen(), n as u64);
        prop_assert_eq!(r.len(), n.min(capacity));
        prop_assert!(r.len() <= r.capacity());
        if n <= capacity {
            // No eviction yet: the reservoir IS the arrival order,
            // which is what keeps small streams byte-identical to
            // batch diagnosis.
            prop_assert_eq!(r.items(), &(0..n).collect::<Vec<_>>()[..]);
        }
    }

    /// Reservoir law, part 2: a fixed seed is a fixed sample — replays
    /// retain exactly the same items in the same slots.
    #[test]
    fn reservoir_is_deterministic_at_fixed_seed(
        capacity in 1usize..16,
        n in 0usize..96,
        seed in any::<u64>(),
    ) {
        let mut a = Reservoir::new(capacity, seed);
        let mut b = Reservoir::new(capacity, seed);
        for i in 0..n {
            prop_assert_eq!(a.offer(i), b.offer(i));
        }
        prop_assert_eq!(a.items(), b.items());
    }

    /// Streaming law: folding the corpus one trace at a time — each
    /// fold a singleton collect merged into the accumulator, exactly
    /// what `StreamingDiagnoser` does — equals one whole-corpus
    /// collect, bit-identically. Successes fold before, between and
    /// after failures, so the order of singleton merges is exercised
    /// too.
    #[test]
    fn fold_one_at_a_time_equals_whole_collect(
        patterns in prop::collection::vec(arb_pattern(), 0..6),
        failing in prop::collection::vec(arb_trace(), 0..4),
        successful in prop::collection::vec(arb_trace(), 0..7),
        ranks in prop::collection::vec((0u64..6, 1u32..4), 0..6),
    ) {
        let rank_of: HashMap<Pc, u32> =
            ranks.into_iter().map(|(pc, r)| (Pc(pc), r)).collect();
        let whole = PatternStats::collect(&patterns, &failing, &successful, &rank_of);

        // Interleave singleton folds: successes first, then failures.
        // Commutativity of merge says order must not matter, and the
        // partition into singletons is the finest one. The accumulator
        // starts from the empty-corpus collect — `collect` registers
        // every pattern key (with its type rank) even before any trace
        // arrives, exactly as a stream must before its first report.
        let none: [ProcessedTrace; 0] = [];
        let mut folded = PatternStats::collect(&patterns, &none, &none, &rank_of);
        for s in &successful {
            folded.merge(&PatternStats::collect(
                &patterns,
                &[],
                std::slice::from_ref(s),
                &rank_of,
            ));
        }
        for f in &failing {
            folded.merge(&PatternStats::collect(
                &patterns,
                std::slice::from_ref(f),
                &[],
                &rank_of,
            ));
        }
        assert_bit_identical(&folded, &whole)?;

        // And the reverse fold order agrees too.
        let mut reversed = PatternStats::collect(&patterns, &none, &none, &rank_of);
        for f in failing.iter().rev() {
            reversed.merge(&PatternStats::collect(
                &patterns,
                std::slice::from_ref(f),
                &[],
                &rank_of,
            ));
        }
        for s in successful.iter().rev() {
            reversed.merge(&PatternStats::collect(
                &patterns,
                &[],
                std::slice::from_ref(s),
                &rank_of,
            ));
        }
        assert_bit_identical(&reversed, &whole)?;
    }

    /// Early-exit law: however decisive the stream looks — maximal
    /// lead, maximal tie margin, huge sample, an unchanging top
    /// pattern — the rule cannot fire before `stability_window`
    /// observations. The tie-break path obeys the same law as the
    /// primary lead path.
    #[test]
    fn early_exit_never_fires_before_stability_window(
        window in 1usize..12,
        // The vendored proptest has no float-range strategies; draw
        // parts-per-million integers and scale.
        confidence_ppm in 500_000u32..999_000,
        leads in prop::collection::vec(
            (0u32..=1_000_000, 0u32..=1_000_000, 1usize..10_000),
            1..24,
        ),
    ) {
        let mut rule = SequentialRule::new(window, f64::from(confidence_ppm) / 1e6);
        let top = BugPattern::OrderViolation {
            first: event(0, true),
            second: event(1, false),
        };
        for (i, &(lead_ppm, margin_ppm, n)) in leads.iter().enumerate() {
            let fired = rule.observe(
                Some(&top),
                f64::from(lead_ppm) / 1e6,
                f64::from(margin_ppm) / 1e6,
                n,
            );
            if i + 1 < window {
                prop_assert!(
                    !fired,
                    "rule fired at observation {} with window {}",
                    i + 1,
                    window
                );
            }
        }
        prop_assert!(rule.observations() == leads.len());
    }

    /// The degenerate-window guard: a window of 0 is clamped to 1, so
    /// even a pathological config cannot exit with zero evidence.
    #[test]
    fn zero_window_is_clamped_to_one(confidence_ppm in 500_000u32..999_000) {
        let rule = SequentialRule::new(0, f64::from(confidence_ppm) / 1e6);
        prop_assert_eq!(rule.window(), 1);
    }
}

/// Unbiasedness, checked deterministically: sweep a fixed block of
/// seeds and count how often each arrival index survives. Algorithm R
/// gives every index the same retention probability `capacity / n`;
/// with 2000 seeds, n = 40 and capacity = 10 the empirical rate for
/// every index must sit near 0.25. This is a plain `#[test]` (not a
/// proptest) because the seed block is the sample — no shrinkage or
/// case generation involved.
#[test]
fn reservoir_retention_is_unbiased_across_seeds() {
    const SEEDS: u64 = 2000;
    const N: usize = 40;
    const CAP: usize = 10;
    let mut hits = [0u32; N];
    for seed in 0..SEEDS {
        let mut r = Reservoir::new(CAP, seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for i in 0..N {
            r.offer(i);
        }
        for &i in r.items() {
            hits[i] += 1;
        }
    }
    let expected = CAP as f64 / N as f64;
    for (i, &h) in hits.iter().enumerate() {
        let rate = f64::from(h) / SEEDS as f64;
        // ±8 standard errors of a Bernoulli(0.25) over 2000 trials
        // (~0.0097 each) — loose enough to be flake-free at a fixed
        // seed block, tight enough to catch index-dependent bias.
        assert!(
            (rate - expected).abs() < 0.08,
            "index {i} retained at rate {rate:.3}, expected ~{expected:.3}"
        );
    }
}
