//! Fault-injection harness for the diagnosis pipeline: corrupted wire
//! snapshots driven through `DiagnosisServer::process`, `diagnose`, and
//! `diagnose_batch`, asserting every outcome is a clean `Ok` or a typed
//! `DiagnosisError` — never a panic (proptest turns a panic inside the
//! property into a test failure) — and that a corrupt job in a batch
//! degrades only itself.

use lazy_ir::{InstKind, Module, ModuleBuilder, Operand, Pc, Type};
use lazy_snorlax::{BatchConfig, BatchJob, DiagnosisError, DiagnosisServer, ServerConfig};
use lazy_trace::{decode_snapshot, encode_snapshot, CorruptionOp, Corruptor, TraceSnapshot};
use lazy_vm::{Failure, FailureKind, Vm, VmConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Module with a cross-thread store/load pair (from the processing
/// tests): enough structure for the full pipeline to run.
fn traced_module() -> Module {
    let mut mb = ModuleBuilder::new("m");
    let nop = mb.declare("nop", vec![], Type::I64);
    {
        let mut f = mb.define(nop);
        let e = f.entry();
        f.switch_to(e);
        f.ret(Some(Operand::const_int(0)));
        f.finish();
    }
    let worker = mb.declare("worker", vec![Type::I64], Type::Void);
    let g = mb.global("shared", Type::I64, vec![0]);
    {
        let mut f = mb.define(worker);
        let e = f.entry();
        f.switch_to(e);
        f.io("setup", 50_000);
        f.store(g.clone(), Operand::const_int(7), Type::I64);
        f.ret(None);
        f.finish();
    }
    let mut f = mb.function("main", vec![], Type::Void);
    let e = f.entry();
    f.switch_to(e);
    let t = f.spawn(worker, Operand::const_int(0));
    f.io("main-work", 150_000);
    f.call(nop, vec![]);
    f.load(g, Type::I64);
    f.join(t);
    f.halt();
    f.finish();
    mb.finish().unwrap()
}

struct Fixture {
    module: Module,
    failure: Failure,
    wire: Vec<u8>,
}

/// Built once: VM runs are the expensive part of each proptest case.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let module = traced_module();
        let load_pc = module
            .all_insts()
            .find(|(i, _)| matches!(i.kind, InstKind::Load { .. }))
            .map(|(i, _)| i.pc)
            .unwrap();
        let out = Vm::run(
            &module,
            VmConfig {
                breakpoints: vec![load_pc],
                ..VmConfig::default()
            },
        );
        let snap = out.snapshot.expect("breakpoint snapshot");
        let failure = Failure {
            kind: FailureKind::NullDeref { addr: 0 },
            pc: load_pc,
            tid: snap.trigger_tid,
            at_ns: snap.taken_at,
        };
        let wire = encode_snapshot(&snap);
        Fixture {
            module,
            failure,
            wire,
        }
    })
}

fn arb_op() -> impl Strategy<Value = CorruptionOp> {
    prop_oneof![
        any::<usize>().prop_map(|keep| CorruptionOp::Truncate { keep }),
        (any::<usize>(), any::<u8>())
            .prop_map(|(offset, bit)| CorruptionOp::BitFlip { offset, bit }),
        any::<usize>().prop_map(|field| CorruptionOp::ZeroLength { field }),
        (any::<usize>(), any::<u32>())
            .prop_map(|(field, value)| CorruptionOp::InflateLength { field, value }),
        (any::<usize>(), any::<usize>())
            .prop_map(|(from, to)| CorruptionOp::SplicePsb { from, to }),
        Just(CorruptionOp::DropChecksum),
    ]
}

/// A snapshot decoded from corrupted-but-checksum-valid wire bytes, or
/// `None` when the wire layer (correctly) rejected them.
fn corrupted_snapshot(ops: &[CorruptionOp], fix_checksum: bool) -> Option<TraceSnapshot> {
    let mut wire = fixture().wire.clone();
    let corruptor = Corruptor { fix_checksum };
    for op in ops {
        wire = corruptor.apply(&wire, op);
    }
    decode_snapshot(&wire).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `process` and `diagnose` are total over snapshots whose payloads
    /// were corrupted behind a laundered checksum.
    #[test]
    fn server_is_total_on_corrupted_snapshots(
        fix_checksum in any::<bool>(),
        ops in prop::collection::vec(arb_op(), 1..4),
    ) {
        let fix = fixture();
        let Some(snap) = corrupted_snapshot(&ops, fix_checksum) else {
            return Ok(()); // wire layer rejected it — also a clean path
        };
        let server = DiagnosisServer::new(&fix.module, ServerConfig::default());
        let _ = server.process(&snap);
        let _ = server.diagnose(&fix.failure, &[snap], &[]);
    }

    /// A batch mixing good and corrupt jobs diagnoses the good ones and
    /// reports the corrupt ones as per-job errors with matching
    /// degradation counters — a corrupt job never takes the batch down.
    #[test]
    fn batch_degrades_per_job(
        ops in prop::collection::vec(arb_op(), 1..4),
    ) {
        let fix = fixture();
        let good = decode_snapshot(&fix.wire).expect("pristine wire decodes");
        let Some(bad) = corrupted_snapshot(&ops, true) else {
            return Ok(());
        };
        let server = DiagnosisServer::new(&fix.module, ServerConfig::default());
        let good_failing = [good.clone()];
        let bad_failing = [bad];
        let jobs = [
            BatchJob { failure: &fix.failure, failing: &good_failing, successful: &[] },
            BatchJob { failure: &fix.failure, failing: &bad_failing, successful: &[] },
            BatchJob { failure: &fix.failure, failing: &good_failing, successful: &[] },
        ];
        let out = server.diagnose_batch(&jobs, &BatchConfig { workers: 3, ..BatchConfig::default() });
        prop_assert_eq!(out.diagnoses.len(), 3);
        // The good jobs always succeed, whatever the corrupt one did.
        prop_assert!(out.diagnoses[0].is_ok(), "good job 0: {:?}", out.diagnoses[0].as_ref().err());
        prop_assert!(out.diagnoses[2].is_ok(), "good job 2: {:?}", out.diagnoses[2].as_ref().err());
        let failed = out.diagnoses.iter().filter(|d| d.is_err()).count();
        prop_assert_eq!(out.stats.failed_jobs, failed);
        prop_assert!(out.stats.panicked_jobs <= out.stats.failed_jobs);
    }
}

/// An empty failing set is a typed `EmptyReport`, not a panic.
#[test]
fn empty_report_is_typed() {
    let fix = fixture();
    let server = DiagnosisServer::new(&fix.module, ServerConfig::default());
    let err = server
        .diagnose(&fix.failure, &[], &[])
        .expect_err("no failing snapshots");
    assert_eq!(err, DiagnosisError::EmptyReport);
}

/// A snapshot whose every thread carries undecodable bytes fails with a
/// `Processing` error that reports the thread count.
#[test]
fn all_garbage_threads_fail_processing() {
    let fix = fixture();
    let mut snap = decode_snapshot(&fix.wire).expect("pristine wire decodes");
    for t in &mut snap.threads {
        t.bytes = vec![0xff; 64]; // no PSB anywhere
    }
    let threads = snap.threads.len();
    let server = DiagnosisServer::new(&fix.module, ServerConfig::default());
    match server.process(&snap) {
        Err(DiagnosisError::Processing { threads: n, .. }) => assert_eq!(n, threads),
        other => panic!("expected Processing error, got {other:?}"),
    }
    // The same snapshot as a diagnose job: typed failure, no panic.
    let err = server
        .diagnose(&fix.failure, &[snap], &[])
        .expect_err("undecodable job");
    assert!(matches!(err, DiagnosisError::Processing { .. }), "{err}");
}

/// Trigger metadata pointing at a nonexistent PC/thread must not panic
/// the pipeline (the failing operand simply finds no instances).
#[test]
fn bogus_trigger_metadata_is_survivable() {
    let fix = fixture();
    let mut snap = decode_snapshot(&fix.wire).expect("pristine wire decodes");
    snap.trigger_pc = u64::MAX;
    snap.trigger_tid = u32::MAX;
    let server = DiagnosisServer::new(&fix.module, ServerConfig::default());
    let _ = server.process(&snap);
    let failure = Failure {
        kind: FailureKind::NullDeref { addr: 0 },
        pc: Pc(u64::MAX),
        ..fix.failure.clone()
    };
    let _ = server.diagnose(&failure, &[snap], &[]);
}
