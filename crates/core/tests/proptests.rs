//! Property-based tests of the diagnosis metrics: Kendall-tau ordering
//! accuracy and F1 scoring invariants.

use lazy_ir::Pc;
use lazy_snorlax::patterns::{AccessKind, BugPattern, PatternEvent};
use lazy_snorlax::processing::{DynInstance, ProcessedTrace};
use lazy_snorlax::statistics::score_patterns;
use lazy_snorlax::{kendall_tau_distance, ordering_accuracy};
use lazy_trace::TimeBounds;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn arb_pc_list() -> impl Strategy<Value = Vec<Pc>> {
    prop::collection::hash_set(0u64..24, 0..10)
        .prop_flat_map(|set| Just(set.into_iter().map(Pc).collect::<Vec<_>>()).prop_shuffle())
}

fn trace_from(instances: Vec<(u64, u32, usize, u64, u64)>) -> ProcessedTrace {
    let mut map: HashMap<Pc, Vec<DynInstance>> = HashMap::new();
    let mut executed = HashSet::new();
    let mut event_time = HashMap::new();
    for (pc, tid, seq, lo, hi) in instances {
        let d = DynInstance {
            tid,
            seq,
            time: TimeBounds { lo, hi: lo + hi },
        };
        executed.insert(Pc(pc));
        event_time.insert((tid, seq), d.time);
        map.entry(Pc(pc)).or_default().push(d);
    }
    ProcessedTrace {
        executed,
        instances: map,
        event_time,
        trigger_tid: 0,
        trigger_pc: Pc(0),
        taken_at: u64::MAX,
        event_count: 0,
        resyncs: 0,
        cyc_dropped: 0,
        mtc_dups: 0,
    }
}

fn arb_trace() -> impl Strategy<Value = ProcessedTrace> {
    prop::collection::vec(
        (0u64..6, 0u32..3, 0usize..12, 0u64..10_000, 1u64..500),
        0..16,
    )
    .prop_map(trace_from)
}

proptest! {
    /// A_O is 100 for identical lists, symmetric-ish bounds hold, and
    /// the result is always within [0, 100].
    #[test]
    fn ordering_accuracy_bounds(a in arb_pc_list(), b in arb_pc_list()) {
        let acc = ordering_accuracy(&a, &b);
        prop_assert!((0.0..=100.0).contains(&acc), "{acc}");
        prop_assert_eq!(ordering_accuracy(&a, &a), 100.0);
        prop_assert_eq!(
            kendall_tau_distance(&a, &b),
            kendall_tau_distance(&b, &a)
        );
    }

    /// Reversing a list of n >= 2 distinct elements gives the maximum
    /// distance over common pairs.
    #[test]
    fn reversal_is_maximal(a in arb_pc_list()) {
        prop_assume!(a.len() >= 2);
        let mut rev = a.clone();
        rev.reverse();
        let n = a.len();
        prop_assert_eq!(kendall_tau_distance(&a, &rev), n * (n - 1) / 2);
    }

    /// F1/precision/recall are bounded and consistent for arbitrary
    /// traces and patterns.
    #[test]
    fn scores_are_bounded(
        failing in prop::collection::vec(arb_trace(), 0..4),
        successful in prop::collection::vec(arb_trace(), 0..6),
        first_pc in 0u64..6,
        second_pc in 0u64..6,
    ) {
        let pattern = BugPattern::OrderViolation {
            first: PatternEvent { pc: Pc(first_pc), kind: AccessKind::Write },
            second: PatternEvent { pc: Pc(second_pc), kind: AccessKind::Read },
        };
        let scores = score_patterns(&[pattern], &failing, &successful, &HashMap::new());
        let s = &scores[0];
        prop_assert!((0.0..=1.0).contains(&s.f1));
        prop_assert!((0.0..=1.0).contains(&s.precision));
        prop_assert!((0.0..=1.0).contains(&s.recall));
        prop_assert!(s.fail_support <= failing.len());
        prop_assert!(s.success_support <= successful.len());
        // F1 is zero iff precision or recall is zero.
        prop_assert_eq!(s.f1 == 0.0, s.precision == 0.0 || s.recall == 0.0);
    }
}
