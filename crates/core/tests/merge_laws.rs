//! Property tests for the algebra behind fleet-sharded diagnosis:
//! ([`PatternStats`], `merge`, `empty`) is a commutative monoid, and
//! `collect` distributes over *any* partition of the trace corpus —
//! merging per-shard statistics yields exactly the single-node
//! statistics, which is what makes the sharded pipeline provably
//! byte-identical to a single server (finalize consumes only these
//! integer counts, so identical inputs give bit-identical floats).

use lazy_ir::Pc;
use lazy_snorlax::patterns::{AccessKind, AtomKind, BugPattern, PatternEvent};
use lazy_snorlax::processing::{DynInstance, ProcessedTrace};
use lazy_snorlax::statistics::{PatternCounts, PatternStats};
use lazy_trace::TimeBounds;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn event(pc: u64, write: bool) -> PatternEvent {
    PatternEvent {
        pc: Pc(pc),
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    }
}

/// Patterns drawn from a small key space so that independently
/// generated statistics overlap — the interesting merge cases are
/// shared keys, not disjoint unions.
fn arb_pattern() -> impl Strategy<Value = BugPattern> {
    prop_oneof![
        (0u64..6, any::<bool>(), 0u64..6, any::<bool>()).prop_map(|(a, aw, b, bw)| {
            BugPattern::OrderViolation {
                first: event(a, aw),
                second: event(b, bw),
            }
        }),
        (0u64..6, 0u64..6, 0u64..6, 0u8..4).prop_map(|(a, b, c, k)| {
            let kind = match k {
                0 => AtomKind::Rwr,
                1 => AtomKind::Wwr,
                2 => AtomKind::Rww,
                _ => AtomKind::Wrw,
            };
            let (fw, tw) = match kind {
                AtomKind::Rwr => (false, false),
                AtomKind::Wwr => (true, false),
                AtomKind::Rww => (false, true),
                AtomKind::Wrw => (true, true),
            };
            BugPattern::AtomicityViolation {
                kind,
                first: event(a, fw),
                second: event(b, !matches!(kind, AtomKind::Wrw)),
                third: event(c, tw),
            }
        }),
    ]
}

/// Arbitrary statistics built directly from parts: entries over the
/// shared pattern key space plus trace totals.
fn arb_stats() -> impl Strategy<Value = PatternStats> {
    (
        prop::collection::vec((arb_pattern(), 1u32..5, 0usize..8, 0usize..8), 0..8),
        0usize..8,
        0usize..16,
    )
        .prop_map(|(entries, failing, successful)| {
            PatternStats::from_parts(
                entries
                    .into_iter()
                    .map(|(p, rank, fail, success)| {
                        (
                            p,
                            PatternCounts {
                                type_rank: rank,
                                fail_support: fail,
                                success_support: success,
                            },
                        )
                    })
                    .collect(),
                failing,
                successful,
            )
        })
}

fn merged(a: &PatternStats, b: &PatternStats) -> PatternStats {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Same trace constructor as `proptests.rs`: a bag of dynamic
/// instances keyed by (pc, tid, seq, t_lo, t_span).
fn trace_from(instances: Vec<(u64, u32, usize, u64, u64)>) -> ProcessedTrace {
    let mut map: HashMap<Pc, Vec<DynInstance>> = HashMap::new();
    let mut executed = HashSet::new();
    let mut event_time = HashMap::new();
    for (pc, tid, seq, lo, hi) in instances {
        let d = DynInstance {
            tid,
            seq,
            time: TimeBounds { lo, hi: lo + hi },
        };
        executed.insert(Pc(pc));
        event_time.insert((tid, seq), d.time);
        map.entry(Pc(pc)).or_default().push(d);
    }
    ProcessedTrace {
        executed,
        instances: map,
        event_time,
        trigger_tid: 0,
        trigger_pc: Pc(0),
        taken_at: u64::MAX,
        event_count: 0,
        resyncs: 0,
        cyc_dropped: 0,
        mtc_dups: 0,
    }
}

fn arb_trace() -> impl Strategy<Value = ProcessedTrace> {
    prop::collection::vec(
        (0u64..6, 0u32..3, 0usize..12, 0u64..10_000, 1u64..500),
        0..16,
    )
    .prop_map(trace_from)
}

/// Splits `traces` into `n` shards by each trace's assignment label.
fn split<'a>(
    traces: &'a [ProcessedTrace],
    labels: &[usize],
    n: usize,
) -> Vec<Vec<&'a ProcessedTrace>> {
    let mut shards: Vec<Vec<&ProcessedTrace>> = vec![Vec::new(); n];
    for (t, &l) in traces.iter().zip(labels) {
        shards[l % n].push(t);
    }
    shards
}

proptest! {
    /// merge is commutative: a ⊕ b == b ⊕ a.
    #[test]
    fn merge_is_commutative(a in arb_stats(), b in arb_stats()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(a in arb_stats(), b in arb_stats(), c in arb_stats()) {
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    /// empty is a two-sided identity: a ⊕ 0 == 0 ⊕ a == a.
    #[test]
    fn empty_is_identity(a in arb_stats()) {
        prop_assert_eq!(merged(&a, &PatternStats::empty()), a.clone());
        prop_assert_eq!(merged(&PatternStats::empty(), &a), a.clone());
    }

    /// The fleet theorem: for ANY partition of the failing and
    /// successful corpora across n shards, merging the per-shard
    /// collects equals collecting the whole corpus on one node — and
    /// the finalized scores are bit-identical floats.
    #[test]
    fn merge_of_partition_equals_whole(
        patterns in prop::collection::vec(arb_pattern(), 0..6),
        failing in prop::collection::vec(arb_trace(), 0..5),
        successful in prop::collection::vec(arb_trace(), 0..8),
        fail_labels in prop::collection::vec(0usize..4, 5),
        succ_labels in prop::collection::vec(0usize..4, 8),
        ranks in prop::collection::vec((0u64..6, 1u32..4), 0..6),
        n in 1usize..4,
    ) {
        let rank_of: HashMap<Pc, u32> =
            ranks.into_iter().map(|(pc, r)| (Pc(pc), r)).collect();
        let whole = PatternStats::collect(&patterns, &failing, &successful, &rank_of);

        let fail_shards = split(&failing, &fail_labels, n);
        let succ_shards = split(&successful, &succ_labels, n);
        let mut fleet = PatternStats::empty();
        for (f, s) in fail_shards.iter().zip(&succ_shards) {
            fleet.merge(&PatternStats::collect(&patterns, f, s, &rank_of));
        }

        prop_assert_eq!(&fleet, &whole);
        let (a, b) = (fleet.finalize(), whole.finalize());
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.pattern, &y.pattern);
            prop_assert_eq!(x.f1.to_bits(), y.f1.to_bits());
            prop_assert_eq!(x.precision.to_bits(), y.precision.to_bits());
            prop_assert_eq!(x.recall.to_bits(), y.recall.to_bits());
        }
    }
}
